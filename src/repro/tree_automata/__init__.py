"""Tree automata: unranked NTAs, binary TAs, exact EDTD decision procedures."""

from repro.tree_automata.bta import BTA
from repro.tree_automata.inclusion import (
    bta_difference_empty,
    bta_from_edtd,
    edtd_equivalent,
    edtd_includes,
    edtd_universal,
    universal_edtd,
)
from repro.tree_automata.monoid import (
    FiniteMonoid,
    MonoidForestAutomaton,
    forest_automaton_for_child_language,
    transition_monoid_from_dfa,
)
from repro.tree_automata.nta import NTA, edtd_from_nta, nta_from_edtd

__all__ = [
    "BTA",
    "FiniteMonoid",
    "MonoidForestAutomaton",
    "forest_automaton_for_child_language",
    "transition_monoid_from_dfa",
    "NTA",
    "bta_difference_empty",
    "bta_from_edtd",
    "edtd_equivalent",
    "edtd_from_nta",
    "edtd_includes",
    "edtd_universal",
    "nta_from_edtd",
    "universal_edtd",
]
