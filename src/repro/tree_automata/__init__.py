"""Tree automata: unranked NTAs, binary TAs, exact EDTD decision procedures."""

from repro.tree_automata.bta import BTA
from repro.tree_automata.inclusion import (
    bta_difference_empty,
    bta_from_edtd,
    edtd_equivalent,
    edtd_includes,
    edtd_universal,
    universal_edtd,
)
from repro.tree_automata.kernels import (
    cached_bta_determinize,
    cached_bta_from_edtd,
    cache_stats as kernel_cache_stats,
    clear_caches as clear_kernel_caches,
)
from repro.tree_automata.monoid import (
    FiniteMonoid,
    MonoidForestAutomaton,
    forest_automaton_for_child_language,
    monoid_from_edtd,
    transition_monoid_from_dfa,
)
from repro.tree_automata.nta import NTA, edtd_from_nta, nta_from_edtd
from repro.tree_automata.schema_guided import (
    GuidedBTADetCheckpoint,
    bta_determinize_guided,
    bta_guide_from_edtd,
    cached_bta_determinize_guided,
    universal_bta_guide,
)

__all__ = [
    "BTA",
    "GuidedBTADetCheckpoint",
    "FiniteMonoid",
    "MonoidForestAutomaton",
    "forest_automaton_for_child_language",
    "monoid_from_edtd",
    "transition_monoid_from_dfa",
    "NTA",
    "bta_determinize_guided",
    "bta_difference_empty",
    "bta_from_edtd",
    "bta_guide_from_edtd",
    "cached_bta_determinize",
    "cached_bta_determinize_guided",
    "universal_bta_guide",
    "cached_bta_from_edtd",
    "clear_kernel_caches",
    "edtd_equivalent",
    "edtd_from_nta",
    "edtd_includes",
    "edtd_universal",
    "kernel_cache_stats",
    "nta_from_edtd",
    "universal_edtd",
]
