"""Integer-coded tree-automata kernels: the BTA hot loops on machine ints.

This is the tree-side counterpart of :mod:`repro.strings.kernels` (PR 2).
Every exact decision procedure of the paper — Construction 3.1's
determinization of type automata, Theorem 2.13's EXPTIME inclusion, the
upper/lower/definability pipelines that ride on them — bottoms out in
bottom-up binary-tree-automaton loops that used to hash frozensets of
frozensets per combination.  This module codes a BTA's states and labels
into small ints **once per automaton** (cached in a
``WeakKeyDictionary``, so the coding never outlives the automaton and
never leaks into pickles) and runs the loops on int bitmasks:

* :func:`bta_determinize` — worklist subset construction where subset
  states are int masks and the ``(label, q1, q2)`` rule join is served
  by lazily-filled 16-bit *chunk tables* per ``(label, q1)`` row: one
  step costs ``popcount(m1) * ceil(n/16)`` dict lookups instead of a
  scan over the rule table.  Ungoverned runs on BTAs with <= 63 states
  take a numpy-vectorized path that joins one discovered subset against
  *all* known partner subsets per ``(label, side)`` at once.  Governed
  runs charge the budget exactly like the reference loop (one state per
  fresh subset, leaf subsets free) and trip with a resumable
  :class:`BTADetCheckpoint`.
* :func:`bta_difference_empty` — the lazy-product inclusion worklist of
  :mod:`repro.tree_automata.inclusion`, upgraded to chunk-table steps
  on the right-hand subsets and the same numpy partner-batch fast path.
* :func:`bta_possible_states` / :func:`bta_accepts` — bottom-up runs
  over the :class:`~repro.trees.arena.ArenaTree` encoding: one flat
  ``int`` array of state masks instead of recursion + per-node
  frozensets (arbitrarily deep documents are safe).
* :func:`edtd_possible_types` — EDTD bottom-up type inference on the
  arena: per-(type, content-DFA-state) chunk tables over child *type
  masks* replace the per-node Python-set subset simulation.
* structural-hash memo caches (:func:`cached_bta_determinize`,
  :func:`cached_bta_from_edtd`, and the ``edtd_includes`` verdict cache
  in :mod:`repro.tree_automata.inclusion`) with recorded-cost budget
  *recharge*: a governed run trips at the same counters whether the
  cache is warm or cold.

The pre-kernel loops survive as differential oracles
(``BTA.determinize_reference``, ``bta_difference_empty_reference``,
``BTA.possible_states_reference``, ``EDTD.possible_types_reference``) —
``tests/tree_automata/test_tree_kernels.py`` pins agreement on random
automata and the paper's blow-up families.  See ``docs/PERFORMANCE.md``
for the coding scheme and measured speedups (``BENCH_trees.json``).
"""

from __future__ import annotations

import weakref
from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro import observability as _obs
from repro.errors import AutomatonError
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.strings.kernels import (
    _FLUSH,
    _KernelCache,
    _code_states,
    _mask_of,
    _memoized,
    _unmask,
    canonical_repr,
    _symbol_reprs,
)

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from repro.schemas.edtd import EDTD as _EDTD
    from repro.tree_automata.bta import BTA as _BTA
    from repro.trees.tree import Tree as _Tree

try:  # the vectorized fast path is optional — the scalar kernels are exact
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

State = Hashable
Symbol = Hashable

#: Set to False to force the scalar loops even when numpy is importable
#: (same contract as :data:`repro.strings.kernels.USE_FAST_PATH`).
USE_FAST_PATH = True


# ----------------------------------------------------------------------
# Per-automaton integer coding
# ----------------------------------------------------------------------

class _BTACoding:
    """Integer coding of one BTA, built once and cached per instance.

    States are bit indices in ``repr`` order; subsets are int masks.  The
    ``(label, q1, q2) -> targets`` rule table is regrouped per label and
    per first child ``q1``; the step ``label(m1, m2)`` then ORs, for each
    set bit ``q1`` of ``m1``, a lazily-filled 16-bit chunk table over
    ``m2`` (``table[v] = table[v ^ lowbit] | row[bit]``, one O(1) entry
    per distinct chunk value ever seen).
    """

    __slots__ = (
        "order",
        "code",
        "labels",
        "label_code",
        "leaf_masks",
        "first_masks",
        "by_q1",
        "finals_mask",
        "nchunks",
        "_rows",
        "_np_rules",
        "__weakref__",
    )

    def __init__(self, bta: "_BTA") -> None:
        order, code = _code_states(bta.states)
        self.order: list[State] = order
        self.code: dict[State, int] = code
        self.labels: list[Symbol] = sorted(bta.alphabet, key=repr)
        self.label_code: dict[Symbol, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        self.leaf_masks: list[int] = [
            _mask_of(bta.leaf_rules.get(label, ()), code) for label in self.labels
        ]
        nlabels = len(self.labels)
        #: per label: mask of states appearing as a first child in a rule —
        #: bits of m1 outside it cannot contribute and are skipped wholesale.
        self.first_masks: list[int] = [0] * nlabels
        #: per label: ``q1 -> [(q2, targets_mask), ...]``.
        self.by_q1: list[dict[int, list[tuple[int, int]]]] = [
            {} for _ in range(nlabels)
        ]
        for (label, q1, q2), targets in bta.internal_rules.items():
            label_index = self.label_code[label]
            i1, i2 = code[q1], code[q2]
            self.first_masks[label_index] |= 1 << i1
            self.by_q1[label_index].setdefault(i1, []).append(
                (i2, _mask_of(targets, code))
            )
        self.finals_mask: int = _mask_of(bta.finals, code)
        self.nchunks: int = ((len(order) + 15) >> 4) or 1
        #: ``(label_index, q1) -> (row, chunk tables)``, filled on demand.
        self._rows: dict[tuple[int, int], tuple[list[int], list[dict[int, int]]]] = {}
        #: per label: int64 rule arrays for the numpy fast path.
        self._np_rules: list[tuple[Any, Any, Any] | None] | None = None

    # -- scalar step ----------------------------------------------------

    def step(self, label_index: int, m1: int, m2: int) -> int:
        """Targets mask of ``label(m1, m2)`` (OR over matching rules)."""
        total = 0
        rest = m1 & self.first_masks[label_index]
        while rest:  # ungoverned: bit-scan bounded by one machine word
            low = rest & -rest
            rest ^= low
            total |= self._row_step(label_index, low.bit_length() - 1, m2)
        return total

    def _row_step(self, label_index: int, q1: int, m2: int) -> int:
        key = (label_index, q1)
        entry = self._rows.get(key)
        if entry is None:
            row = [0] * len(self.order)
            for q2, targets_mask in self.by_q1[label_index].get(q1, ()):
                row[q2] |= targets_mask
            entry = (row, [{0: 0} for _ in range(self.nchunks)])
            self._rows[key] = entry
        row, tabs = entry
        total = 0
        rest = m2
        chunk_index = 0
        while rest:  # ungoverned: bit-scan bounded by the coded state count
            chunk = rest & 0xFFFF
            if chunk:
                table = tabs[chunk_index]
                part = table.get(chunk)
                if part is None:
                    stack = []
                    value = chunk
                    while part is None:
                        stack.append(value)
                        value ^= value & -value
                        part = table.get(value)
                    base = chunk_index << 4
                    while stack:  # ungoverned: chain-fill bounded by 16 bits
                        value = stack.pop()
                        low = value & -value
                        part |= row[base + low.bit_length() - 1]
                        table[value] = part
                total |= part
            rest >>= 16
            chunk_index += 1
        return total

    # -- vectorized step (numpy fast path) -------------------------------

    def np_rules(self, label_index: int) -> tuple[Any, Any, Any]:
        """``(q1_masks, q2_masks, targets)`` int64 rule arrays per label."""
        if self._np_rules is None:
            self._np_rules = [None] * len(self.labels)
        cached = self._np_rules[label_index]
        if cached is None:
            triples = [
                (1 << q1, 1 << q2, targets_mask)
                for q1, pairs in self.by_q1[label_index].items()
                for q2, targets_mask in pairs
            ]
            if triples:
                array = _np.array(triples, dtype=_np.int64)
                cached = (array[:, 0], array[:, 1], array[:, 2])
            else:
                empty = _np.zeros(0, dtype=_np.int64)
                cached = (empty, empty, empty)
            self._np_rules[label_index] = cached
        return cached

    def step_many_right(self, label_index: int, m1: int, partners: Any) -> Any:
        """Targets of ``label(m1, p)`` for every partner ``p`` at once."""
        q1_masks, q2_masks, targets = self.np_rules(label_index)
        if not partners.size:
            return partners
        if q1_masks.size:
            selected = (q1_masks & m1) != 0
            if selected.any():
                hit = (partners[:, None] & q2_masks[selected][None, :]) != 0
                return _np.bitwise_or.reduce(
                    _np.where(hit, targets[selected][None, :], 0), axis=1
                )
        return _np.zeros(partners.size, dtype=_np.int64)

    def step_many_left(self, label_index: int, partners: Any, m2: int) -> Any:
        """Targets of ``label(p, m2)`` for every partner ``p`` at once."""
        q1_masks, q2_masks, targets = self.np_rules(label_index)
        if not partners.size:
            return partners
        if q2_masks.size:
            selected = (q2_masks & m2) != 0
            if selected.any():
                hit = (partners[:, None] & q1_masks[selected][None, :]) != 0
                return _np.bitwise_or.reduce(
                    _np.where(hit, targets[selected][None, :], 0), axis=1
                )
        return _np.zeros(partners.size, dtype=_np.int64)


#: Codings keyed by automaton identity; weak keys tie each coding's
#: lifetime to its BTA without touching the BTA's own (picklable) state.
_CODINGS: "weakref.WeakKeyDictionary[Any, _BTACoding]" = weakref.WeakKeyDictionary()


def _coding_of(bta: "_BTA") -> _BTACoding:
    coding = _CODINGS.get(bta)
    if coding is None:
        coding = _BTACoding(bta)
        _CODINGS[bta] = coding
    return coding


# ----------------------------------------------------------------------
# Boundary decode: masks back to frozenset views
# ----------------------------------------------------------------------

def _mask_views(
    order: list[State], masks: Iterable[int], nchunks: int
) -> dict[int, frozenset[State]]:
    """Interned ``mask -> frozenset`` views (chunk-level frozensets are
    shared, so member hashes are reused instead of recomputed)."""
    empty: frozenset[State] = frozenset()
    member_tab: list[dict[int, frozenset[State]]] = [
        {0: empty} for _ in range(nchunks)
    ]
    views: dict[int, frozenset[State]] = {}
    for mask in masks:
        if mask in views:
            continue
        parts = None
        rest = mask
        chunk_index = 0
        while rest:  # ungoverned: bit-scan bounded by the coded state count
            chunk = rest & 0xFFFF
            if chunk:
                table = member_tab[chunk_index]
                part = table.get(chunk)
                if part is None:
                    stack = []
                    value = chunk
                    while part is None:
                        stack.append(value)
                        value ^= value & -value
                        part = table.get(value)
                    base = chunk_index << 4
                    while stack:  # ungoverned: chain-fill bounded by 16 bits
                        value = stack.pop()
                        low = value & -value
                        part = part | {order[base + low.bit_length() - 1]}
                        table[value] = part
                parts = part if parts is None else parts | part
            rest >>= 16
            chunk_index += 1
        views[mask] = empty if parts is None else parts
    return views


# ----------------------------------------------------------------------
# Determinization
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BTADetCheckpoint:
    """Resumable snapshot of a partially-run BTA subset construction.

    ``subsets`` is the discovery-ordered tuple of subset states,
    ``done`` the count of fully-combined rows, ``transitions`` the
    ``((label, S1, S2), target)`` entries computed so far.  Opaque to
    callers: obtain one from ``BudgetExceededError.checkpoint`` and pass
    it back via ``BTA.determinize(checkpoint=...)`` with the *same* BTA.
    Resumption recomputes at most one partial row — all entries are
    idempotent, so no state is lost, duplicated, or double-charged.
    """

    subsets: tuple[frozenset[State], ...]
    transitions: tuple[
        tuple[tuple[Symbol, frozenset[State], frozenset[State]], frozenset[State]], ...
    ]
    done: int

    @property
    def states_explored(self) -> int:
        return len(self.subsets)

    @property
    def frontier_size(self) -> int:
        return len(self.subsets) - self.done


def bta_determinize(
    bta: "_BTA",
    *,
    budget: Budget | None = None,
    checkpoint: BTADetCheckpoint | None = None,
    trace: Any = None,
) -> "_BTA":
    """Bitmask bottom-up subset construction; same contract (result,
    charging, trip counts) as ``BTA.determinize_reference``.

    Subset states are int masks interned in a dict; each discovered
    subset is combined once against every subset known so far (both
    child positions), so the rule join runs once per ordered pair
    instead of once per pair per round.  Budget charging replicates the
    reference: the initial leaf subsets are free, every other fresh
    subset charges one state, and combination work ticks in ``_FLUSH``
    batches.  On exhaustion the raised error carries a
    :class:`BTADetCheckpoint`.
    """
    budget = resolve_budget(budget)
    coding = _coding_of(bta)
    fast = (
        budget is None
        and checkpoint is None
        and _np is not None
        and USE_FAST_PATH
        and len(coding.order) <= 63
    )
    with _obs.construction_span(
        "bta-determinize",
        trace=trace,
        budget=budget,
        kernel="fast" if fast else "scalar",
        nta_states=len(coding.order),
    ) as span:
        if fast:
            masks, transitions = _determinize_fast(coding)
        else:
            masks, transitions = _determinize_scalar(coding, budget, checkpoint)
        result = _assemble_bta(bta, coding, masks, transitions)
        if span is not None:
            span.annotate(subsets=len(masks))
        if _obs.ENABLED:
            _obs.METRICS.counter("bta_determinize.runs").inc()
            _obs.METRICS.histogram("bta_determinize.subsets").observe(len(masks))
    return result


def _seed_masks(coding: _BTACoding) -> tuple[list[int], dict[int, int]]:
    """The initial (uncharged) worklist: the distinct leaf subsets."""
    masks: list[int] = []
    index: dict[int, int] = {}
    for mask in coding.leaf_masks:
        if mask not in index:
            index[mask] = len(masks)
            masks.append(mask)
    return masks, index


def _determinize_scalar(
    coding: _BTACoding,
    budget: Budget | None,
    checkpoint: BTADetCheckpoint | None,
) -> tuple[list[int], dict[tuple[int, int, int], int]]:
    """The governed scalar worklist (single source of truth for charging)."""
    labels = coding.labels
    label_range = range(len(labels))
    nlabels = len(labels)
    if checkpoint is None:
        masks, index = _seed_masks(coding)
        transitions: dict[tuple[int, int, int], int] = {}
        done = 0
    else:
        code = coding.code
        masks = [_mask_of(subset, code) for subset in checkpoint.subsets]
        index = {mask: position for position, mask in enumerate(masks)}
        transitions = {
            (
                coding.label_code[label],
                _mask_of(s1, code),
                _mask_of(s2, code),
            ): _mask_of(target, code)
            for (label, s1, s2), target in checkpoint.transitions
        }
        done = checkpoint.done

    step = coding.step
    if budget is not None:
        cursor = [done]

        def snapshot() -> BTADetCheckpoint:
            # Decoded lazily, only at trip time; the row at ``cursor`` is
            # re-run on resume (idempotent — see BTADetCheckpoint docs).
            order = coding.order
            return BTADetCheckpoint(
                subsets=tuple(_unmask(mask, order) for mask in masks),
                transitions=tuple(
                    (
                        (labels[label_index], _unmask(m1, order), _unmask(m2, order)),
                        _unmask(target, order),
                    )
                    for (label_index, m1, m2), target in transitions.items()
                ),
                done=cursor[0],
            )

        tick, charge_states = budget.tick, budget.charge_states
        pending = 0
    with budget_phase(budget, "bta-determinize"):
        while done < len(masks):
            current = masks[done]
            if budget is not None:
                cursor[0] = done
            for position in range(done + 1):
                partner = masks[position]
                both_sides = position < done
                if budget is not None:
                    pending += nlabels * (2 if both_sides else 1)
                    if pending >= _FLUSH:
                        tick(pending, len(masks) - done, snapshot)
                        pending = 0
                for label_index in label_range:
                    target = step(label_index, current, partner)
                    transitions[(label_index, current, partner)] = target
                    if target not in index:
                        index[target] = len(masks)
                        masks.append(target)
                        if budget is not None:
                            charge_states(1, len(masks) - done, snapshot)
                    if both_sides:
                        target = step(label_index, partner, current)
                        transitions[(label_index, partner, current)] = target
                        if target not in index:
                            index[target] = len(masks)
                            masks.append(target)
                            if budget is not None:
                                charge_states(1, len(masks) - done, snapshot)
            done += 1
        if budget is not None and pending:
            budget.tick(pending, 0)
    return masks, transitions


def _determinize_fast(
    coding: _BTACoding,
) -> tuple[list[int], dict[tuple[int, int, int], int]]:
    """Vectorized worklist for ungoverned runs (<= 63 states).

    The cyclic GC is paused for the duration: the construction allocates
    tuples/ints of pre-existing objects only (no cycles can form), and
    generation-0 scans over that churn cost more than the joins.
    """
    import gc

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _determinize_fast_inner(coding)
    finally:
        if gc_was_enabled:
            gc.enable()


def _determinize_fast_inner(
    coding: _BTACoding,
) -> tuple[list[int], dict[tuple[int, int, int], int]]:
    int64 = _np.int64
    label_range = range(len(coding.labels))
    masks, index = _seed_masks(coding)
    transitions: dict[tuple[int, int, int], int] = {}
    done = 0
    while done < len(masks):  # ungoverned: fast path, entered only when no budget is active
        current = masks[done]
        # masks only grows, so masks[:done+1] is stable for this row even
        # though discoveries append during the loop below.
        partners = _np.array(masks[: done + 1], dtype=int64)
        left_partners = partners[:done]
        for label_index in label_range:
            row = coding.step_many_right(label_index, current, partners).tolist()
            for position, target in enumerate(row):
                transitions[(label_index, current, masks[position])] = target
                if target not in index:
                    index[target] = len(masks)
                    masks.append(target)
            column = coding.step_many_left(label_index, left_partners, current).tolist()
            for position, target in enumerate(column):
                transitions[(label_index, masks[position], current)] = target
                if target not in index:
                    index[target] = len(masks)
                    masks.append(target)
        done += 1
    return masks, transitions


def _assemble_bta(
    bta: "_BTA",
    coding: _BTACoding,
    masks: list[int],
    transitions: dict[tuple[int, int, int], int],
) -> "_BTA":
    """Decode the worklist result into a validated-by-construction BTA."""
    from repro.tree_automata.bta import BTA

    views = _mask_views(coding.order, masks, coding.nchunks)
    singletons = {mask: frozenset((view,)) for mask, view in views.items()}
    labels = coding.labels
    leaf_rules = {
        label: singletons[coding.leaf_masks[label_index]]
        for label_index, label in enumerate(labels)
    }
    internal_rules = {
        (labels[label_index], views[m1], views[m2]): singletons[target]
        for (label_index, m1, m2), target in transitions.items()
    }
    finals_mask = coding.finals_mask
    finals = [view for mask, view in views.items() if mask & finals_mask]
    return BTA._from_parts(
        views.values(), bta.alphabet, leaf_rules, internal_rules, finals
    )


# ----------------------------------------------------------------------
# Lazy-product inclusion (difference emptiness)
# ----------------------------------------------------------------------

def bta_difference_empty(
    left: "_BTA",
    right: "_BTA",
    *,
    budget: Budget | None = None,
    trace: Any = None,
) -> bool:
    """Decide ``L(left) subseteq L(right)`` by emptiness of the lazy
    product of *left* with the on-the-fly determinization of *right*.

    Same worklist and charging as the PR-2 loop in
    :mod:`repro.tree_automata.inclusion` (one state per discovered
    ``(left state, right subset)`` pair, early exit on the first
    counterexample), with two kernel upgrades: right-subset steps go
    through the per-``(label, q1)`` chunk tables of :class:`_BTACoding`,
    and ungoverned runs on right automata with <= 63 states batch each
    popped pair against *all* known partner masks per rule with numpy.
    """
    budget = resolve_budget(budget)
    coding = _coding_of(right)
    label_code = coding.label_code
    right_finals = coding.finals_mask

    # Left internal rules indexed by each child position, with the label
    # pre-coded into the right automaton's label space (None when the
    # right automaton cannot read the label at all).
    by_first: dict[State, list[tuple[int | None, State, tuple[State, ...]]]] = {}
    by_second: dict[State, list[tuple[int | None, State, tuple[State, ...]]]] = {}
    for (label, q1, q2), targets in left.internal_rules.items():
        entry = (label_code.get(label), None, tuple(targets))
        by_first.setdefault(q1, []).append((entry[0], q2, entry[2]))
        by_second.setdefault(q2, []).append((entry[0], q1, entry[2]))

    fast = (
        budget is None
        and _np is not None
        and USE_FAST_PATH
        and len(coding.order) <= 63
    )

    left_finals = left.finals
    seen: set[tuple[State, int]] = set()
    by_left: dict[State, list[int]] = {}  # left state -> discovered right masks
    worklist: list[tuple[State, int]] = []
    head = 0
    counterexample = False

    def discover(q: State, mask: int) -> bool:
        """Record pair ``(q, mask)``; True iff it is a counterexample."""
        pair = (q, mask)
        if pair in seen:
            return False
        if q in left_finals and not mask & right_finals:
            return True  # early exit: a tree in L(left) - L(right)
        seen.add(pair)
        by_left.setdefault(q, []).append(mask)
        worklist.append(pair)
        if budget is not None:
            budget.charge_states(1, frontier=len(worklist) - head)
        return False

    step = coding.step
    step_cache: dict[tuple[int, int, int], int] = {}
    pending = 0
    with _obs.construction_span(
        "bta-inclusion",
        trace=trace,
        budget=budget,
        kernel="fast" if fast else "scalar",
    ) as span, budget_phase(budget, "bta-inclusion"):
        if _obs.ENABLED:
            _obs.METRICS.counter("bta_inclusion.runs").inc()
        for label, left_leaf in left.leaf_rules.items():
            label_index = label_code.get(label)
            leaf_mask = 0 if label_index is None else coding.leaf_masks[label_index]
            for q in left_leaf:
                if discover(q, leaf_mask):
                    counterexample = True
                    break
            if counterexample:
                break

        while head < len(worklist) and not counterexample:
            q, mask = worklist[head]
            head += 1
            # Combine (q, mask) in both child positions with every pair
            # discovered so far; pairs discovered later re-run the
            # combination from their side, so coverage is complete.
            for position, rules in ((0, by_first.get(q)), (1, by_second.get(q))):
                if not rules:
                    continue
                for label_index, partner, targets in rules:
                    partner_masks = by_left.get(partner)
                    if not partner_masks:
                        continue
                    if label_index is None:
                        subsets = [0] * len(partner_masks)
                    elif fast and len(partner_masks) > 4:
                        batch = _np.array(list(partner_masks), dtype=_np.int64)
                        if position == 0:
                            subsets = coding.step_many_right(
                                label_index, mask, batch
                            ).tolist()
                        else:
                            subsets = coding.step_many_left(
                                label_index, batch, mask
                            ).tolist()
                    else:
                        subsets = []
                        for other in list(partner_masks):
                            m1, m2 = (mask, other) if position == 0 else (other, mask)
                            key = (label_index, m1, m2)
                            subset = step_cache.get(key)
                            if subset is None:
                                subset = step(label_index, m1, m2)
                                step_cache[key] = subset
                            subsets.append(subset)
                    if budget is not None:
                        pending += len(subsets)
                        if pending >= _FLUSH:
                            budget.tick(pending, frontier=len(worklist) - head)
                            pending = 0
                    for subset in subsets:
                        for target in targets:
                            if discover(target, subset):
                                counterexample = True
                                break
                        if counterexample:
                            break
                    if counterexample:
                        break
                if counterexample:
                    break
        if budget is not None and pending:
            budget.tick(pending, frontier=len(worklist) - head)
        if span is not None:
            span.annotate(included=not counterexample, pairs=len(seen))
        if _obs.ENABLED:
            _obs.METRICS.histogram("bta_inclusion.pairs").observe(len(seen))
    return not counterexample


# ----------------------------------------------------------------------
# Arena runs: possible states / acceptance
# ----------------------------------------------------------------------

def _arena_of(tree: "_Tree | Any") -> Any:
    from repro.trees.arena import ArenaTree

    if isinstance(tree, ArenaTree):
        return tree
    return ArenaTree.from_tree(tree)


def bta_run_masks(bta: "_BTA", tree: "_Tree") -> tuple[_BTACoding, list[int]]:
    """Bottom-up state masks for every arena node (BFS index order)."""
    coding = _coding_of(bta)
    arena = _arena_of(tree)
    label_code = coding.label_code
    node_labels = [label_code.get(label, -1) for label in arena.labels]
    size = len(arena.labels)
    result = [0] * size
    n_children = arena.n_children
    first_child = arena.first_child
    leaf_masks = coding.leaf_masks
    step = coding.step
    for node in range(size - 1, -1, -1):
        count = n_children[node]
        label_index = node_labels[node]
        if count == 0:
            result[node] = leaf_masks[label_index] if label_index >= 0 else 0
        elif count != 2:
            raise AutomatonError("BTA runs require binary trees")
        elif label_index >= 0:
            start = first_child[node]
            result[node] = step(label_index, result[start], result[start + 1])
    return coding, result


def bta_possible_states(bta: "_BTA", tree: "_Tree") -> frozenset[State]:
    """Arena-based ``BTA.possible_states``: one int mask per node, no
    recursion (arbitrarily deep encodings are safe), chunk-table steps."""
    coding, result = bta_run_masks(bta, tree)
    return _unmask(result[0], coding.order)


def bta_accepts(bta: "_BTA", tree: "_Tree") -> bool:
    """Arena-based acceptance: finals intersection on the root mask."""
    coding, result = bta_run_masks(bta, tree)
    return bool(result[0] & coding.finals_mask)


# ----------------------------------------------------------------------
# EDTD validation on the arena
# ----------------------------------------------------------------------

class _EDTDTables:
    """Per-EDTD typing tables for arena-based bottom-up type inference.

    Types are bit indices; per type, the content DFA's states are bit
    indices too, and the subset simulation over a child's *type mask*
    is served by a per-(type, DFA state) chunk table (same chain-fill
    scheme as :class:`_BTACoding`).
    """

    __slots__ = (
        "types",
        "type_code",
        "by_label",
        "leaf_by_label",
        "start_mask",
        "nchunks",
        "dfa_initial",
        "dfa_finals",
        "dfa_size",
        "rows",
        "_tabs",
        "__weakref__",
    )

    def __init__(self, edtd: "_EDTD") -> None:
        types, type_code = _code_states(edtd.types)
        self.types: list[Hashable] = types
        self.type_code: dict[Hashable, int] = type_code
        self.nchunks: int = ((len(types) + 15) >> 4) or 1
        self.start_mask: int = _mask_of(edtd.starts, type_code)
        self.by_label: dict[Symbol, int] = {}
        self.leaf_by_label: dict[Symbol, int] = {}
        ntypes = len(types)
        self.dfa_initial: list[int] = [0] * ntypes
        self.dfa_finals: list[int] = [0] * ntypes
        self.dfa_size: list[int] = [0] * ntypes
        #: rows[type_index][dfa_state] -> list over type bits of dst masks.
        self.rows: list[list[list[int]]] = [[] for _ in range(ntypes)]
        self._tabs: dict[tuple[int, int], list[dict[int, int]]] = {}
        for type_index, type_ in enumerate(types):
            label = edtd.mu[type_]
            type_bit = 1 << type_index
            self.by_label[label] = self.by_label.get(label, 0) | type_bit
            dfa = edtd.rules[type_]
            dfa_order, dfa_code = _code_states(dfa.states)
            self.dfa_size[type_index] = len(dfa_order)
            self.dfa_initial[type_index] = 1 << dfa_code[dfa.initial]
            self.dfa_finals[type_index] = _mask_of(dfa.finals, dfa_code)
            if self.dfa_initial[type_index] & self.dfa_finals[type_index]:
                self.leaf_by_label[label] = (
                    self.leaf_by_label.get(label, 0) | type_bit
                )
            rows = [[0] * len(types) for _ in range(len(dfa_order))]
            for (src, symbol), dst in dfa.transitions.items():
                symbol_index = type_code.get(symbol)
                if symbol_index is not None:
                    rows[dfa_code[src]][symbol_index] |= 1 << dfa_code[dst]
            self.rows[type_index] = rows

    def content_step(self, type_index: int, current: int, options: int) -> int:
        """One subset-simulation step of type ``type_index``'s content DFA:
        from DFA-state mask *current* over child-type mask *options*."""
        rows = self.rows[type_index]
        total = 0
        rest = current
        while rest:  # ungoverned: bit-scan bounded by one machine word
            low = rest & -rest
            rest ^= low
            dfa_state = low.bit_length() - 1
            key = (type_index, dfa_state)
            tabs = self._tabs.get(key)
            if tabs is None:
                tabs = [{0: 0} for _ in range(self.nchunks)]
                self._tabs[key] = tabs
            row = rows[dfa_state]
            remaining = options
            chunk_index = 0
            while remaining:  # ungoverned: bit-scan bounded by the type count
                chunk = remaining & 0xFFFF
                if chunk:
                    table = tabs[chunk_index]
                    part = table.get(chunk)
                    if part is None:
                        stack = []
                        value = chunk
                        while part is None:
                            stack.append(value)
                            value ^= value & -value
                            part = table.get(value)
                        base = chunk_index << 4
                        while stack:  # ungoverned: chain-fill bounded by 16 bits
                            value = stack.pop()
                            low_bit = value & -value
                            part |= row[base + low_bit.bit_length() - 1]
                            table[value] = part
                    total |= part
                remaining >>= 16
                chunk_index += 1
        return total

    def matches(self, type_index: int, child_masks: list[int], start: int, count: int) -> bool:
        """Does some choice of child types drive the content DFA of type
        ``type_index`` from its initial state into a final state?"""
        current = self.dfa_initial[type_index]
        for offset in range(count):
            current = self.content_step(type_index, current, child_masks[start + offset])
            if not current:
                return False
        return bool(current & self.dfa_finals[type_index])


_TYPINGS: "weakref.WeakKeyDictionary[Any, _EDTDTables]" = weakref.WeakKeyDictionary()


def _tables_of(edtd: "_EDTD") -> _EDTDTables:
    tables = _TYPINGS.get(edtd)
    if tables is None:
        tables = _EDTDTables(edtd)
        _TYPINGS[edtd] = tables
    return tables


def edtd_type_masks(edtd: "_EDTD", tree: "_Tree") -> tuple[_EDTDTables, list[int]]:
    """Possible-type masks for every arena node (BFS index order)."""
    tables = _tables_of(edtd)
    arena = _arena_of(tree)
    size = len(arena.labels)
    labels = arena.labels
    n_children = arena.n_children
    first_child = arena.first_child
    by_label = tables.by_label
    leaf_by_label = tables.leaf_by_label
    matches = tables.matches
    result = [0] * size
    for node in range(size - 1, -1, -1):
        label = labels[node]
        count = n_children[node]
        if count == 0:
            result[node] = leaf_by_label.get(label, 0)
            continue
        candidates = by_label.get(label, 0)
        mask = 0
        start = first_child[node]
        rest = candidates
        while rest:  # ungoverned: bit-scan bounded by one machine word
            low = rest & -rest
            rest ^= low
            type_index = low.bit_length() - 1
            if matches(type_index, result, start, count):
                mask |= low
        result[node] = mask
    return tables, result


def edtd_possible_types(edtd: "_EDTD", tree: "_Tree") -> frozenset[Hashable]:
    """Arena-based ``EDTD.possible_types`` (see :class:`_EDTDTables`)."""
    tables, result = edtd_type_masks(edtd, tree)
    return _unmask(result[0], tables.types)


def edtd_accepts(edtd: "_EDTD", tree: "_Tree") -> bool:
    """Arena-based acceptance: start-types intersection on the root mask."""
    tables, result = edtd_type_masks(edtd, tree)
    return bool(result[0] & tables.start_mask)


# ----------------------------------------------------------------------
# Structural keys and memo caches
# ----------------------------------------------------------------------

def bta_structural_key(bta: "_BTA") -> tuple[Any, ...] | None:
    """A hashable structural fingerprint of a BTA, or None when
    uncacheable (colliding state/label reprs — two distinct automata
    must never share a key).

    Equal keys imply equal states, rules, and finals up to canonical
    repr, hence equal determinizations — the cache trades recall for
    soundness, exactly like :func:`repro.strings.kernels.structural_key`.
    """
    alphabet_key = _symbol_reprs(bta.alphabet)
    state_key = _symbol_reprs(bta.states)
    if alphabet_key is None or state_key is None:
        return None
    order = sorted(bta.states, key=canonical_repr)
    code = {state: index for index, state in enumerate(order)}
    labels = sorted(bta.alphabet, key=canonical_repr)
    leaf = tuple(
        _mask_of(bta.leaf_rules.get(label, ()), code) for label in labels
    )
    internal = tuple(
        sorted(
            (canonical_repr(label), code[q1], code[q2], _mask_of(targets, code))
            for (label, q1, q2), targets in bta.internal_rules.items()
        )
    )
    return (
        "bta",
        alphabet_key,
        state_key,
        leaf,
        internal,
        _mask_of(bta.finals, code),
    )


_DET_CACHE = _KernelCache("bta_determinize")
_FROM_EDTD_CACHE = _KernelCache("bta_from_edtd")
_INCL_CACHE = _KernelCache("bta_inclusion")
_MONOID_CACHE = _KernelCache("edtd_monoid")

_ALL_CACHES = (_DET_CACHE, _FROM_EDTD_CACHE, _INCL_CACHE, _MONOID_CACHE)


def _kernel_cache_totals() -> tuple[int, int]:
    return (
        sum(cache.hits for cache in _ALL_CACHES),
        sum(cache.misses for cache in _ALL_CACHES),
    )


_obs.register_cache_provider(_kernel_cache_totals)


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/entry counters of every tree-kernel cache, keyed by name."""
    return {cache.name: cache.stats() for cache in _ALL_CACHES}


def clear_caches() -> None:
    """Drop all tree-kernel cache entries and reset the counters."""
    for cache in _ALL_CACHES:
        cache.clear()


def cached_bta_determinize(bta: "_BTA", *, budget: Budget | None = None) -> "_BTA":
    """Memoized :func:`bta_determinize`, interning structurally-equal
    inputs.  The returned BTA is shared between callers — treat it as
    immutable.  Hits replay the recorded budget cost (memo tier first,
    then the on-disk artifact cache when one is configured)."""
    budget = resolve_budget(budget)

    def build(inner_budget: Budget | None) -> "_BTA":
        return bta_determinize(bta, budget=inner_budget)

    return _memoized(_DET_CACHE, bta_structural_key(bta), build, budget)


def cached_bta_from_edtd(
    edtd: "_EDTD", marker: object = None, *, budget: Budget | None = None
) -> "_BTA":
    """Memoized EDTD -> BTA translation keyed by the schema's structural
    fingerprint (:func:`repro.cache.keys.schema_structural_key`).

    The translation itself is polynomial and uncharged, so hits replay a
    zero cost; the win is avoiding the rebuild inside decision-procedure
    loops that query the same schema against many candidates.
    """
    from repro.cache.keys import schema_structural_key
    from repro.tree_automata.inclusion import bta_from_edtd
    from repro.trees.encoding import MARKER

    if marker is None:
        marker = MARKER
    budget = resolve_budget(budget)
    schema_key = schema_structural_key(edtd)
    key = (
        None
        if schema_key is None
        else ("bta_from_edtd", canonical_repr(marker), schema_key)
    )

    def build(inner_budget: Budget | None) -> "_BTA":
        return bta_from_edtd(edtd, marker)

    return _memoized(_FROM_EDTD_CACHE, key, build, budget)
