"""Schema-guided pruned BTA determinization (tree side).

The tree counterpart of :mod:`repro.strings.schema_guided`, after
Niehren/Sakho/Al Serhali, *Schema-Based Automata Determinization*
(arXiv 2209.10312).  The blind bottom-up subset construction
(:func:`repro.tree_automata.kernels.bta_determinize`) combines every
discovered subset with every other under every label; when the
determinized automaton is only ever run on trees of a known schema,
subsets that arise only from schema-invalid subtrees are wasted work.

The guided worklist runs over pairs ``(guide state, subset mask)``: a
deterministic (not necessarily complete) guide BTA assigns each
schema-valid subtree a unique state, and a combination
``label(pair1, pair2)`` is attempted only when the guide has a *useful*
rule ``label(g1, g2) -> g`` (useful = the rule's states are both
bottom-up reachable and can still reach a final).  Everything outside
the guide's universe — including the entire dead-subset cascade the
complete blind result carries — is never materialized.

The output BTA is over **subsets only** (guide component dropped at the
boundary): each recorded transition depends only on the subset masks,
so bottom-up determinism is preserved and under
:func:`universal_bta_guide` the result equals the blind kernel's
output state-for-state.

Budget charging mirrors :func:`~repro.tree_automata.kernels._determinize_scalar`
per *pair*: seed pairs are free, every fresh pair charges one state,
``|labels| * (1 or 2)`` steps accrue per partner **before** guide
pruning (so the universal guide reproduces blind trip counts
charge-for-charge), flushed in ``_FLUSH`` batches, with lazy
:class:`GuidedBTADetCheckpoint` snapshots interchangeable in contract
with :class:`~repro.tree_automata.kernels.BTADetCheckpoint`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro import observability as _obs
from repro.errors import AutomatonError
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.strings.kernels import _FLUSH, _KernelCache, _mask_of, _memoized, _unmask
from repro.tree_automata.kernels import (
    _coding_of,
    _mask_views,
    bta_structural_key,
)

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from repro.schemas.edtd import EDTD as _EDTD
    from repro.tree_automata.bta import BTA as _BTA

State = Hashable
Symbol = Hashable


# ----------------------------------------------------------------------
# Guides
# ----------------------------------------------------------------------

def universal_bta_guide(alphabet: Iterable[Symbol]) -> "_BTA":
    """The one-state complete all-final guide BTA over *alphabet*: a
    guide that prunes nothing.  Guiding by it reproduces the blind
    subset construction state-for-state and charge-for-charge."""
    from repro.tree_automata.bta import BTA

    alphabet = frozenset(alphabet)
    state = "*"
    return BTA(
        {state},
        alphabet,
        {label: {state} for label in alphabet},
        {(label, state, state): {state} for label in alphabet},
        {state},
    )


def bta_guide_from_edtd(edtd: "_EDTD", *, budget: Budget | None = None) -> "_BTA":
    """A deterministic guide BTA for the binary encodings of *edtd*'s
    trees: the (memoized) determinization of the schema's BTA encoding.

    Both stages are cached (:func:`~repro.tree_automata.kernels.cached_bta_from_edtd`
    and :func:`~repro.tree_automata.kernels.cached_bta_determinize`), so
    repeated guided runs against the same schema pay the construction
    once.
    """
    from repro.tree_automata.kernels import (
        cached_bta_determinize,
        cached_bta_from_edtd,
    )

    return cached_bta_determinize(cached_bta_from_edtd(edtd, budget=budget), budget=budget)


def _guide_tables(
    guide: "_BTA",
) -> tuple[dict[Symbol, State], dict[tuple[Symbol, State, State], State], frozenset[State]]:
    """``(leaf rules, internal rules, useful states)`` of *guide*, trimmed.

    The guide must be bottom-up deterministic — at most one target per
    rule — but need **not** be complete (missing rules are exactly what
    prunes).  Useful = bottom-up reachable and top-down co-reachable
    from a final; rules are kept only when all their states are useful,
    so the determinized blind guide's dead-subset sink (never final)
    vanishes along with everything it guards.
    """
    for label, targets in guide.leaf_rules.items():
        if len(targets) > 1:
            raise AutomatonError(
                f"schema guide must be bottom-up deterministic: leaf rule for "
                f"{label!r} has {len(targets)} targets"
            )
    for (label, _q1, _q2), targets in guide.internal_rules.items():
        if len(targets) > 1:
            raise AutomatonError(
                f"schema guide must be bottom-up deterministic: internal rule "
                f"for {label!r} has {len(targets)} targets"
            )
    reachable = guide.reachable_states()
    useful_set = {state for state in guide.finals if state in reachable}
    changed = True
    while changed:  # ungoverned: monotone fixpoint bounded by |guide states|
        changed = False
        for (_label, q1, q2), targets in guide.internal_rules.items():
            (target,) = tuple(targets)
            if target in useful_set and q1 in reachable and q2 in reachable:
                if q1 not in useful_set:
                    useful_set.add(q1)
                    changed = True
                if q2 not in useful_set:
                    useful_set.add(q2)
                    changed = True
    useful = frozenset(useful_set)
    leaf_of: dict[Symbol, State] = {}
    for label, targets in guide.leaf_rules.items():
        if targets:
            (target,) = tuple(targets)
            if target in useful:
                leaf_of[label] = target
    rule_of: dict[tuple[Symbol, State, State], State] = {}
    for (label, q1, q2), targets in guide.internal_rules.items():
        if targets:
            (target,) = tuple(targets)
            if q1 in useful and q2 in useful and target in useful:
                rule_of[(label, q1, q2)] = target
    return leaf_of, rule_of, useful


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GuidedBTADetCheckpoint:
    """Resumable snapshot of a partially-run guided BTA determinization.

    Same observable contract as
    :class:`~repro.tree_automata.kernels.BTADetCheckpoint` —
    discovery-ordered worklist, ``done`` counter of fully-combined rows,
    idempotent transition entries — but the worklist holds
    ``(guide state, subset)`` pairs, the unit the guided loop charges by.
    """

    pairs: tuple[tuple[State, frozenset[State]], ...]
    transitions: tuple[
        tuple[tuple[Symbol, frozenset[State], frozenset[State]], frozenset[State]], ...
    ]
    done: int

    @property
    def subsets(self) -> tuple[frozenset[State], ...]:
        """The distinct subset components, in discovery order."""
        out: list[frozenset[State]] = []
        seen: set[frozenset[State]] = set()
        for _, subset in self.pairs:
            if subset not in seen:
                seen.add(subset)
                out.append(subset)
        return tuple(out)

    @property
    def states_explored(self) -> int:
        return len(self.pairs)

    @property
    def frontier_size(self) -> int:
        return len(self.pairs) - self.done


# ----------------------------------------------------------------------
# The guided kernel
# ----------------------------------------------------------------------

def bta_determinize_guided(
    bta: "_BTA",
    guide: "_BTA",
    *,
    budget: Budget | None = None,
    checkpoint: GuidedBTADetCheckpoint | None = None,
    trace: Any = None,
) -> "_BTA":
    """Bottom-up subset construction pruned by *guide* (module docstring).

    For every tree accepted by *guide* the result assigns the same
    subset as the blind determinization, so ``L(result) ∩ L(guide) =
    L(bta) ∩ L(guide)``; subset states arising only from guide-invalid
    subtrees are never materialized.  Under :func:`universal_bta_guide`
    the result and the budget charge sequence equal the blind kernel's.
    """
    budget = resolve_budget(budget)
    coding = _coding_of(bta)
    leaf_of, rule_of, useful = _guide_tables(guide)
    with _obs.construction_span(
        "bta-determinize",
        trace=trace,
        budget=budget,
        kernel="schema-guided",
        nta_states=len(coding.order),
        guide_states=len(useful),
    ) as span:
        pairs, transitions = _guided_worklist(
            coding, leaf_of, rule_of, budget, checkpoint
        )
        result = _assemble_guided(bta, coding, pairs, transitions, leaf_of)
        if span is not None:
            span.annotate(subsets=len(result.states), pairs=len(pairs))
        if _obs.ENABLED:
            _obs.METRICS.counter("bta_determinize.runs").inc()
            _obs.METRICS.counter("bta_determinize.schema_guided.runs").inc()
            _obs.METRICS.histogram("bta_determinize.subsets").observe(
                len(result.states)
            )
    return result


def _guided_worklist(
    coding: Any,
    leaf_of: dict[Symbol, State],
    rule_of: dict[tuple[Symbol, State, State], State],
    budget: Budget | None,
    checkpoint: GuidedBTADetCheckpoint | None,
) -> tuple[list[tuple[State, int]], dict[tuple[int, int, int], int]]:
    """The governed guided worklist (single source of truth for charging)."""
    labels = coding.labels
    nlabels = len(labels)
    label_range = range(nlabels)
    if checkpoint is None:
        # Seeds mirror _seed_masks but keep only guide-alive leaf labels,
        # deduplicated per (guide state, mask) pair; uncharged like the
        # blind kernel's leaf subsets.
        pairs: list[tuple[State, int]] = []
        pair_index: set[tuple[State, int]] = set()
        for label_index, label in enumerate(labels):
            g_state = leaf_of.get(label)
            if g_state is None:
                continue
            pair = (g_state, coding.leaf_masks[label_index])
            if pair not in pair_index:
                pair_index.add(pair)
                pairs.append(pair)
        transitions: dict[tuple[int, int, int], int] = {}
        done = 0
    else:
        code = coding.code
        pairs = [(g, _mask_of(subset, code)) for g, subset in checkpoint.pairs]
        pair_index = set(pairs)
        transitions = {
            (
                coding.label_code[label],
                _mask_of(s1, code),
                _mask_of(s2, code),
            ): _mask_of(target, code)
            for (label, s1, s2), target in checkpoint.transitions
        }
        done = checkpoint.done

    step = coding.step
    if budget is not None:
        cursor = [done]

        def snapshot() -> GuidedBTADetCheckpoint:
            # Decoded lazily, only at trip time; the row at ``cursor`` is
            # re-run on resume (idempotent entries, nothing lost or
            # double-charged).
            order = coding.order
            return GuidedBTADetCheckpoint(
                pairs=tuple((g, _unmask(mask, order)) for g, mask in pairs),
                transitions=tuple(
                    (
                        (labels[label_index], _unmask(m1, order), _unmask(m2, order)),
                        _unmask(target, order),
                    )
                    for (label_index, m1, m2), target in transitions.items()
                ),
                done=cursor[0],
            )

        tick, charge_states = budget.tick, budget.charge_states
        pending = 0
    with budget_phase(budget, "bta-determinize"):
        while done < len(pairs):
            g_current, current = pairs[done]
            if budget is not None:
                cursor[0] = done
            for position in range(done + 1):
                g_partner, partner = pairs[position]
                both_sides = position < done
                if budget is not None:
                    # Accrued before guide pruning — the work the blind
                    # loop would do — so the universal guide reproduces
                    # blind trip counts exactly.
                    pending += nlabels * (2 if both_sides else 1)
                    if pending >= _FLUSH:
                        tick(pending, len(pairs) - done, snapshot)
                        pending = 0
                for label_index in label_range:
                    label = labels[label_index]
                    g_target = rule_of.get((label, g_current, g_partner))
                    if g_target is not None:
                        target = step(label_index, current, partner)
                        transitions[(label_index, current, partner)] = target
                        pair = (g_target, target)
                        if pair not in pair_index:
                            pair_index.add(pair)
                            pairs.append(pair)
                            if budget is not None:
                                charge_states(1, len(pairs) - done, snapshot)
                    if both_sides:
                        g_target = rule_of.get((label, g_partner, g_current))
                        if g_target is not None:
                            target = step(label_index, partner, current)
                            transitions[(label_index, partner, current)] = target
                            pair = (g_target, target)
                            if pair not in pair_index:
                                pair_index.add(pair)
                                pairs.append(pair)
                                if budget is not None:
                                    charge_states(1, len(pairs) - done, snapshot)
            done += 1
        if budget is not None and pending:
            budget.tick(pending, 0)
    return pairs, transitions


def _assemble_guided(
    bta: "_BTA",
    coding: Any,
    pairs: list[tuple[State, int]],
    transitions: dict[tuple[int, int, int], int],
    leaf_of: dict[Symbol, State],
) -> "_BTA":
    """Decode the pair worklist into a subsets-only BTA (guide dropped).

    Mirrors :func:`~repro.tree_automata.kernels._assemble_bta`, except
    leaf rules exist only for guide-alive labels — under the universal
    guide that is every label and the outputs coincide.
    """
    from repro.tree_automata.bta import BTA

    masks: list[int] = []
    seen_masks: set[int] = set()
    for _, mask in pairs:
        if mask not in seen_masks:
            seen_masks.add(mask)
            masks.append(mask)
    views = _mask_views(coding.order, masks, coding.nchunks)
    singletons = {mask: frozenset((view,)) for mask, view in views.items()}
    labels = coding.labels
    leaf_rules = {
        label: singletons[coding.leaf_masks[label_index]]
        for label_index, label in enumerate(labels)
        if label in leaf_of
    }
    internal_rules = {
        (labels[label_index], views[m1], views[m2]): singletons[target]
        for (label_index, m1, m2), target in transitions.items()
    }
    finals_mask = coding.finals_mask
    finals = [view for mask, view in views.items() if mask & finals_mask]
    return BTA._from_parts(
        views.values(), bta.alphabet, leaf_rules, internal_rules, finals
    )


# ----------------------------------------------------------------------
# Memo cache (strategy folded into the key via the cache name)
# ----------------------------------------------------------------------

_SG_BTA_CACHE = _KernelCache("schema_guided_bta_det")


def _sg_cache_totals() -> tuple[int, int]:
    return (_SG_BTA_CACHE.hits, _SG_BTA_CACHE.misses)


_obs.register_cache_provider(_sg_cache_totals)


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/entry counters of the guided tree-kernel cache."""
    return {_SG_BTA_CACHE.name: _SG_BTA_CACHE.stats()}


def clear_caches() -> None:
    """Drop the guided tree-kernel memo entries and reset the counters."""
    _SG_BTA_CACHE.clear()


def cached_bta_determinize_guided(
    bta: "_BTA", guide: "_BTA", *, budget: Budget | None = None
) -> "_BTA":
    """Memoized :func:`bta_determinize_guided`, keyed by both structural
    fingerprints; the cache name folds the strategy into the on-disk
    artifact digest so blind and guided artifacts never collide.  Hits
    replay the recorded budget cost."""
    budget = resolve_budget(budget)
    bta_key = bta_structural_key(bta)
    guide_key = bta_structural_key(guide)
    key = None
    if bta_key is not None and guide_key is not None:
        key = ("schema-guided", bta_key, guide_key)

    def build(inner_budget: Budget | None) -> "_BTA":
        return bta_determinize_guided(bta, guide, budget=inner_budget)

    return _memoized(_SG_BTA_CACHE, key, build, budget)
