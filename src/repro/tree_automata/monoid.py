"""Monoid forest automata (Section 4.4.1, after Bojanczyk/Walukiewicz [6]).

A monoid forest automaton assigns values of a finite monoid ``(M, +, e)``
to forests: the empty forest gets ``e``, a tree ``a(s)`` gets
``delta(a, A(s))``, and a forest gets the monoid sum of its trees' values.
A forest is accepted when its value is final.

The paper uses these automata in the proof of Theorem 4.12 (existence of
maximal lower approximations for depth-bounded languages): replacing
subforests by value-equivalent subforests preserves membership.  This
module provides the model, acceptance, the value-equivalence relation the
proof exploits, and a translation from EDTDs for the horizontal languages
(:func:`monoid_from_edtd` builds the transition monoid of the determinized
forest behaviour).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TYPE_CHECKING, cast

from repro import observability as _obs
from repro.errors import AutomatonError
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.trees.tree import Tree

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from repro.schemas.edtd import EDTD as _EDTD
    from repro.strings.dfa import DFA as _DFA

Value = Hashable
Symbol = Hashable

#: A transition-monoid element: the function ``Q -> Q`` a word induces,
#: as a tuple of successor positions in a fixed state order.
_Fn = tuple[int, ...]


class FiniteMonoid:
    """A finite monoid ``(M, +, e)`` with an explicit operation table."""

    def __init__(
        self,
        elements: Iterable[Value],
        operation: Mapping[tuple[Value, Value], Value],
        identity: Value,
    ) -> None:
        self.elements: frozenset[Value] = frozenset(elements)
        self.operation: dict[tuple[Value, Value], Value] = dict(operation)
        self.identity: Value = identity
        self._validate()

    def _validate(self) -> None:
        if self.identity not in self.elements:
            raise AutomatonError("identity must be an element")
        for x in self.elements:
            for y in self.elements:
                if (x, y) not in self.operation:
                    raise AutomatonError(f"operation undefined on ({x!r}, {y!r})")
                if self.operation[(x, y)] not in self.elements:
                    raise AutomatonError("operation must be closed")
        for x in self.elements:
            if self.add(x, self.identity) != x or self.add(self.identity, x) != x:
                raise AutomatonError("identity law violated")
        for x in self.elements:
            for y in self.elements:
                for z in self.elements:
                    if self.add(self.add(x, y), z) != self.add(x, self.add(y, z)):
                        raise AutomatonError("associativity violated")

    def add(self, x: Value, y: Value) -> Value:
        return self.operation[(x, y)]

    def sum(self, values: Sequence[Value]) -> Value:
        result = self.identity
        for value in values:
            result = self.add(result, value)
        return result

    def __repr__(self) -> str:
        return f"FiniteMonoid(elements={len(self.elements)})"


class MonoidForestAutomaton:
    """``A = ((Q, +, q0), Sigma, delta, F)`` per the paper's definition."""

    def __init__(
        self,
        monoid: FiniteMonoid,
        alphabet: Iterable[Symbol],
        delta: Mapping[tuple[Symbol, Value], Value],
        finals: Iterable[Value],
    ) -> None:
        self.monoid = monoid
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.delta: dict[tuple[Symbol, Value], Value] = dict(delta)
        self.finals: frozenset[Value] = frozenset(finals)
        if not self.finals <= monoid.elements:
            raise AutomatonError("final values must be monoid elements")
        for symbol in self.alphabet:
            for value in monoid.elements:
                if (symbol, value) not in self.delta:
                    raise AutomatonError(
                        f"delta undefined on ({symbol!r}, {value!r})"
                    )

    # ------------------------------------------------------------------

    def value_of_tree(self, tree: Tree) -> Value:
        """``A(t) = delta(a, A(subforest))``.

        Evaluated bottom-up over the :class:`~repro.trees.arena.ArenaTree`
        flattening — one value slot per node, no recursion, so arbitrarily
        deep documents are safe.
        """
        from repro.trees.arena import ArenaTree

        arena = ArenaTree.from_tree(tree)
        labels = arena.labels
        alphabet = self.alphabet
        for label in arena.label_table:
            if label not in alphabet:
                raise AutomatonError(f"unknown label {label!r}")
        add = self.monoid.add
        delta = self.delta
        identity = self.monoid.identity
        first_child = arena.first_child
        n_children = arena.n_children
        values: list[Value] = [identity] * len(arena)
        for node in arena.bottom_up():
            total = identity
            start = first_child[node]
            for child in range(start, start + n_children[node]):
                total = add(total, values[child])
            values[node] = delta[(labels[node], total)]
        return values[0]

    def value_of_forest(self, forest: Sequence[Tree]) -> Value:
        """``A(t1 ... tn) = A(t1) + ... + A(tn)`` (``q0`` when empty)."""
        return self.monoid.sum([self.value_of_tree(tree) for tree in forest])

    def accepts_forest(self, forest: Sequence[Tree]) -> bool:
        return self.value_of_forest(forest) in self.finals

    def accepts(self, tree: Tree) -> bool:
        """Accept the singleton forest ``(tree,)``."""
        return self.value_of_tree(tree) in self.finals

    def __repr__(self) -> str:
        return (
            f"MonoidForestAutomaton(values={len(self.monoid.elements)}, "
            f"alphabet={sorted(map(str, self.alphabet))}, finals={len(self.finals)})"
        )


def transition_monoid_from_dfa(
    dfa: "_DFA", budget: Budget | None = None
) -> tuple[FiniteMonoid, dict[Symbol, _Fn]]:
    """The transition monoid of a complete DFA: elements are the functions
    ``Q -> Q`` induced by words, with composition; returns the monoid and
    the map from alphabet symbols to their generator elements.

    Elements are represented as tuples of successor states in a fixed
    state order.  Used to build forest automata whose "horizontal"
    behaviour is a given regular language.  The monoid can have up to
    ``n^n`` elements, so each fresh element is charged to the resolved
    *budget*.
    """
    budget = resolve_budget(budget)
    states = sorted(dfa.states, key=repr)
    index = {state: i for i, state in enumerate(states)}

    def function_of_symbol(symbol: Symbol) -> _Fn:
        return tuple(index[dfa.transitions[(state, symbol)]] for state in states)

    identity = tuple(range(len(states)))
    generators = {symbol: function_of_symbol(symbol) for symbol in dfa.alphabet}

    def compose(f: _Fn, g: _Fn) -> _Fn:
        # first f, then g
        return tuple(g[f[i]] for i in range(len(f)))

    elements: set[_Fn] = {identity}
    queue: deque[_Fn] = deque([identity])
    while queue:
        if budget is not None:
            with budget_phase(budget, "transition-monoid"):
                budget.tick(frontier=len(queue))
        current = queue.popleft()
        for gen in generators.values():
            nxt = compose(current, gen)
            if nxt not in elements:
                elements.add(nxt)
                queue.append(nxt)
                if budget is not None:
                    with budget_phase(budget, "transition-monoid"):
                        budget.charge_states(frontier=len(queue))
    operation = {
        (f, g): compose(f, g) for f in elements for g in elements
    }
    # Close under composition (elements reachable from identity by
    # generators already form a monoid, but products of non-generator
    # elements may escape the reachable set; iterate to closure).
    changed = True
    while changed:
        if budget is not None:
            with budget_phase(budget, "transition-monoid"):
                budget.tick(frontier=len(elements))
        changed = False
        for (f, g), h in list(operation.items()):
            if h not in elements:
                elements.add(h)
                changed = True
        if changed:
            operation = {
                (f, g): compose(f, g) for f in elements for g in elements
            }
    monoid = FiniteMonoid(elements, operation, identity)
    return monoid, generators


def monoid_from_edtd(
    edtd: "_EDTD", *, budget: Budget | None = None, trace: object = None
) -> tuple[FiniteMonoid, dict[Symbol, _Fn]]:
    """The transition monoid of *edtd*'s combined horizontal behaviour.

    Every content model ``d(tau)`` is a DFA over the type alphabet; a
    type symbol ``sigma`` acts on the disjoint union of all content-DFA
    state sets at once.  The returned monoid is generated by these joint
    actions (one generator per type), so two child sequences are
    value-equivalent iff **every** content model treats them the same —
    the relation the Theorem 4.12 replacement argument exploits.

    Returns ``(monoid, generators)`` with ``generators`` mapping each
    type to its generator element.  Memoized by schema fingerprint
    (:data:`repro.tree_automata.kernels._MONOID_CACHE`) with
    recorded-cost budget recharge, so repeated governed calls trip at
    the same counters warm or cold.
    """
    from repro.cache.keys import schema_structural_key
    from repro.strings.kernels import canonical_repr
    from repro.tree_automata.kernels import _MONOID_CACHE, _memoized

    budget = resolve_budget(budget)
    schema_key = schema_structural_key(edtd)
    key = None if schema_key is None else ("edtd_monoid", schema_key)

    def build(inner_budget: Budget | None) -> tuple[FiniteMonoid, dict[Symbol, _Fn]]:
        from repro.strings.dfa import DFA

        types = sorted(edtd.types, key=canonical_repr)
        sink = ("monoid-sink",)
        states: list[Hashable] = [sink]
        transitions: dict[tuple[Hashable, Hashable], Hashable] = {}
        for position, type_ in enumerate(types):
            dfa = edtd.rules[type_]
            for q in dfa.states:
                states.append(("content", position, q))
            for sym in types:
                transitions[(sink, sym)] = sink
                for q in dfa.states:
                    dst = dfa.successor(q, sym)
                    transitions[(("content", position, q), sym)] = (
                        ("content", position, dst) if dst is not None else sink
                    )
        combined = DFA(states, types, transitions, sink, frozenset())
        with _obs.construction_span(
            "edtd-monoid", trace=trace, budget=inner_budget, types=len(types)
        ) as span:
            monoid, generators = transition_monoid_from_dfa(combined, inner_budget)
            if span is not None:
                span.annotate(elements=len(monoid.elements))
        return monoid, generators

    return cast(
        "tuple[FiniteMonoid, dict[Symbol, _Fn]]",
        _memoized(_MONOID_CACHE, key, build, budget),
    )


def forest_automaton_for_child_language(
    dfa: "_DFA", alphabet: Iterable[Symbol]
) -> MonoidForestAutomaton:
    """A monoid forest automaton accepting exactly the *flat* forests
    (sequences of leaves) whose label word lies in ``L(dfa)``; deeper
    trees map to a rejecting absorbing value.

    A small but complete worked translation used by the tests to exercise
    the model end-to-end.  Assumes no non-empty word of ``L(dfa)``'s
    automaton acts as the identity transformation (true for the monotone
    counting languages the tests use); otherwise a deep tree could
    masquerade as a leaf.
    """
    complete = dfa.completed(alphabet)
    monoid, generators = transition_monoid_from_dfa(complete)
    sink = ("nonflat",)
    elements = set(monoid.elements) | {sink}
    operation = dict(monoid.operation)
    for element in elements:
        operation[(element, sink)] = sink
        operation[(sink, element)] = sink
    extended = FiniteMonoid(elements, operation, monoid.identity)

    delta: dict[tuple[Symbol, Value], Value] = {}
    for symbol in complete.alphabet:
        for value in elements:
            if value == extended.identity:
                delta[(symbol, value)] = generators[symbol]
            else:
                # The node has children (non-identity subforest value):
                # the forest is not flat.
                delta[(symbol, value)] = sink

    states = sorted(complete.states, key=repr)
    index = {state: i for i, state in enumerate(states)}
    finals = {
        value
        for value in monoid.elements
        if states[cast(_Fn, value)[index[complete.initial]]] in complete.finals
    }
    return MonoidForestAutomaton(extended, complete.alphabet, delta, finals)
