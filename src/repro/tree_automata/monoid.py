"""Monoid forest automata (Section 4.4.1, after Bojanczyk/Walukiewicz [6]).

A monoid forest automaton assigns values of a finite monoid ``(M, +, e)``
to forests: the empty forest gets ``e``, a tree ``a(s)`` gets
``delta(a, A(s))``, and a forest gets the monoid sum of its trees' values.
A forest is accepted when its value is final.

The paper uses these automata in the proof of Theorem 4.12 (existence of
maximal lower approximations for depth-bounded languages): replacing
subforests by value-equivalent subforests preserves membership.  This
module provides the model, acceptance, the value-equivalence relation the
proof exploits, and a translation from EDTDs for the horizontal languages
(:func:`monoid_from_edtd` builds the transition monoid of the determinized
forest behaviour).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping, Sequence

from repro.errors import AutomatonError
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.trees.tree import Tree

Value = Hashable
Symbol = Hashable


class FiniteMonoid:
    """A finite monoid ``(M, +, e)`` with an explicit operation table."""

    def __init__(
        self,
        elements: Iterable[Value],
        operation: Mapping[tuple[Value, Value], Value],
        identity: Value,
    ) -> None:
        self.elements: frozenset[Value] = frozenset(elements)
        self.operation: dict[tuple[Value, Value], Value] = dict(operation)
        self.identity: Value = identity
        self._validate()

    def _validate(self) -> None:
        if self.identity not in self.elements:
            raise AutomatonError("identity must be an element")
        for x in self.elements:
            for y in self.elements:
                if (x, y) not in self.operation:
                    raise AutomatonError(f"operation undefined on ({x!r}, {y!r})")
                if self.operation[(x, y)] not in self.elements:
                    raise AutomatonError("operation must be closed")
        for x in self.elements:
            if self.add(x, self.identity) != x or self.add(self.identity, x) != x:
                raise AutomatonError("identity law violated")
        for x in self.elements:
            for y in self.elements:
                for z in self.elements:
                    if self.add(self.add(x, y), z) != self.add(x, self.add(y, z)):
                        raise AutomatonError("associativity violated")

    def add(self, x: Value, y: Value) -> Value:
        return self.operation[(x, y)]

    def sum(self, values: Sequence[Value]) -> Value:
        result = self.identity
        for value in values:
            result = self.add(result, value)
        return result

    def __repr__(self) -> str:
        return f"FiniteMonoid(elements={len(self.elements)})"


class MonoidForestAutomaton:
    """``A = ((Q, +, q0), Sigma, delta, F)`` per the paper's definition."""

    def __init__(
        self,
        monoid: FiniteMonoid,
        alphabet: Iterable[Symbol],
        delta: Mapping[tuple[Symbol, Value], Value],
        finals: Iterable[Value],
    ) -> None:
        self.monoid = monoid
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.delta: dict[tuple[Symbol, Value], Value] = dict(delta)
        self.finals: frozenset[Value] = frozenset(finals)
        if not self.finals <= monoid.elements:
            raise AutomatonError("final values must be monoid elements")
        for symbol in self.alphabet:
            for value in monoid.elements:
                if (symbol, value) not in self.delta:
                    raise AutomatonError(
                        f"delta undefined on ({symbol!r}, {value!r})"
                    )

    # ------------------------------------------------------------------

    def value_of_tree(self, tree: Tree) -> Value:
        """``A(t) = delta(a, A(subforest))``."""
        if tree.label not in self.alphabet:
            raise AutomatonError(f"unknown label {tree.label!r}")
        return self.delta[(tree.label, self.value_of_forest(tree.children))]

    def value_of_forest(self, forest: Sequence[Tree]) -> Value:
        """``A(t1 ... tn) = A(t1) + ... + A(tn)`` (``q0`` when empty)."""
        return self.monoid.sum([self.value_of_tree(tree) for tree in forest])

    def accepts_forest(self, forest: Sequence[Tree]) -> bool:
        return self.value_of_forest(forest) in self.finals

    def accepts(self, tree: Tree) -> bool:
        """Accept the singleton forest ``(tree,)``."""
        return self.value_of_tree(tree) in self.finals

    def __repr__(self) -> str:
        return (
            f"MonoidForestAutomaton(values={len(self.monoid.elements)}, "
            f"alphabet={sorted(map(str, self.alphabet))}, finals={len(self.finals)})"
        )


def transition_monoid_from_dfa(
    dfa, budget: Budget | None = None
) -> tuple[FiniteMonoid, dict]:
    """The transition monoid of a complete DFA: elements are the functions
    ``Q -> Q`` induced by words, with composition; returns the monoid and
    the map from alphabet symbols to their generator elements.

    Elements are represented as tuples of successor states in a fixed
    state order.  Used to build forest automata whose "horizontal"
    behaviour is a given regular language.  The monoid can have up to
    ``n^n`` elements, so each fresh element is charged to the resolved
    *budget*.
    """
    budget = resolve_budget(budget)
    states = sorted(dfa.states, key=repr)
    index = {state: i for i, state in enumerate(states)}

    def function_of_symbol(symbol) -> tuple:
        return tuple(index[dfa.transitions[(state, symbol)]] for state in states)

    identity = tuple(range(len(states)))
    generators = {symbol: function_of_symbol(symbol) for symbol in dfa.alphabet}

    def compose(f: tuple, g: tuple) -> tuple:
        # first f, then g
        return tuple(g[f[i]] for i in range(len(f)))

    elements: set[tuple] = {identity}
    queue: deque[tuple] = deque([identity])
    while queue:
        if budget is not None:
            with budget_phase(budget, "transition-monoid"):
                budget.tick(frontier=len(queue))
        current = queue.popleft()
        for gen in generators.values():
            nxt = compose(current, gen)
            if nxt not in elements:
                elements.add(nxt)
                queue.append(nxt)
                if budget is not None:
                    with budget_phase(budget, "transition-monoid"):
                        budget.charge_states(frontier=len(queue))
    operation = {
        (f, g): compose(f, g) for f in elements for g in elements
    }
    # Close under composition (elements reachable from identity by
    # generators already form a monoid, but products of non-generator
    # elements may escape the reachable set; iterate to closure).
    changed = True
    while changed:
        if budget is not None:
            with budget_phase(budget, "transition-monoid"):
                budget.tick(frontier=len(elements))
        changed = False
        for (f, g), h in list(operation.items()):
            if h not in elements:
                elements.add(h)
                changed = True
        if changed:
            operation = {
                (f, g): compose(f, g) for f in elements for g in elements
            }
    monoid = FiniteMonoid(elements, operation, identity)
    return monoid, generators


def forest_automaton_for_child_language(dfa, alphabet) -> MonoidForestAutomaton:
    """A monoid forest automaton accepting exactly the *flat* forests
    (sequences of leaves) whose label word lies in ``L(dfa)``; deeper
    trees map to a rejecting absorbing value.

    A small but complete worked translation used by the tests to exercise
    the model end-to-end.  Assumes no non-empty word of ``L(dfa)``'s
    automaton acts as the identity transformation (true for the monotone
    counting languages the tests use); otherwise a deep tree could
    masquerade as a leaf.
    """
    complete = dfa.completed(alphabet)
    monoid, generators = transition_monoid_from_dfa(complete)
    sink = ("nonflat",)
    elements = set(monoid.elements) | {sink}
    operation = dict(monoid.operation)
    for element in elements:
        operation[(element, sink)] = sink
        operation[(sink, element)] = sink
    extended = FiniteMonoid(elements, operation, monoid.identity)

    delta: dict = {}
    for symbol in complete.alphabet:
        for value in elements:
            if value == extended.identity:
                delta[(symbol, value)] = generators[symbol]
            else:
                # The node has children (non-identity subforest value):
                # the forest is not flat.
                delta[(symbol, value)] = sink

    states = sorted(complete.states, key=repr)
    index = {state: i for i, state in enumerate(states)}
    finals = {
        value
        for value in monoid.elements
        if states[value[index[complete.initial]]] in complete.finals
    }
    return MonoidForestAutomaton(extended, complete.alphabet, delta, finals)
