"""Non-deterministic binary tree automata (Section 4.4.2).

A BTA runs over *binary* trees (every node has zero or two children) with

* leaf transitions ``a -> q`` and
* internal transitions ``a(q1, q2) -> q``.

The module provides runs, bottom-up determinization (the folklore subset
construction the paper invokes for "bottom-up deterministic EDTDs"),
complementation, pairwise products, emptiness — everything the exact
EDTD-inclusion procedure of :mod:`repro.tree_automata.inclusion` needs.

Since PR 7 the hot paths — :meth:`BTA.determinize`,
:meth:`BTA.possible_states`, :meth:`BTA.accepts` — run on the
integer-coded kernels of :mod:`repro.tree_automata.kernels`; the original
loops survive as ``*_reference`` differential oracles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any
from collections.abc import Hashable, Iterable, Mapping

from repro import observability as _obs
from repro.errors import AutomatonError
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.trees.tree import Tree

if TYPE_CHECKING:
    from repro.tree_automata.kernels import BTADetCheckpoint
    from repro.tree_automata.schema_guided import GuidedBTADetCheckpoint

Symbol = Hashable
State = Hashable

#: Shared empty target set — the run/lookup loops fall back to it instead
#: of allocating a fresh ``frozenset()`` per missing rule.
_EMPTY: frozenset[State] = frozenset()


class BTA:
    """A non-deterministic binary tree automaton.

    Parameters
    ----------
    states / alphabet / finals:
        As usual.
    leaf_rules:
        Mapping ``label -> set of states`` for leaf transitions.
    internal_rules:
        Mapping ``(label, q1, q2) -> set of states`` for internal
        transitions.
    """

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        leaf_rules: Mapping[Symbol, Iterable[State]],
        internal_rules: Mapping[tuple[Symbol, State, State], Iterable[State]],
        finals: Iterable[State],
    ) -> None:
        self.states: frozenset[State] = frozenset(states)
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.finals: frozenset[State] = frozenset(finals)
        if not self.finals <= self.states:
            raise AutomatonError("final states must be states")
        self.leaf_rules: dict[Symbol, frozenset[State]] = {}
        for label, targets in leaf_rules.items():
            target_set = frozenset(targets)
            if not target_set:
                continue
            if label not in self.alphabet or not target_set <= self.states:
                raise AutomatonError("malformed leaf rule")
            self.leaf_rules[label] = target_set
        self.internal_rules: dict[tuple[Symbol, State, State], frozenset[State]] = {}
        for (label, q1, q2), targets in internal_rules.items():
            target_set = frozenset(targets)
            if not target_set:
                continue
            if (
                label not in self.alphabet
                or q1 not in self.states
                or q2 not in self.states
                or not target_set <= self.states
            ):
                raise AutomatonError("malformed internal rule")
            self.internal_rules[(label, q1, q2)] = target_set

    @classmethod
    def _from_parts(
        cls,
        states: Iterable[State],
        alphabet: frozenset[Symbol],
        leaf_rules: dict[Symbol, frozenset[State]],
        internal_rules: dict[tuple[Symbol, State, State], frozenset[State]],
        finals: Iterable[State],
    ) -> "BTA":
        """Trusted constructor for the kernels: parts are adopted as-is
        (already frozen, already validated by construction)."""
        bta = object.__new__(cls)
        bta.states = frozenset(states)
        bta.alphabet = alphabet
        bta.leaf_rules = leaf_rules
        bta.internal_rules = internal_rules
        bta.finals = frozenset(finals)
        return bta

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def possible_states(self, tree: Tree) -> frozenset[State]:
        """Bottom-up set of states reachable at the root of *tree*.

        Runs on the arena/bitmask kernel (one int mask per node, no
        recursion); :meth:`possible_states_reference` is the original
        recursive loop, kept as the differential oracle.
        """
        from repro.tree_automata.kernels import bta_possible_states

        return bta_possible_states(self, tree)

    def possible_states_reference(self, tree: Tree) -> frozenset[State]:
        """Recursive reference run (differential oracle for the kernel)."""
        if not tree.children:
            return self.leaf_rules.get(tree.label, _EMPTY)
        if len(tree.children) != 2:
            raise AutomatonError("BTA runs require binary trees")
        left = self.possible_states_reference(tree.children[0])
        right = self.possible_states_reference(tree.children[1])
        rules = self.internal_rules
        label = tree.label
        result: frozenset[State] = _EMPTY
        for q1 in left:
            for q2 in right:
                targets = rules.get((label, q1, q2))
                if targets:
                    result = targets if not result else result | targets
        return result

    def accepts(self, tree: Tree) -> bool:
        from repro.tree_automata.kernels import bta_accepts

        return bta_accepts(self, tree)

    # ------------------------------------------------------------------
    # Emptiness
    # ------------------------------------------------------------------

    def reachable_states(self) -> frozenset[State]:
        """States assignable to some binary tree (least fixpoint)."""
        reachable: set[State] = set()
        for targets in self.leaf_rules.values():
            reachable |= targets
        changed = True
        while changed:  # ungoverned: monotone fixpoint, at most |states| passes
            changed = False
            for (label, q1, q2), targets in self.internal_rules.items():
                if q1 in reachable and q2 in reachable and not targets <= reachable:
                    reachable |= targets
                    changed = True
        return frozenset(reachable)

    def is_empty_language(self) -> bool:
        return not (self.reachable_states() & self.finals)

    def witness_tree(self) -> Tree | None:
        """A smallest-effort member tree, or None if the language is empty."""
        builder: dict[State, Tree] = {}
        for label, targets in sorted(self.leaf_rules.items(), key=repr):
            for state in targets:
                builder.setdefault(state, Tree(label))
        changed = True
        while changed:  # ungoverned: monotone fixpoint, at most |states| passes
            changed = False
            for (label, q1, q2), targets in sorted(self.internal_rules.items(), key=repr):
                if q1 in builder and q2 in builder:
                    for state in targets:
                        if state not in builder:
                            builder[state] = Tree(label, [builder[q1], builder[q2]])
                            changed = True
        for state in sorted(self.finals, key=repr):
            if state in builder:
                return builder[state]
        return None

    # ------------------------------------------------------------------
    # Determinization and boolean operations
    # ------------------------------------------------------------------

    def determinize(
        self,
        *,
        budget: Budget | None = None,
        checkpoint: "BTADetCheckpoint | GuidedBTADetCheckpoint | None" = None,
        trace: Any = None,
        strategy: str = "blind",
        guide: "BTA | None" = None,
    ) -> "BTA":
        """Bottom-up subset construction.

        The result is bottom-up deterministic and complete on the reachable
        subsets (including the empty subset, the dead state): every binary
        tree is assigned exactly one subset state.  Worst-case exponential;
        charges the resolved *budget* one state per fresh subset (the leaf
        subsets are free, matching :meth:`determinize_reference`) and trips
        resumably — the raised ``BudgetExceededError`` carries a
        :class:`~repro.tree_automata.kernels.BTADetCheckpoint` to pass back
        via *checkpoint*.

        *strategy* selects the kernel: ``"blind"`` (default) explores
        every reachable subset; ``"schema-guided"`` prunes the worklist
        with a deterministic *guide* BTA
        (:mod:`repro.tree_automata.schema_guided`) so subsets arising
        only from schema-invalid subtrees are never materialized — the
        result is then deterministic but only complete on the guide's
        universe.  With ``guide=None`` the guided kernel uses the
        universal guide and reproduces the blind construction
        state-for-state; guided runs checkpoint with
        :class:`~repro.tree_automata.schema_guided.GuidedBTADetCheckpoint`.

        Runs on the bitmask worklist kernel
        (:func:`repro.tree_automata.kernels.bta_determinize`);
        :meth:`determinize_reference` is the original round-based loop,
        kept as the differential oracle.
        """
        if strategy == "blind":
            if guide is not None:
                raise AutomatonError(
                    "guide= requires strategy='schema-guided' "
                    "(got strategy='blind')"
                )
            from repro.tree_automata.kernels import BTADetCheckpoint, bta_determinize

            if checkpoint is not None and not isinstance(
                checkpoint, BTADetCheckpoint
            ):
                raise AutomatonError(
                    "strategy='blind' resumes from BTADetCheckpoint, "
                    f"not {type(checkpoint).__name__}"
                )
            return bta_determinize(
                self, budget=budget, checkpoint=checkpoint, trace=trace
            )
        if strategy == "schema-guided":
            from repro.tree_automata.schema_guided import (
                GuidedBTADetCheckpoint,
                bta_determinize_guided,
                universal_bta_guide,
            )

            if checkpoint is not None and not isinstance(
                checkpoint, GuidedBTADetCheckpoint
            ):
                raise AutomatonError(
                    "strategy='schema-guided' resumes from "
                    f"GuidedBTADetCheckpoint, not {type(checkpoint).__name__}"
                )
            if guide is None:
                guide = universal_bta_guide(self.alphabet)
            return bta_determinize_guided(
                self, guide, budget=budget, checkpoint=checkpoint, trace=trace
            )
        raise AutomatonError(
            f"unknown determinization strategy {strategy!r} "
            "(expected 'blind' or 'schema-guided')"
        )

    def determinize_reference(
        self,
        *,
        budget: Budget | None = None,
        checkpoint: "BTADetCheckpoint | None" = None,
        trace: Any = None,
    ) -> "BTA":
        """Round-based subset construction (differential oracle for the
        kernel — same result, same state charges, same governed surface).

        *checkpoint* accepts the kernel's
        :class:`~repro.tree_automata.kernels.BTADetCheckpoint`: its
        ``subsets``/``transitions`` are exactly this loop's data
        structures, and every entry is idempotent, so seeding from one
        resumes without losing, duplicating, or double-charging states.
        """
        budget = resolve_budget(budget)
        leaf_subsets: dict[Symbol, frozenset[State]] = {
            label: self.leaf_rules.get(label, frozenset()) for label in self.alphabet
        }
        subsets: set[frozenset[State]] = set(leaf_subsets.values())
        internal: dict[
            tuple[Symbol, frozenset[State], frozenset[State]], frozenset[State]
        ] = {}
        if checkpoint is not None:
            subsets.update(checkpoint.subsets)
            internal.update(checkpoint.transitions)
        # Index internal rules by label for the closure computation.
        by_label: dict[Symbol, list[tuple[State, State, frozenset[State]]]] = {}
        for (label, q1, q2), targets in self.internal_rules.items():
            by_label.setdefault(label, []).append((q1, q2, targets))
        changed = True
        with _obs.construction_span(
            "bta-determinize", trace=trace, budget=budget, nta_states=len(self.states)
        ) as span:
            while changed:
                if budget is not None:
                    with budget_phase(budget, "bta-determinize"):
                        budget.tick(frontier=len(subsets))
                changed = False
                snapshot = list(subsets)
                for s1 in snapshot:
                    for s2 in snapshot:
                        for label in self.alphabet:
                            key = (label, s1, s2)
                            if key in internal:
                                continue
                            combined: set[State] = set()
                            for q1, q2, targets in by_label.get(label, ()):
                                if q1 in s1 and q2 in s2:
                                    combined |= targets
                            result = frozenset(combined)
                            internal[key] = result
                            if result not in subsets:
                                subsets.add(result)
                                changed = True
                                if budget is not None:
                                    with budget_phase(budget, "bta-determinize"):
                                        budget.charge_states(frontier=len(subsets))
            if span is not None:
                span.annotate(subsets=len(subsets))
            if _obs.ENABLED:
                _obs.METRICS.counter("bta_determinize.runs").inc()
                _obs.METRICS.histogram("bta_determinize.subsets").observe(len(subsets))
        finals = {subset for subset in subsets if subset & self.finals}
        leaf_rules = {label: {subset} for label, subset in leaf_subsets.items()}
        internal_rules = {key: {value} for key, value in internal.items()}
        return BTA(subsets, self.alphabet, leaf_rules, internal_rules, finals)

    def is_deterministic(self) -> bool:
        """True iff every leaf/internal rule has at most one target and all
        combinations are covered (complete)."""
        leaf_rules = self.leaf_rules
        for label in self.alphabet:
            targets = leaf_rules.get(label)
            if targets is None or len(targets) != 1:
                return False
        internal_rules = self.internal_rules
        for label in self.alphabet:
            for q1 in self.states:
                for q2 in self.states:
                    targets = internal_rules.get((label, q1, q2))
                    if targets is None or len(targets) != 1:
                        return False
        return True

    def complement(self, *, budget: Budget | None = None) -> "BTA":
        """Complement w.r.t. all binary trees over the alphabet.

        Determinizes first (charging *budget*), then flips finals.
        """
        det = self.determinize(budget=budget)
        return BTA(
            det.states,
            det.alphabet,
            det.leaf_rules,
            det.internal_rules,
            det.states - det.finals,
        )

    def intersection(self, other: "BTA") -> "BTA":
        """Pairwise product accepting ``L(self) & L(other)``."""
        alphabet = self.alphabet | other.alphabet
        leaf_rules: dict[Symbol, set[tuple[State, State]]] = {}
        states: set[tuple[State, State]] = set()
        for label in alphabet:
            mine = self.leaf_rules.get(label, frozenset())
            theirs = other.leaf_rules.get(label, frozenset())
            pairs = {(q1, q2) for q1 in mine for q2 in theirs}
            if pairs:
                leaf_rules[label] = pairs
                states |= pairs
        internal_rules: dict[
            tuple[Symbol, tuple[State, State], tuple[State, State]],
            set[tuple[State, State]],
        ] = {}
        changed = True
        while changed:  # ungoverned: pair product, bounded by |Q1|*|Q2| states
            changed = False
            snapshot = list(states)
            for (label, a1, a2), targets1 in self.internal_rules.items():
                for (label2, b1, b2), targets2 in other.internal_rules.items():
                    if label != label2:
                        continue
                    left = (a1, b1)
                    right = (a2, b2)
                    if left not in states or right not in states:
                        continue
                    key = (label, left, right)
                    pairs = {(t1, t2) for t1 in targets1 for t2 in targets2}
                    existing = internal_rules.get(key, set())
                    if not pairs <= existing:
                        internal_rules[key] = existing | pairs
                        new_states = pairs - states
                        if new_states:
                            states |= new_states
                            changed = True
            _ = snapshot
        finals = {
            (q1, q2)
            for (q1, q2) in states
            if q1 in self.finals and q2 in other.finals
        }
        return BTA(states, alphabet, leaf_rules, internal_rules, finals)

    def size(self) -> int:
        return (
            len(self.states)
            + sum(len(v) for v in self.leaf_rules.values())
            + sum(len(v) for v in self.internal_rules.values())
        )

    def __repr__(self) -> str:
        return (
            f"BTA(states={len(self.states)}, alphabet={sorted(map(str, self.alphabet))}, "
            f"leaf_rules={len(self.leaf_rules)}, internal_rules={len(self.internal_rules)}, "
            f"finals={len(self.finals)})"
        )
