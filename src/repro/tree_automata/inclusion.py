"""Exact (EXPTIME) decision procedures on general EDTDs.

The paper recalls (Theorem 2.13) that universality/inclusion for EDTDs is
EXPTIME-complete.  This module implements the exact procedures anyway —
they are the ground truth against which the polynomial special cases
(Lemma 3.3) and all approximation constructions are verified:

1. translate each EDTD into a binary tree automaton over the binary
   encoding of :mod:`repro.trees.encoding` (:func:`bta_from_edtd`);
2. decide ``L(B1) - L(B2) = {}`` by a lazy product of ``B1`` with the
   determinization of ``B2`` (:func:`bta_difference_empty`), never
   materializing more subset states than reachable.

``edtd_includes``/``edtd_equivalent``/``edtd_universal`` are the public
entry points.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro import observability as _obs
from repro.runtime.budget import budget_phase, resolve_budget
from repro.schemas.edtd import EDTD
from repro.trees.encoding import MARKER
from repro.tree_automata.bta import BTA

Symbol = Hashable

_END = ("end",)


def bta_from_edtd(edtd: EDTD, marker: object = MARKER) -> BTA:
    """A BTA accepting exactly the binary encodings of ``L(edtd)``.

    States:

    * ``("type", tau)`` — the subtree encodes a tree derivable with root
      type ``tau``;
    * ``("seq", tau, q)`` — the subtree encodes a non-empty suffix of a
      child sequence driving ``d(tau)`` from state ``q`` to acceptance;
    * ``("end",)`` — the subtree is the end-marker leaf.
    """
    edtd = edtd.reduced()
    alphabet = edtd.alphabet | {marker}
    states: set = {_END}
    leaf_rules: dict = {marker: {_END}}
    internal_rules: dict = {}

    def add_internal(key: tuple, target: object) -> None:
        internal_rules.setdefault(key, set()).add(target)

    for tau in edtd.types:
        label = edtd.mu[tau]
        dfa = edtd.rules[tau]
        type_state = ("type", tau)
        states.add(type_state)
        for q in dfa.states:
            states.add(("seq", tau, q))
        # Leaf: tau derives a childless node iff d(tau) accepts epsilon.
        if dfa.accepts_empty_word():
            leaf_rules.setdefault(label, set()).add(type_state)
        # Sigma-node with children: label( chain , # ).
        # Single child sigma: chain is ("type", sigma) directly.
        for (q, sigma), q_next in dfa.transitions.items():
            if q == dfa.initial and q_next in dfa.finals:
                add_internal((label, ("type", sigma), _END), type_state)
        # Longer chains: chain carries ("seq", tau, initial).
        add_internal((label, ("seq", tau, dfa.initial), _END), type_state)
        # Chain cons nodes: #( enc(t_i), rest ).
        for (q, sigma), q_next in dfa.transitions.items():
            # rest is itself a seq suffix from q_next ...
            add_internal(
                (marker, ("type", sigma), ("seq", tau, q_next)),
                ("seq", tau, q),
            )
            # ... or rest is the final element ("type", sigma2).
            for (q_mid, sigma2), q_last in dfa.transitions.items():
                if q_mid == q_next and q_last in dfa.finals:
                    add_internal(
                        (marker, ("type", sigma), ("type", sigma2)),
                        ("seq", tau, q),
                    )

    finals = {("type", tau) for tau in edtd.starts}
    return BTA(states, alphabet, leaf_rules, internal_rules, finals)


def bta_difference_empty(left: BTA, right: BTA, *, budget=None) -> bool:
    """Decide ``L(left) subseteq L(right)`` by emptiness of the lazy product
    of *left* with the (on-the-fly) determinization of *right*.

    The reachable ``(state, subset)`` pair space is the EXPTIME part of
    Theorem 2.13, so the saturation is governed: one state per pair
    discovered, one step per combination examined.

    Since PR 2 this is a worklist saturation on integer-coded right
    subsets: each discovered pair is combined once with the pairs known
    so far (instead of re-scanning the full pair set every round), right
    subsets are int bitmasks, and the search **exits early** on the first
    counterexample pair — a left-final state whose right subset misses
    every right final — rather than saturating first and scanning after.
    The original quadratic loop is kept as
    :func:`bta_difference_empty_reference` for differential testing.
    """
    budget = resolve_budget(budget)
    # Integer-code the right automaton: subsets become int bitmasks.
    right_order = sorted(right.states, key=repr)
    right_code = {state: i for i, state in enumerate(right_order)}

    def right_mask(states: Iterable) -> int:
        mask = 0
        for state in states:
            mask |= 1 << right_code[state]
        return mask

    right_finals = right_mask(right.finals)
    right_rules: dict = {}
    for (label, q1, q2), targets in right.internal_rules.items():
        right_rules.setdefault(label, []).append(
            (1 << right_code[q1], 1 << right_code[q2], right_mask(targets))
        )

    # Left internal rules indexed by each child position, so a popped pair
    # finds its combination partners without scanning every rule.
    by_first: dict = {}
    by_second: dict = {}
    for (label, q1, q2), targets in left.internal_rules.items():
        targets = tuple(targets)
        by_first.setdefault(q1, []).append((label, q2, targets))
        by_second.setdefault(q2, []).append((label, q1, targets))

    left_finals = left.finals
    seen: set[tuple] = set()
    by_left: dict = {}  # left state -> list of discovered right masks
    worklist: deque[tuple] = deque()
    counterexample = False

    def discover(q, mask: int) -> bool:
        """Record pair ``(q, mask)``; True iff it is a counterexample."""
        pair = (q, mask)
        if pair in seen:
            return False
        if q in left_finals and not mask & right_finals:
            return True  # early exit: a tree in L(left) - L(right)
        seen.add(pair)
        by_left.setdefault(q, []).append(mask)
        worklist.append(pair)
        if budget is not None:
            budget.charge_states(1, frontier=len(worklist))
        return False

    step_cache: dict = {}
    pending = 0
    with _obs.construction_span(
        "bta-inclusion", budget=budget
    ) as span, budget_phase(budget, "bta-inclusion"):
        if _obs.ENABLED:
            _obs.METRICS.counter("bta_inclusion.runs").inc()
        for label, left_leaf in left.leaf_rules.items():
            leaf_mask = right_mask(right.leaf_rules.get(label, frozenset()))
            for q in left_leaf:
                if discover(q, leaf_mask):
                    counterexample = True
                    break
            if counterexample:
                break

        while worklist and not counterexample:
            q, mask = worklist.popleft()
            # Combine (q, mask) in both child positions with every pair
            # discovered so far; pairs discovered later re-run the
            # combination from their side, so coverage is complete.
            for position, rules in ((0, by_first.get(q)), (1, by_second.get(q))):
                if not rules:
                    continue
                for label, partner, targets in rules:
                    masks = by_left.get(partner)
                    if not masks:
                        continue
                    rules_for_label = right_rules.get(label, ())
                    for other in list(masks):
                        m1, m2 = (mask, other) if position == 0 else (other, mask)
                        key = (label, m1, m2)
                        subset = step_cache.get(key)
                        if subset is None:
                            subset = 0
                            for b1, b2, tmask in rules_for_label:
                                if m1 & b1 and m2 & b2:
                                    subset |= tmask
                            step_cache[key] = subset
                        if budget is not None:
                            pending += 1
                            if pending >= 256:
                                budget.tick(pending, frontier=len(worklist))
                                pending = 0
                        for target in targets:
                            if discover(target, subset):
                                counterexample = True
                                break
                        if counterexample:
                            break
                    if counterexample:
                        break
                if counterexample:
                    break
        if budget is not None and pending:
            budget.tick(pending, frontier=len(worklist))
        if span is not None:
            span.annotate(included=not counterexample, pairs=len(seen))
        if _obs.ENABLED:
            _obs.METRICS.histogram("bta_inclusion.pairs").observe(len(seen))
    return not counterexample


def bta_difference_empty_reference(left: BTA, right: BTA, *, budget=None) -> bool:
    """Round-based full-rescan saturation — the pre-kernel implementation,
    kept as the differential-testing oracle for
    :func:`bta_difference_empty`.
    """
    budget = resolve_budget(budget)
    alphabet = left.alphabet | right.alphabet
    # Reachable pairs (q, S): q a left state, S the subset of right states.
    pair_states: set[tuple] = set()
    for label in alphabet:
        left_leaf = left.leaf_rules.get(label, frozenset())
        right_leaf = right.leaf_rules.get(label, frozenset())
        for q in left_leaf:
            pair_states.add((q, right_leaf))

    right_by_label: dict = {}
    for (label, q1, q2), targets in right.internal_rules.items():
        right_by_label.setdefault(label, []).append((q1, q2, targets))
    left_by_label: dict = {}
    for (label, q1, q2), targets in left.internal_rules.items():
        left_by_label.setdefault(label, []).append((q1, q2, targets))

    def right_step(label: Symbol, s1: frozenset, s2: frozenset) -> frozenset:
        combined: set = set()
        for q1, q2, targets in right_by_label.get(label, ()):
            if q1 in s1 and q2 in s2:
                combined |= targets
        return frozenset(combined)

    changed = True
    with budget_phase(budget, "bta-inclusion"):
        while changed:
            changed = False
            snapshot = list(pair_states)
            for (p1, s1) in snapshot:
                if budget is not None:
                    budget.tick(len(snapshot), frontier=len(pair_states))
                for (p2, s2) in snapshot:
                    for label in alphabet:
                        targets = set()
                        for q1, q2, tgt in left_by_label.get(label, ()):
                            if q1 == p1 and q2 == p2:
                                targets |= tgt
                        if not targets:
                            continue
                        subset = right_step(label, s1, s2)
                        for target in targets:
                            pair = (target, subset)
                            if pair not in pair_states:
                                pair_states.add(pair)
                                if budget is not None:
                                    budget.charge_states(
                                        1, frontier=len(pair_states)
                                    )
                                changed = True
    for (q, subset) in pair_states:
        if q in left.finals and not (subset & right.finals):
            return False
    return True


def edtd_includes(sup: EDTD, sub: EDTD, *, budget=None) -> bool:
    """Exact decision of ``L(sub) subseteq L(sup)`` (EXPTIME in general)."""
    return bta_difference_empty(
        bta_from_edtd(sub), bta_from_edtd(sup), budget=budget
    )


def edtd_equivalent(left: EDTD, right: EDTD) -> bool:
    """Exact language equivalence of two EDTDs."""
    return edtd_includes(left, right) and edtd_includes(right, left)


def universal_edtd(alphabet: Iterable[Symbol]) -> EDTD:
    """The EDTD accepting every Sigma-tree (one type per symbol, content
    ``Sigma*``)."""
    from repro.strings.builders import sigma_star

    alphabet = frozenset(alphabet)
    types = {("all", a) for a in alphabet}
    star = sigma_star(types)
    rules = {("all", a): star for a in alphabet}
    return EDTD(
        alphabet=alphabet,
        types=types,
        rules=rules,
        starts=types,
        mu={("all", a): a for a in alphabet},
    )


def edtd_universal(edtd: EDTD, alphabet: Iterable[Symbol] | None = None) -> bool:
    """Exact universality test (Theorem 2.13's EXPTIME-complete problem)."""
    sigma = frozenset(alphabet) if alphabet is not None else edtd.alphabet
    return edtd_includes(edtd, universal_edtd(sigma))
