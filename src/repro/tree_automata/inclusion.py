"""Exact (EXPTIME) decision procedures on general EDTDs.

The paper recalls (Theorem 2.13) that universality/inclusion for EDTDs is
EXPTIME-complete.  This module implements the exact procedures anyway —
they are the ground truth against which the polynomial special cases
(Lemma 3.3) and all approximation constructions are verified:

1. translate each EDTD into a binary tree automaton over the binary
   encoding of :mod:`repro.trees.encoding` (:func:`bta_from_edtd`);
2. decide ``L(B1) - L(B2) = {}`` by a lazy product of ``B1`` with the
   determinization of ``B2`` (:func:`bta_difference_empty`), never
   materializing more subset states than reachable.

``edtd_includes``/``edtd_equivalent``/``edtd_universal`` are the public
entry points.

Since PR 7 the product worklist runs on the integer-coded kernel of
:mod:`repro.tree_automata.kernels` (per-``(label, q1)`` chunk tables over
the right subsets, numpy partner batches on ungoverned small-right runs),
``bta_from_edtd`` translations are interned by schema fingerprint, and
``edtd_includes`` memoizes verdicts with recorded-cost budget recharge.
The pre-kernel loops survive as ``bta_difference_empty_reference``.
"""

from __future__ import annotations

from typing import Any

from collections.abc import Hashable, Iterable

from repro import observability as _obs
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.schemas.edtd import EDTD
from repro.trees.encoding import MARKER
from repro.tree_automata.bta import BTA

Symbol = Hashable

_END = ("end",)


def bta_from_edtd(edtd: EDTD, marker: object = MARKER) -> BTA:
    """A BTA accepting exactly the binary encodings of ``L(edtd)``.

    States:

    * ``("type", tau)`` — the subtree encodes a tree derivable with root
      type ``tau``;
    * ``("seq", tau, q)`` — the subtree encodes a non-empty suffix of a
      child sequence driving ``d(tau)`` from state ``q`` to acceptance;
    * ``("end",)`` — the subtree is the end-marker leaf.
    """
    edtd = edtd.reduced()
    alphabet = edtd.alphabet | {marker}
    states: set[object] = {_END}
    leaf_rules: dict[object, set[object]] = {marker: {_END}}
    internal_rules: dict[tuple[object, object, object], set[object]] = {}

    def add_internal(key: tuple[object, object, object], target: object) -> None:
        internal_rules.setdefault(key, set()).add(target)

    for tau in edtd.types:
        label = edtd.mu[tau]
        dfa = edtd.rules[tau]
        type_state = ("type", tau)
        states.add(type_state)
        for q in dfa.states:
            states.add(("seq", tau, q))
        # Leaf: tau derives a childless node iff d(tau) accepts epsilon.
        if dfa.accepts_empty_word():
            leaf_rules.setdefault(label, set()).add(type_state)
        # Sigma-node with children: label( chain , # ).
        # Single child sigma: chain is ("type", sigma) directly.
        for (q, sigma), q_next in dfa.transitions.items():
            if q == dfa.initial and q_next in dfa.finals:
                add_internal((label, ("type", sigma), _END), type_state)
        # Longer chains: chain carries ("seq", tau, initial).
        add_internal((label, ("seq", tau, dfa.initial), _END), type_state)
        # Chain cons nodes: #( enc(t_i), rest ).
        for (q, sigma), q_next in dfa.transitions.items():
            # rest is itself a seq suffix from q_next ...
            add_internal(
                (marker, ("type", sigma), ("seq", tau, q_next)),
                ("seq", tau, q),
            )
            # ... or rest is the final element ("type", sigma2).
            for (q_mid, sigma2), q_last in dfa.transitions.items():
                if q_mid == q_next and q_last in dfa.finals:
                    add_internal(
                        (marker, ("type", sigma), ("type", sigma2)),
                        ("seq", tau, q),
                    )

    finals = {("type", tau) for tau in edtd.starts}
    return BTA(states, alphabet, leaf_rules, internal_rules, finals)


def bta_difference_empty(
    left: BTA,
    right: BTA,
    *,
    budget: Budget | None = None,
    trace: Any = None,
) -> bool:
    """Decide ``L(left) subseteq L(right)`` by emptiness of the lazy product
    of *left* with the (on-the-fly) determinization of *right*.

    The reachable ``(state, subset)`` pair space is the EXPTIME part of
    Theorem 2.13, so the saturation is governed: one state per pair
    discovered, one step per combination examined, and the search exits
    early on the first counterexample pair — a left-final state whose
    right subset misses every right final.

    Since PR 7 the worklist runs on the integer-coded kernel
    (:func:`repro.tree_automata.kernels.bta_difference_empty`): right
    subsets step through per-``(label, q1)`` 16-bit chunk tables, and
    ungoverned runs on right automata with <= 63 states batch partner
    joins with numpy.  The original round-based loop is kept as
    :func:`bta_difference_empty_reference` for differential testing.
    """
    from repro.tree_automata.kernels import bta_difference_empty as kernel

    return kernel(left, right, budget=budget, trace=trace)


def bta_difference_empty_reference(
    left: BTA, right: BTA, *, budget: Budget | None = None, trace: Any = None
) -> bool:
    """Round-based full-rescan saturation — the pre-kernel implementation,
    kept as the differential-testing oracle for
    :func:`bta_difference_empty` (same governed keyword surface).
    """
    budget = resolve_budget(budget)
    alphabet = left.alphabet | right.alphabet
    # Reachable pairs (q, S): q a left state, S the subset of right states.
    pair_states: set[tuple[object, frozenset[object]]] = set()
    for label in alphabet:
        left_leaf = left.leaf_rules.get(label, frozenset())
        right_leaf = frozenset(right.leaf_rules.get(label, frozenset()))
        for q in left_leaf:
            pair_states.add((q, right_leaf))

    _Rules = list[tuple[object, object, frozenset[object]]]
    right_by_label: dict[Symbol, _Rules] = {}
    for (label, q1, q2), targets in right.internal_rules.items():
        right_by_label.setdefault(label, []).append((q1, q2, frozenset(targets)))
    left_by_label: dict[Symbol, _Rules] = {}
    for (label, q1, q2), targets in left.internal_rules.items():
        left_by_label.setdefault(label, []).append((q1, q2, frozenset(targets)))

    def right_step(
        label: Symbol, s1: frozenset[object], s2: frozenset[object]
    ) -> frozenset[object]:
        combined: set[object] = set()
        for q1, q2, targets in right_by_label.get(label, ()):
            if q1 in s1 and q2 in s2:
                combined |= targets
        return frozenset(combined)

    changed = True
    with _obs.construction_span(
        "bta-inclusion", trace=trace, budget=budget
    ), budget_phase(budget, "bta-inclusion"):
        while changed:
            changed = False
            snapshot = list(pair_states)
            for (p1, s1) in snapshot:
                if budget is not None:
                    budget.tick(len(snapshot), frontier=len(pair_states))
                for (p2, s2) in snapshot:
                    for label in alphabet:
                        targets: set[object] = set()
                        for q1, q2, tgt in left_by_label.get(label, ()):
                            if q1 == p1 and q2 == p2:
                                targets |= tgt
                        if not targets:
                            continue
                        subset = right_step(label, s1, s2)
                        for target in targets:
                            pair = (target, subset)
                            if pair not in pair_states:
                                pair_states.add(pair)
                                if budget is not None:
                                    budget.charge_states(
                                        1, frontier=len(pair_states)
                                    )
                                changed = True
    for (q, subset) in pair_states:
        if q in left.finals and not (subset & right.finals):
            return False
    return True


def edtd_includes(
    sup: EDTD, sub: EDTD, *, budget: Budget | None = None, trace: Any = None
) -> bool:
    """Exact decision of ``L(sub) subseteq L(sup)`` (EXPTIME in general).

    Both EDTD -> BTA translations are interned by schema fingerprint
    (:func:`repro.tree_automata.kernels.cached_bta_from_edtd`), and the
    verdict itself is memoized with recorded-cost budget recharge: a
    governed repeat of the same query trips at the same counters whether
    the verdict cache is warm or cold.
    """
    from repro.cache.keys import schema_structural_key
    from repro.tree_automata.kernels import (
        _INCL_CACHE,
        _memoized,
        cached_bta_from_edtd,
    )

    budget = resolve_budget(budget)
    sup_key = schema_structural_key(sup)
    sub_key = schema_structural_key(sub)
    key = (
        None
        if sup_key is None or sub_key is None
        else ("edtd_includes", sub_key, sup_key)
    )

    def build(inner_budget: Budget | None) -> bool:
        return bta_difference_empty(
            cached_bta_from_edtd(sub, budget=inner_budget),
            cached_bta_from_edtd(sup, budget=inner_budget),
            budget=inner_budget,
            trace=trace,
        )

    return bool(_memoized(_INCL_CACHE, key, build, budget))


def edtd_equivalent(
    left: EDTD, right: EDTD, *, budget: Budget | None = None
) -> bool:
    """Exact language equivalence of two EDTDs."""
    return edtd_includes(left, right, budget=budget) and edtd_includes(
        right, left, budget=budget
    )


def universal_edtd(alphabet: Iterable[Symbol]) -> EDTD:
    """The EDTD accepting every Sigma-tree (one type per symbol, content
    ``Sigma*``)."""
    from repro.strings.builders import sigma_star

    alphabet = frozenset(alphabet)
    types = {("all", a) for a in alphabet}
    star = sigma_star(types)
    rules = {("all", a): star for a in alphabet}
    return EDTD(
        alphabet=alphabet,
        types=types,
        rules=rules,
        starts=types,
        mu={("all", a): a for a in alphabet},
    )


def edtd_universal(edtd: EDTD, alphabet: Iterable[Symbol] | None = None) -> bool:
    """Exact universality test (Theorem 2.13's EXPTIME-complete problem)."""
    sigma = frozenset(alphabet) if alphabet is not None else edtd.alphabet
    return edtd_includes(edtd, universal_edtd(sigma))
