"""Non-deterministic unranked tree automata (Section 4.4.2).

An NTA is ``(Q, Sigma, delta, F)`` where ``delta(q, a)`` is a regular string
language over ``Q``: a run labels every node with a state such that the
children's state word lies in ``delta(state, label)``.  NTAs are
expressively equivalent to EDTDs with quadratic-time translations
(Thatcher); :func:`nta_from_edtd` and :func:`edtd_from_nta` implement both
directions.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import AutomatonError
from repro.schemas.edtd import EDTD
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.ops import as_min_dfa
from repro.strings.regex import Regex
from repro.trees.tree import Tree

Symbol = Hashable
State = Hashable


class NTA:
    """A non-deterministic unranked tree automaton.

    Parameters
    ----------
    states / alphabet / finals:
        As usual.
    rules:
        Mapping ``(state, label) -> content language over states``; missing
        pairs denote the empty language (the state cannot be assigned to a
        node with that label).
    """

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        rules: Mapping[tuple[State, Symbol], DFA | NFA | Regex | str],
        finals: Iterable[State],
    ) -> None:
        self.states: frozenset[State] = frozenset(states)
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.finals: frozenset[State] = frozenset(finals)
        if not self.finals <= self.states:
            raise AutomatonError("final states must be states")
        self.rules: dict[tuple[State, Symbol], DFA] = {}
        for (state, label), content in rules.items():
            if state not in self.states:
                raise AutomatonError(f"rule for unknown state {state!r}")
            if label not in self.alphabet:
                raise AutomatonError(f"rule for unknown label {label!r}")
            dfa = as_min_dfa(content)
            if not dfa.alphabet <= self.states:
                raise AutomatonError("content language over unknown states")
            self.rules[(state, label)] = dfa.completed(self.states).trim()

    # ------------------------------------------------------------------

    def possible_states(self, tree: Tree) -> frozenset[State]:
        """Bottom-up state inference (the set of states of some run root)."""
        child_sets = [self.possible_states(child) for child in tree.children]
        result: set[State] = set()
        for state in self.states:
            dfa = self.rules.get((state, tree.label))
            if dfa is None:
                continue
            if _subset_run(dfa, child_sets):
                result.add(state)
        return frozenset(result)

    def accepts(self, tree: Tree) -> bool:
        """True iff some run labels the root with a final state."""
        return bool(self.possible_states(tree) & self.finals)

    def size(self) -> int:
        return (
            len(self.states)
            + len(self.alphabet)
            + sum(dfa.size() for dfa in self.rules.values())
        )

    def __repr__(self) -> str:
        return (
            f"NTA(states={len(self.states)}, alphabet={sorted(map(str, self.alphabet))}, "
            f"rules={len(self.rules)}, finals={len(self.finals)})"
        )


def _subset_run(dfa: DFA, child_sets: list[frozenset[State]]) -> bool:
    current: set[State] = {dfa.initial}
    for options in child_sets:
        nxt: set[State] = set()
        for state in current:
            for option in options:
                dst = dfa.successor(state, option)
                if dst is not None:
                    nxt.add(dst)
        if not nxt:
            return False
        current = nxt
    return bool(current & dfa.finals)


def nta_from_edtd(edtd: EDTD) -> NTA:
    """Translate an EDTD into an equivalent NTA (states = types)."""
    rules = {
        (type_, edtd.mu[type_]): edtd.rules[type_]
        for type_ in edtd.types
    }
    return NTA(edtd.types, edtd.alphabet, rules, edtd.starts)


def edtd_from_nta(nta: NTA) -> EDTD:
    """Translate an NTA into an equivalent EDTD.

    Types are the pairs ``(state, label)`` with a rule; the content model of
    ``(q, a)`` is ``delta(q, a)`` with each state ``p`` expanded to the
    types ``(p, b)`` over all labels ``b``.
    """
    types = set(nta.rules)
    mu = {pair: pair[1] for pair in types}
    expanded_rules: dict[tuple[State, Symbol], object] = {}
    for (state, label), dfa in nta.rules.items():
        transitions: dict[tuple[State, Symbol], State] = {}
        for (src, p), dst in dfa.transitions.items():
            for b in nta.alphabet:
                if (p, b) in types:
                    transitions[(src, (p, b))] = dst
        expanded_rules[(state, label)] = DFA(
            dfa.states, types, transitions, dfa.initial, dfa.finals
        )
    starts = {pair for pair in types if pair[0] in nta.finals}
    return EDTD(
        alphabet=nta.alphabet,
        types=types,
        rules=expanded_rules,
        starts=starts,
        mu=mu,
    )
