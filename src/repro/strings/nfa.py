"""Non-deterministic finite automata over arbitrary hashable symbols.

This module implements the NFA model of the paper (Section 2.1):

    N = (Q, Sigma, delta, I, F)

with ``delta : Q x Sigma -> 2^Q``, a set ``I`` of initial states and a set
``F`` of final states.  Epsilon transitions are *not* part of the model (the
paper never uses them; the Thompson construction in :mod:`repro.strings.regex`
eliminates them on the fly).

A central notion for the paper is the *state-labeled* NFA: an NFA in which,
for every state ``q``, all transitions entering ``q`` carry the same symbol
(Section 2.1).  Type automata of EDTDs are state-labeled by construction, and
:func:`NFA.is_state_labeled` / :func:`NFA.state_labeled` make the property
checkable and enforceable for arbitrary NFAs.

States and symbols may be any hashable objects; :meth:`NFA.relabel` maps
states onto ``0..n-1`` for canonical presentation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping
from typing import Callable

from repro.errors import AutomatonError

State = Hashable
Symbol = Hashable


class NFA:
    """A non-deterministic finite automaton without epsilon transitions.

    Parameters
    ----------
    states:
        Iterable of states (any hashable values).
    alphabet:
        Iterable of symbols.
    transitions:
        Mapping from ``(state, symbol)`` pairs to iterables of successor
        states.  Missing pairs denote the empty successor set.
    initials:
        Iterable of initial states.
    finals:
        Iterable of final (accepting) states.
    """

    __slots__ = ("states", "alphabet", "transitions", "initials", "finals")

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple[State, Symbol], Iterable[State]],
        initials: Iterable[State],
        finals: Iterable[State],
    ) -> None:
        self.states: frozenset[State] = frozenset(states)
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        trans: dict[tuple[State, Symbol], frozenset[State]] = {}
        for (src, sym), dsts in transitions.items():
            dst_set = frozenset(dsts)
            if not dst_set:
                continue
            trans[(src, sym)] = dst_set
        self.transitions: dict[tuple[State, Symbol], frozenset[State]] = trans
        self.initials: frozenset[State] = frozenset(initials)
        self.finals: frozenset[State] = frozenset(finals)
        self._validate()

    def _validate(self) -> None:
        if not self.initials <= self.states:
            raise AutomatonError("initial states must be a subset of states")
        if not self.finals <= self.states:
            raise AutomatonError("final states must be a subset of states")
        for (src, sym), dsts in self.transitions.items():
            if src not in self.states:
                raise AutomatonError(f"transition source {src!r} is not a state")
            if sym not in self.alphabet:
                raise AutomatonError(f"transition symbol {sym!r} is not in the alphabet")
            if not dsts <= self.states:
                raise AutomatonError(f"transition targets {dsts!r} are not all states")

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    def successors(self, state: State, symbol: Symbol) -> frozenset[State]:
        """Return ``delta(state, symbol)`` (empty set if undefined)."""
        return self.transitions.get((state, symbol), frozenset())

    def step(self, states: frozenset[State], symbol: Symbol) -> frozenset[State]:
        """Return the union of ``delta(q, symbol)`` over ``q`` in *states*."""
        result: set[State] = set()
        for state in states:
            result |= self.successors(state, symbol)
        return frozenset(result)

    def read(self, word: Iterable[Symbol]) -> frozenset[State]:
        """Return ``N(w)``: the set of states reachable from ``I`` on *word*."""
        current = self.initials
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return frozenset()
        return current

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Return True iff *word* is in ``L(N)``."""
        return bool(self.read(word) & self.finals)

    def size(self) -> int:
        """Paper's size measure: number of states plus sizes of transitions."""
        return len(self.states) + sum(len(dsts) for dsts in self.transitions.values())

    def num_transitions(self) -> int:
        """Total number of individual transition edges."""
        return sum(len(dsts) for dsts in self.transitions.values())

    # ------------------------------------------------------------------
    # State-labeled NFAs (Section 2.1)
    # ------------------------------------------------------------------

    def incoming_labels(self, state: State) -> frozenset[Symbol]:
        """Return the set of symbols labeling transitions into *state*."""
        labels = {
            sym
            for (_, sym), dsts in self.transitions.items()
            if state in dsts
        }
        return frozenset(labels)

    def is_state_labeled(self) -> bool:
        """True iff each state has at most one distinct incoming label."""
        return all(len(self.incoming_labels(q)) <= 1 for q in self.states)

    def label_of(self, state: State) -> Symbol:
        """Return the unique incoming label of *state* in a state-labeled NFA.

        Raises :class:`AutomatonError` if the state has no incoming
        transitions or more than one incoming label.
        """
        labels = self.incoming_labels(state)
        if len(labels) != 1:
            raise AutomatonError(
                f"state {state!r} has {len(labels)} incoming labels; expected exactly 1"
            )
        (label,) = labels
        return label

    def state_labeled(self) -> "NFA":
        """Return an equivalent state-labeled NFA.

        Every regular language is definable by a state-labeled NFA (Section
        2.1): split each state into one copy per distinct incoming label.
        States of the result are pairs ``(state, label)`` where ``label`` is
        the incoming symbol, or ``(state, None)`` for initial copies.
        """
        new_states: set[tuple[State, Symbol | None]] = set()
        for q in self.initials:
            new_states.add((q, None))
        for (_, sym), dsts in self.transitions.items():
            for dst in dsts:
                new_states.add((dst, sym))

        transitions: dict[tuple[State, Symbol], set[State]] = {}
        for (src, sym), dsts in self.transitions.items():
            targets = {(dst, sym) for dst in dsts}
            for copy in new_states:
                if copy[0] == src:
                    transitions.setdefault((copy, sym), set()).update(targets)

        finals = {copy for copy in new_states if copy[0] in self.finals}
        initials = {(q, None) for q in self.initials}
        return NFA(new_states, self.alphabet, transitions, initials, finals)

    # ------------------------------------------------------------------
    # Reachability and trimming
    # ------------------------------------------------------------------

    def reachable_states(self) -> frozenset[State]:
        """Return all states reachable from the initial states."""
        seen: set[State] = set(self.initials)
        queue: deque[State] = deque(self.initials)
        while queue:  # ungoverned: linear BFS over a materialized automaton
            state = queue.popleft()
            for (src, _), dsts in self.transitions.items():
                if src != state:
                    continue
                for dst in dsts:
                    if dst not in seen:
                        seen.add(dst)
                        queue.append(dst)
        return frozenset(seen)

    def coreachable_states(self) -> frozenset[State]:
        """Return all states from which a final state is reachable."""
        inverse: dict[State, set[State]] = {}
        for (src, _), dsts in self.transitions.items():
            for dst in dsts:
                inverse.setdefault(dst, set()).add(src)
        seen: set[State] = set(self.finals)
        queue: deque[State] = deque(self.finals)
        while queue:  # ungoverned: linear BFS over a materialized automaton
            state = queue.popleft()
            for pred in inverse.get(state, ()):
                if pred not in seen:
                    seen.add(pred)
                    queue.append(pred)
        return frozenset(seen)

    def trim(self) -> "NFA":
        """Return the automaton restricted to useful (reachable and
        co-reachable) states.  The result accepts the same language."""
        useful = self.reachable_states() & self.coreachable_states()
        transitions = {
            (src, sym): dsts & useful
            for (src, sym), dsts in self.transitions.items()
            if src in useful
        }
        return NFA(
            useful,
            self.alphabet,
            transitions,
            self.initials & useful,
            self.finals & useful,
        )

    def is_empty_language(self) -> bool:
        """True iff ``L(N)`` is empty."""
        return not (self.reachable_states() & self.finals)

    # ------------------------------------------------------------------
    # Constructions
    # ------------------------------------------------------------------

    def relabel(self, prefix: str = "q") -> "NFA":
        """Return an isomorphic NFA with states renamed ``prefix0..prefixN``.

        Renaming is deterministic: states are sorted by their repr.
        """
        ordered = sorted(self.states, key=repr)
        mapping = {state: f"{prefix}{i}" for i, state in enumerate(ordered)}
        transitions = {
            (mapping[src], sym): {mapping[dst] for dst in dsts}
            for (src, sym), dsts in self.transitions.items()
        }
        return NFA(
            mapping.values(),
            self.alphabet,
            transitions,
            {mapping[q] for q in self.initials},
            {mapping[q] for q in self.finals},
        )

    def map_symbols(self, func: Callable[[Symbol], Symbol]) -> "NFA":
        """Return the homomorphic image of the automaton under *func*.

        Each transition label ``a`` is replaced by ``func(a)``.  This is the
        automaton analogue of applying the typing homomorphism ``mu`` of an
        EDTD to a content model; the result may be non-deterministic even if
        the input was deterministic.
        """
        transitions: dict[tuple[State, Symbol], set[State]] = {}
        for (src, sym), dsts in self.transitions.items():
            transitions.setdefault((src, func(sym)), set()).update(dsts)
        alphabet = {func(sym) for sym in self.alphabet}
        return NFA(self.states, alphabet, transitions, self.initials, self.finals)

    def with_alphabet(self, alphabet: Iterable[Symbol]) -> "NFA":
        """Return the same automaton with the alphabet extended to include
        *alphabet* (language unchanged: new symbols have no transitions)."""
        return NFA(
            self.states,
            self.alphabet | frozenset(alphabet),
            self.transitions,
            self.initials,
            self.finals,
        )

    def reverse(self) -> "NFA":
        """Return an NFA for the reversal of ``L(N)``."""
        transitions: dict[tuple[State, Symbol], set[State]] = {}
        for (src, sym), dsts in self.transitions.items():
            for dst in dsts:
                transitions.setdefault((dst, sym), set()).add(src)
        return NFA(self.states, self.alphabet, transitions, self.finals, self.initials)

    def union(self, other: "NFA") -> "NFA":
        """Return an NFA for ``L(self) | L(other)`` (disjoint-union build)."""
        left = self._tagged(0)
        right = other._tagged(1)
        transitions = dict(left.transitions)
        transitions.update(right.transitions)
        return NFA(
            left.states | right.states,
            self.alphabet | other.alphabet,
            transitions,
            left.initials | right.initials,
            left.finals | right.finals,
        )

    def _tagged(self, tag: int) -> "NFA":
        """Return an isomorphic copy whose states are tagged with *tag*."""
        transitions = {
            ((tag, src), sym): {(tag, dst) for dst in dsts}
            for (src, sym), dsts in self.transitions.items()
        }
        return NFA(
            {(tag, q) for q in self.states},
            self.alphabet,
            transitions,
            {(tag, q) for q in self.initials},
            {(tag, q) for q in self.finals},
        )

    def concat(self, other: "NFA") -> "NFA":
        """Return an NFA for the concatenation ``L(self) . L(other)``."""
        left = self._tagged(0)
        right = other._tagged(1)
        transitions: dict[tuple[State, Symbol], set[State]] = {
            key: set(dsts) for key, dsts in left.transitions.items()
        }
        for key, dsts in right.transitions.items():
            transitions.setdefault(key, set()).update(dsts)
        # Whenever the left part may accept, a transition into a right-initial
        # successor may start: add edges from left-final predecessors.
        for (src, sym), dsts in right.transitions.items():
            if src in right.initials:
                for lf in left.finals:
                    transitions.setdefault((lf, sym), set()).update(dsts)
        finals = set(right.finals)
        if right.initials & right.finals:
            finals |= left.finals
        initials = set(left.initials)
        return NFA(
            left.states | right.states,
            self.alphabet | other.alphabet,
            transitions,
            initials,
            finals,
        )

    def star(self) -> "NFA":
        """Return an NFA for ``L(self)*`` (Kleene star)."""
        plus = self.plus()
        # Add a fresh initial+final state to accept the empty word.
        fresh = ("star-init", id(self))
        transitions: dict[tuple[State, Symbol], set[State]] = {
            key: set(dsts) for key, dsts in plus.transitions.items()
        }
        for (src, sym), dsts in plus.transitions.items():
            if src in plus.initials:
                transitions.setdefault((fresh, sym), set()).update(dsts)
        return NFA(
            plus.states | {fresh},
            self.alphabet,
            transitions,
            plus.initials | {fresh},
            plus.finals | {fresh},
        )

    def plus(self) -> "NFA":
        """Return an NFA for ``L(self)+`` (one or more repetitions)."""
        transitions: dict[tuple[State, Symbol], set[State]] = {
            key: set(dsts) for key, dsts in self.transitions.items()
        }
        for (src, sym), dsts in self.transitions.items():
            if src in self.initials:
                for final in self.finals:
                    transitions.setdefault((final, sym), set()).update(dsts)
        return NFA(self.states, self.alphabet, transitions, self.initials, self.finals)

    def optional(self) -> "NFA":
        """Return an NFA for ``L(self)?`` (self or the empty word)."""
        fresh = ("opt-init", id(self))
        transitions: dict[tuple[State, Symbol], set[State]] = {
            key: set(dsts) for key, dsts in self.transitions.items()
        }
        for (src, sym), dsts in self.transitions.items():
            if src in self.initials:
                transitions.setdefault((fresh, sym), set()).update(dsts)
        return NFA(
            self.states | {fresh},
            self.alphabet,
            transitions,
            self.initials | {fresh},
            self.finals | {fresh},
        )

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"NFA(states={len(self.states)}, alphabet={sorted(map(repr, self.alphabet))}, "
            f"transitions={self.num_transitions()}, "
            f"initials={len(self.initials)}, finals={len(self.finals)})"
        )
