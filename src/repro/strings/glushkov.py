"""Glushkov (position) automata.

The Glushkov automaton of a regular expression is the paper's canonical
example of a *state-labeled* NFA (Section 2.1): each state is a position of
the expression — an occurrence of an alphabet symbol — and every transition
into a position carries that position's symbol.

The construction also yields the standard *determinism* test for regular
expressions: an expression is deterministic (one-unambiguous, as required for
XML Schema content models by the UPA constraint) iff its Glushkov automaton
is deterministic.  Section 5 of the paper discusses how results change for
deterministic expressions; :func:`is_deterministic_expression` is the
executable version of that notion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.strings.nfa import NFA
from repro.strings.regex import (
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
)


@dataclass(frozen=True)
class _Linearized:
    """first/last/follow data of a (sub)expression over positions.

    Positions are integers; ``symbol_at`` maps each position to its symbol.
    """

    nullable: bool
    first: frozenset[int]
    last: frozenset[int]
    follow: frozenset[tuple[int, int]]
    empty: bool  # denotes the empty language


def _analyze(expr: Regex, counter: list[int], symbol_at: dict[int, object]) -> _Linearized:
    if isinstance(expr, Empty):
        return _Linearized(False, frozenset(), frozenset(), frozenset(), True)
    if isinstance(expr, Epsilon):
        return _Linearized(True, frozenset(), frozenset(), frozenset(), False)
    if isinstance(expr, Sym):
        position = counter[0]
        counter[0] += 1
        symbol_at[position] = expr.symbol
        singleton = frozenset([position])
        return _Linearized(False, singleton, singleton, frozenset(), False)
    if isinstance(expr, Union):
        left = _analyze(expr.left, counter, symbol_at)
        right = _analyze(expr.right, counter, symbol_at)
        if left.empty:
            return right
        if right.empty:
            return left
        return _Linearized(
            left.nullable or right.nullable,
            left.first | right.first,
            left.last | right.last,
            left.follow | right.follow,
            False,
        )
    if isinstance(expr, Concat):
        left = _analyze(expr.left, counter, symbol_at)
        right = _analyze(expr.right, counter, symbol_at)
        if left.empty or right.empty:
            return _Linearized(False, frozenset(), frozenset(), frozenset(), True)
        bridge = frozenset(
            (p, q) for p in left.last for q in right.first
        )
        return _Linearized(
            left.nullable and right.nullable,
            left.first | (right.first if left.nullable else frozenset()),
            right.last | (left.last if right.nullable else frozenset()),
            left.follow | right.follow | bridge,
            False,
        )
    if isinstance(expr, (Star, Plus)):
        inner = _analyze(expr.child, counter, symbol_at)
        if inner.empty:
            if isinstance(expr, Star):
                return _Linearized(True, frozenset(), frozenset(), frozenset(), False)
            return _Linearized(False, frozenset(), frozenset(), frozenset(), True)
        loop = frozenset((p, q) for p in inner.last for q in inner.first)
        return _Linearized(
            True if isinstance(expr, Star) else inner.nullable,
            inner.first,
            inner.last,
            inner.follow | loop,
            False,
        )
    if isinstance(expr, Opt):
        inner = _analyze(expr.child, counter, symbol_at)
        if inner.empty:
            return _Linearized(True, frozenset(), frozenset(), frozenset(), False)
        return _Linearized(True, inner.first, inner.last, inner.follow, False)
    raise TypeError(f"unknown Regex node: {expr!r}")


_INITIAL = "glushkov-init"


def glushkov_nfa(expr: Regex) -> NFA:
    """Return the Glushkov automaton of *expr* (a state-labeled NFA).

    States are the positions of the expression plus a fresh initial state
    ``"glushkov-init"``.  The result accepts exactly ``L(expr)``.
    """
    counter = [0]
    symbol_at: dict[int, object] = {}
    data = _analyze(expr, counter, symbol_at)
    states: set[object] = {_INITIAL} | set(symbol_at)
    alphabet = expr.symbols()
    transitions: dict[tuple[object, object], set[object]] = {}
    if not data.empty:
        for position in data.first:
            transitions.setdefault((_INITIAL, symbol_at[position]), set()).add(position)
        for src, dst in data.follow:
            transitions.setdefault((src, symbol_at[dst]), set()).add(dst)
    finals: set[object] = set(data.last) if not data.empty else set()
    if data.nullable and not data.empty:
        finals.add(_INITIAL)
    return NFA(states, alphabet, transitions, {_INITIAL}, finals)


def is_deterministic_expression(expr: Regex) -> bool:
    """True iff *expr* is a deterministic (one-unambiguous) expression.

    An expression is deterministic iff its Glushkov automaton is a DFA,
    i.e. no state has two outgoing transitions on the same symbol to
    different positions.
    """
    automaton = glushkov_nfa(expr)
    return all(len(dsts) <= 1 for dsts in automaton.transitions.values())
