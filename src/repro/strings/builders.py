"""Convenience constructors for the regular languages the paper uses.

These cover the concrete languages appearing in the paper's constructions
and lower-bound families:

* finite languages, ``Sigma*``, single words;
* ``(a+b)* a (a+b)^n`` — the NFA->DFA blow-up family behind Theorem 3.2;
* "at most k occurrences of a" — the building block of Theorems 3.6/4.3;
* unary counters ``a^p`` — the intersection family of Theorem 3.8;
* ``Sigma* . S . Sigma*`` ("some symbol of S occurs") — used in the
  complement construction of Theorem 3.9 and the lower construction of
  Section 4.2.2.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

from repro.strings.dfa import DFA
from repro.strings.nfa import NFA

Symbol = Hashable


def empty_language(alphabet: Iterable[Symbol] = ()) -> DFA:
    """DFA for the empty language."""
    return DFA({"e0"}, alphabet, {}, "e0", set())


def epsilon_language(alphabet: Iterable[Symbol] = ()) -> DFA:
    """DFA accepting only the empty word."""
    return DFA({"e0"}, alphabet, {}, "e0", {"e0"})


def word_language(word: Sequence[Symbol], alphabet: Iterable[Symbol] = ()) -> DFA:
    """DFA accepting exactly the single word *word*."""
    states = list(range(len(word) + 1))
    transitions = {(i, sym): i + 1 for i, sym in enumerate(word)}
    return DFA(states, set(word) | set(alphabet), transitions, 0, {len(word)})


def finite_language(words: Iterable[Sequence[Symbol]], alphabet: Iterable[Symbol] = ()) -> DFA:
    """DFA (trie-shaped) accepting exactly the given finite set of words."""
    words = [tuple(word) for word in words]
    alphabet = set(alphabet)
    for word in words:
        alphabet.update(word)
    root: tuple[str, ...] = ()
    states: set[tuple] = {root}
    transitions: dict[tuple[tuple, Symbol], tuple] = {}
    finals: set[tuple] = set()
    for word in words:
        node = root
        for symbol in word:
            nxt = node + (symbol,)
            transitions[(node, symbol)] = nxt
            states.add(nxt)
            node = nxt
        finals.add(node)
    return DFA(states, alphabet, transitions, root, finals)


def sigma_star(alphabet: Iterable[Symbol]) -> DFA:
    """DFA for ``Sigma*`` over *alphabet*."""
    alphabet = frozenset(alphabet)
    transitions = {("u", sym): "u" for sym in alphabet}
    return DFA({"u"}, alphabet, transitions, "u", {"u"})


def sigma_plus(alphabet: Iterable[Symbol]) -> DFA:
    """DFA for ``Sigma+`` (all non-empty words)."""
    alphabet = frozenset(alphabet)
    transitions = {("i", sym): "u" for sym in alphabet}
    transitions.update({("u", sym): "u" for sym in alphabet})
    return DFA({"i", "u"}, alphabet, transitions, "i", {"u"})


def contains_symbol_from(
    alphabet: Iterable[Symbol],
    witnesses: Iterable[Symbol],
) -> DFA:
    """DFA for ``Sigma* . W . Sigma*``: words containing some symbol of W.

    This is the language ``Sigma* . (union of W) . Sigma*`` from the
    complement construction in Theorem 3.9.
    """
    alphabet = frozenset(alphabet)
    witnesses = frozenset(witnesses)
    transitions: dict[tuple[str, Symbol], str] = {}
    for symbol in alphabet:
        transitions[("search", symbol)] = "found" if symbol in witnesses else "search"
        transitions[("found", symbol)] = "found"
    return DFA({"search", "found"}, alphabet, transitions, "search", {"found"})


def at_most_k_occurrences(
    alphabet: Iterable[Symbol],
    symbol: Symbol,
    k: int,
) -> DFA:
    """DFA for words over *alphabet* with at most *k* occurrences of *symbol*.

    Theorem 3.6's quadratic family and Theorem 4.3's `X_n` schemas are built
    from tree-shaped versions of exactly this counting language.
    """
    alphabet = frozenset(alphabet) | {symbol}
    states = list(range(k + 1))
    transitions: dict[tuple[int, Symbol], int] = {}
    for count in states:
        for letter in alphabet:
            if letter == symbol:
                if count < k:
                    transitions[(count, letter)] = count + 1
            else:
                transitions[(count, letter)] = count
    return DFA(states, alphabet, transitions, 0, set(states))


def exactly_length(alphabet: Iterable[Symbol], length: int) -> DFA:
    """DFA for all words over *alphabet* of length exactly *length*."""
    alphabet = frozenset(alphabet)
    states = list(range(length + 1))
    transitions = {
        (i, sym): i + 1 for i in range(length) for sym in alphabet
    }
    return DFA(states, alphabet, transitions, 0, {length})


def unary_exactly(symbol: Symbol, count: int) -> DFA:
    """DFA for the single unary word ``symbol^count`` (Theorem 3.8 family)."""
    return word_language((symbol,) * count)


def nth_from_end_is(
    marked: Symbol,
    other: Symbol,
    n: int,
) -> NFA:
    """NFA for ``(marked+other)* marked (marked+other)^n``.

    This is the classical language whose minimal DFA needs 2^(n+1) states;
    Theorem 3.2 lifts it to unary trees to prove the exponential blow-up of
    minimal upper XSD-approximations.  The returned NFA has ``n + 2`` states.
    """
    alphabet = {marked, other}
    states = list(range(n + 2))
    transitions: dict[tuple[int, Symbol], set[int]] = {
        (0, marked): {0, 1},
        (0, other): {0},
    }
    for i in range(1, n + 1):
        transitions[(i, marked)] = {i + 1}
        transitions[(i, other)] = {i + 1}
    return NFA(states, alphabet, transitions, {0}, {n + 1})
