"""Brzozowski derivatives: a second, independent regex-to-DFA pipeline.

The library's primary pipeline is Glushkov -> subset construction ->
minimization.  Derivatives provide an algebraically independent route:

* :func:`derivative` — the Brzozowski derivative ``d_a(r)`` with
  simplification to similarity normal form (associativity, commutativity
  and idempotence of union), which guarantees finitely many derivatives;
* :func:`dfa_from_regex` — the derivative automaton, whose states are the
  normal forms themselves;
* :func:`word_derivative` / :func:`matches` — direct membership testing.

The test suite runs both pipelines against each other on random
expressions (differential testing), which is how reproductions keep their
foundational layers honest.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable
from functools import lru_cache

from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.strings.dfa import DFA
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
)


# ----------------------------------------------------------------------
# Similarity normal form
# ----------------------------------------------------------------------

def _union_parts(expr: Regex) -> list[Regex]:
    if isinstance(expr, Union):
        return _union_parts(expr.left) + _union_parts(expr.right)
    return [expr]


def _normalize_union(parts: list[Regex]) -> Regex:
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for part in parts:
        for atom in _union_parts(part):
            if isinstance(atom, Empty) or atom in seen:
                continue
            seen.add(atom)
            flat.append(atom)
    if not flat:
        return EMPTY
    flat.sort(key=_sort_key)
    result = flat[0]
    for atom in flat[1:]:
        result = Union(result, atom)
    return result


def _sort_key(expr: Regex) -> str:
    return repr(expr)


def normalize(expr: Regex) -> Regex:
    """Similarity normal form: unions are flattened, deduplicated and
    sorted; trivial identities around the empty language / empty word are
    applied.  Similar expressions get equal normal forms, bounding the set
    of derivatives (Brzozowski's theorem)."""
    if isinstance(expr, (Empty, Epsilon, Sym)):
        return expr
    if isinstance(expr, Union):
        return _normalize_union([normalize(expr.left), normalize(expr.right)])
    if isinstance(expr, Concat):
        left = normalize(expr.left)
        right = normalize(expr.right)
        if isinstance(left, Empty) or isinstance(right, Empty):
            return EMPTY
        if isinstance(left, Epsilon):
            return right
        if isinstance(right, Epsilon):
            return left
        # Re-associate to the right for canonical shapes.
        if isinstance(left, Concat):
            return normalize(Concat(left.left, Concat(left.right, right)))
        return Concat(left, right)
    if isinstance(expr, Star):
        inner = normalize(expr.child)
        if isinstance(inner, (Empty, Epsilon)):
            return EPSILON
        if isinstance(inner, Star):
            return inner
        if isinstance(inner, Opt):
            return Star(normalize(inner.child))
        if isinstance(inner, Union):
            # Star absorbs an epsilon branch: (~ | x)* == x*.
            parts = [p for p in _union_parts(inner) if not isinstance(p, Epsilon)]
            if len(parts) < len(_union_parts(inner)):
                return normalize(Star(_normalize_union(parts)))
        return Star(inner)
    if isinstance(expr, Plus):
        inner = normalize(expr.child)
        if isinstance(inner, Empty):
            return EMPTY
        if isinstance(inner, Epsilon):
            return EPSILON
        return normalize(Concat(inner, Star(inner)))
    if isinstance(expr, Opt):
        inner = normalize(expr.child)
        if inner.nullable():
            return inner
        if isinstance(inner, Empty):
            return EPSILON
        return _normalize_union([EPSILON, inner])
    raise TypeError(f"unknown Regex node {expr!r}")


# ----------------------------------------------------------------------
# Derivatives
# ----------------------------------------------------------------------

def derivative(expr: Regex, symbol: object) -> Regex:
    """The Brzozowski derivative ``d_symbol(expr)``, normalized."""
    return normalize(_derive(normalize(expr), symbol))


def _derive(expr: Regex, symbol: object) -> Regex:
    if isinstance(expr, (Empty, Epsilon)):
        return EMPTY
    if isinstance(expr, Sym):
        return EPSILON if expr.symbol == symbol else EMPTY
    if isinstance(expr, Union):
        return Union(_derive(expr.left, symbol), _derive(expr.right, symbol))
    if isinstance(expr, Concat):
        first = Concat(_derive(expr.left, symbol), expr.right)
        if expr.left.nullable():
            return Union(first, _derive(expr.right, symbol))
        return first
    if isinstance(expr, Star):
        return Concat(_derive(expr.child, symbol), expr)
    if isinstance(expr, Plus):
        return _derive(Concat(expr.child, Star(expr.child)), symbol)
    if isinstance(expr, Opt):
        return _derive(expr.child, symbol)
    raise TypeError(f"unknown Regex node {expr!r}")


def word_derivative(expr: Regex, word: Iterable[Hashable]) -> Regex:
    """``d_w(expr)``: the derivative by a whole word."""
    current = normalize(expr)
    for symbol in word:
        current = derivative(current, symbol)
    return current


def matches(expr: Regex, word: Iterable[Hashable]) -> bool:
    """Membership by derivatives: ``w in L(r)`` iff ``d_w(r)`` is nullable."""
    return word_derivative(expr, word).nullable()


def dfa_from_regex(
    expr: Regex,
    alphabet: Iterable[Hashable] | None = None,
    *,
    budget: Budget | None = None,
) -> DFA:
    """The (deterministic) derivative automaton of *expr*.

    States are normalized derivatives; finite by Brzozowski's theorem under
    similarity.  The result is usually close to minimal but not guaranteed
    minimal.  Each fresh derivative state is charged to the resolved
    *budget* (the state count is finite but can be large for nested
    expressions).
    """
    budget = resolve_budget(budget)
    sigma = frozenset(alphabet) if alphabet is not None else expr.symbols()
    initial = normalize(expr)
    states: set[Regex] = {initial}
    transitions: dict[tuple[Regex, Hashable], Regex] = {}
    queue: deque[Regex] = deque([initial])
    while queue:
        if budget is not None:
            with budget_phase(budget, "derivative-dfa"):
                budget.tick(frontier=len(queue))
        state = queue.popleft()
        for symbol in sigma:
            successor = derivative(state, symbol)
            if isinstance(successor, Empty):
                continue
            transitions[(state, symbol)] = successor
            if successor not in states:
                states.add(successor)
                queue.append(successor)
                if budget is not None:
                    with budget_phase(budget, "derivative-dfa"):
                        budget.charge_states(frontier=len(queue))
    finals = {state for state in states if state.nullable()}
    return DFA(states, sigma, transitions, initial, finals)
