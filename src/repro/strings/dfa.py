"""Deterministic finite automata.

The paper represents all content models of schemas by *minimal DFAs* unless
stated otherwise (Section 2.2, footnote 2), so DFAs are the workhorse string
representation of this library.

A :class:`DFA` here is *partial*: the transition function may be undefined on
some ``(state, symbol)`` pairs, in which case the run dies.  :meth:`DFA.completed`
adds an explicit sink, which is what complementation needs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping
from typing import Callable

from repro.errors import AutomatonError
from repro.strings.nfa import NFA

State = Hashable
Symbol = Hashable

_SINK = ("__sink__",)


class DFA:
    """A (possibly partial) deterministic finite automaton.

    Parameters
    ----------
    states:
        Iterable of states.
    alphabet:
        Iterable of symbols.
    transitions:
        Mapping from ``(state, symbol)`` to a single successor state.
    initial:
        The unique initial state.
    finals:
        Iterable of final states.
    """

    __slots__ = ("states", "alphabet", "transitions", "initial", "finals")

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: Mapping[tuple[State, Symbol], State],
        initial: State,
        finals: Iterable[State],
    ) -> None:
        self.states: frozenset[State] = frozenset(states)
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.transitions: dict[tuple[State, Symbol], State] = dict(transitions)
        self.initial: State = initial
        self.finals: frozenset[State] = frozenset(finals)
        self._validate()

    @classmethod
    def _from_parts(
        cls,
        states: Iterable[State],
        alphabet: Iterable[Symbol],
        transitions: dict[tuple[State, Symbol], State],
        initial: State,
        finals: Iterable[State],
    ) -> "DFA":
        """Trusted internal constructor: skips :meth:`_validate`.

        Only for construction sites that produce the invariants by
        *construction* (the bitmask kernels decode every state, symbol and
        transition from the same coded tables, so re-checking them is pure
        overhead on the hot path).
        """
        self = object.__new__(cls)
        self.states = frozenset(states)
        self.alphabet = frozenset(alphabet)
        self.transitions = transitions if type(transitions) is dict else dict(transitions)
        self.initial = initial
        self.finals = frozenset(finals)
        return self

    def _validate(self) -> None:
        if self.initial not in self.states:
            raise AutomatonError("initial state must be a state")
        if not self.finals <= self.states:
            raise AutomatonError("final states must be a subset of states")
        for (src, sym), dst in self.transitions.items():
            if src not in self.states or dst not in self.states:
                raise AutomatonError(f"transition {src!r} --{sym!r}--> {dst!r} uses unknown states")
            if sym not in self.alphabet:
                raise AutomatonError(f"transition symbol {sym!r} is not in the alphabet")

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------

    def successor(self, state: State, symbol: Symbol) -> State | None:
        """Return ``delta(state, symbol)`` or None when undefined."""
        return self.transitions.get((state, symbol))

    def read(self, word: Iterable[Symbol]) -> State | None:
        """Run the DFA on *word*; return the final state or None if the run dies."""
        current: State | None = self.initial
        for symbol in word:
            if current is None:
                return None
            current = self.successor(current, symbol)
        return current

    def accepts(self, word: Iterable[Symbol]) -> bool:
        """Return True iff *word* is in ``L(A)``."""
        state = self.read(word)
        return state is not None and state in self.finals

    def size(self) -> int:
        """Paper's size measure: states plus transition count."""
        return len(self.states) + len(self.transitions)

    def is_complete(self) -> bool:
        """True iff the transition function is total on states x alphabet."""
        return all(
            (state, symbol) in self.transitions
            for state in self.states
            for symbol in self.alphabet
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def to_nfa(self) -> NFA:
        """View this DFA as an NFA (singleton transition sets)."""
        transitions = {key: {dst} for key, dst in self.transitions.items()}
        return NFA(self.states, self.alphabet, transitions, {self.initial}, self.finals)

    def relabel(self, prefix: str = "s") -> "DFA":
        """Return an isomorphic DFA with states renamed ``prefix0..prefixN``.

        States are renamed in BFS order from the initial state (with symbols
        ordered by repr), which makes the naming canonical for isomorphic
        automata.
        """
        order: list[State] = [self.initial]
        seen: set[State] = {self.initial}
        queue: deque[State] = deque([self.initial])
        symbols = sorted(self.alphabet, key=repr)
        while queue:  # ungoverned: linear BFS over a materialized automaton
            state = queue.popleft()
            for symbol in symbols:
                dst = self.successor(state, symbol)
                if dst is not None and dst not in seen:
                    seen.add(dst)
                    order.append(dst)
                    queue.append(dst)
        # Unreachable states (if any) go last, in repr order.
        for state in sorted(self.states - seen, key=repr):
            order.append(state)
        mapping = {state: f"{prefix}{i}" for i, state in enumerate(order)}
        transitions = {
            (mapping[src], sym): mapping[dst]
            for (src, sym), dst in self.transitions.items()
        }
        return DFA(
            mapping.values(),
            self.alphabet,
            transitions,
            mapping[self.initial],
            {mapping[q] for q in self.finals},
        )

    # ------------------------------------------------------------------
    # Completion, trimming
    # ------------------------------------------------------------------

    def completed(self, alphabet: Iterable[Symbol] | None = None) -> "DFA":
        """Return a complete DFA for the same language.

        If *alphabet* is given, the alphabet is first extended to include it.
        A sink state is added only when some transition is missing.
        """
        full_alphabet = self.alphabet | (frozenset(alphabet) if alphabet else frozenset())
        missing = [
            (state, symbol)
            for state in self.states
            for symbol in full_alphabet
            if (state, symbol) not in self.transitions
        ]
        if not missing:
            return DFA(self.states, full_alphabet, self.transitions, self.initial, self.finals)
        sink = _SINK
        while sink in self.states:
            sink = (sink,)
        transitions = dict(self.transitions)
        for state, symbol in missing:
            transitions[(state, symbol)] = sink
        for symbol in full_alphabet:
            transitions[(sink, symbol)] = sink
        return DFA(
            self.states | {sink},
            full_alphabet,
            transitions,
            self.initial,
            self.finals,
        )

    def reachable_states(self) -> frozenset[State]:
        """Return the states reachable from the initial state."""
        seen: set[State] = {self.initial}
        queue: deque[State] = deque([self.initial])
        while queue:  # ungoverned: linear BFS over a materialized automaton
            state = queue.popleft()
            for symbol in self.alphabet:
                dst = self.successor(state, symbol)
                if dst is not None and dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return frozenset(seen)

    def trim(self) -> "DFA":
        """Restrict to states that are reachable and co-reachable.

        The initial state is always kept (even if no final state is
        reachable from it) so the result is a well-formed DFA.
        """
        reachable = self.reachable_states()
        coreachable = self.to_nfa().coreachable_states()
        useful = (reachable & coreachable) | {self.initial}
        transitions = {
            (src, sym): dst
            for (src, sym), dst in self.transitions.items()
            if src in useful and dst in useful
        }
        return DFA(useful, self.alphabet, transitions, self.initial, self.finals & useful)

    def is_empty_language(self) -> bool:
        """True iff ``L(A)`` is empty."""
        return not (self.reachable_states() & self.finals)

    def accepts_empty_word(self) -> bool:
        """True iff the empty word is in ``L(A)``."""
        return self.initial in self.finals

    # ------------------------------------------------------------------
    # Boolean operations (product constructions)
    # ------------------------------------------------------------------

    def product(self, other: "DFA", combine: Callable[[bool, bool], bool]) -> "DFA":
        """Return the product DFA accepting by ``combine(final1, final2)``.

        Both automata are completed over the union of alphabets first, so the
        product is correct for any boolean *combine* (including union and
        difference, which are not correct on partial products).  Only the
        reachable part of the product is built.
        """
        alphabet = self.alphabet | other.alphabet
        left = self.completed(alphabet)
        right = other.completed(alphabet)
        initial = (left.initial, right.initial)
        states: set[tuple[State, State]] = {initial}
        transitions: dict[tuple[tuple[State, State], Symbol], tuple[State, State]] = {}
        queue: deque[tuple[State, State]] = deque([initial])
        while queue:  # ungoverned: pair product bounded by |A| x |B| states
            pair = queue.popleft()
            for symbol in alphabet:
                nxt = (
                    left.transitions[(pair[0], symbol)],
                    right.transitions[(pair[1], symbol)],
                )
                transitions[(pair, symbol)] = nxt
                if nxt not in states:
                    states.add(nxt)
                    queue.append(nxt)
        finals = {
            (p, q)
            for (p, q) in states
            if combine(p in left.finals, q in right.finals)
        }
        return DFA(states, alphabet, transitions, initial, finals)

    def intersection(self, other: "DFA") -> "DFA":
        """Return a DFA for ``L(self) & L(other)``."""
        return self.product(other, lambda a, b: a and b)

    def union(self, other: "DFA") -> "DFA":
        """Return a DFA for ``L(self) | L(other)``."""
        return self.product(other, lambda a, b: a or b)

    def difference(self, other: "DFA") -> "DFA":
        """Return a DFA for ``L(self) - L(other)``."""
        return self.product(other, lambda a, b: a and not b)

    def complement(self, alphabet: Iterable[Symbol] | None = None) -> "DFA":
        """Return a DFA for ``Sigma* - L(self)``.

        The complement is taken relative to the automaton's alphabet extended
        with *alphabet* if given.
        """
        complete = self.completed(alphabet)
        return DFA(
            complete.states,
            complete.alphabet,
            complete.transitions,
            complete.initial,
            complete.states - complete.finals,
        )

    # ------------------------------------------------------------------
    # Structural comparison
    # ------------------------------------------------------------------

    def isomorphic_to(self, other: "DFA") -> bool:
        """True iff the *reachable parts* are isomorphic as labeled graphs.

        For minimal complete DFAs this coincides with language equality.
        """
        if self.alphabet != other.alphabet:
            return False
        mapping: dict[State, State] = {self.initial: other.initial}
        queue: deque[State] = deque([self.initial])
        symbols = sorted(self.alphabet, key=repr)
        while queue:  # ungoverned: linear scan over two materialized automata
            state = queue.popleft()
            image = mapping[state]
            if (state in self.finals) != (image in other.finals):
                return False
            for symbol in symbols:
                mine = self.successor(state, symbol)
                theirs = other.successor(image, symbol)
                if (mine is None) != (theirs is None):
                    return False
                if mine is None:
                    continue
                if mine in mapping:
                    if mapping[mine] != theirs:
                        return False
                else:
                    if theirs in set(mapping.values()):
                        return False
                    mapping[mine] = theirs
                    queue.append(mine)
        return True

    def __repr__(self) -> str:
        return (
            f"DFA(states={len(self.states)}, alphabet={sorted(map(repr, self.alphabet))}, "
            f"transitions={len(self.transitions)}, finals={len(self.finals)})"
        )
