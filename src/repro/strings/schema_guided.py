"""Schema-guided pruned subset construction (string side).

Implements the determinization-under-a-schema idea of Niehren, Sakho &
Al Serhali, *Schema-Based Automata Determinization* (arXiv 2209.10312),
specialized to this library's string substrate.  The blind subset
construction (:func:`repro.strings.kernels.subset_construction`)
materializes every subset reachable over *any* word; when the DFA is
only ever run on words of a known schema — for Construction 3.1 that is
the set of valid ancestor strings of an EDTD — subsets reachable only
via words outside the schema are wasted work.  The guided kernel walks
pairs ``(guide state, subset mask)`` breadth-first and expands a symbol
only when the *guide* DFA can still read it, so guide-dead regions of
the subset lattice are never built.

Guide semantics
---------------
The guide is an ordinary (possibly partial) :class:`~repro.strings.dfa.DFA`:

* a symbol with no guide transition from the current guide state is
  pruned — no subset target is computed for it;
* guide states from which no final is reachable are *dead* and treated
  as missing transitions;
* a guide with **no finals at all** is read as a prefix machine (every
  reachable state alive) — this is the natural shape of
  :func:`repro.schemas.type_automaton.ancestor_guide`, since type
  automata have no finals.

The output DFA is over **subsets only** (the guide component is dropped
at the boundary): a subset's outgoing transition depends only on
``(subset, symbol)``, so determinism is preserved and the result is
directly comparable with — and under the universal guide *equal* to —
the blind construction's output.

Governance contract
-------------------
Budget charging mirrors the blind scalar loop exactly, per *pair*
instead of per subset: one uncharged initial state, ``|alphabet|``
pending steps per expanded pair (ticked **before** guide pruning, so the
universal guide reproduces the blind kernel's trip counts
charge-for-charge), one state per fresh pair, ``_FLUSH``-batched
flushes, and lazy checkpoint snapshots materialized only at trip time
(:class:`SchemaGuidedCheckpoint` — interchangeable observable contract
with :class:`~repro.strings.determinize.SubsetCheckpoint`).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro import observability as _obs
from repro.errors import AutomatonError
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.strings.kernels import (
    _FLUSH,
    _KernelCache,
    _code_states,
    _mask_of,
    _memoized,
    _symbol_reprs,
    _unmask,
    structural_key,
)

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from collections.abc import Hashable

    from repro.strings.dfa import DFA as _DFA
    from repro.strings.nfa import NFA as _NFA

    State = Hashable
    Symbol = Hashable


# ----------------------------------------------------------------------
# Guides
# ----------------------------------------------------------------------

def universal_guide(alphabet: Iterable[Any]) -> "_DFA":
    """The one-state complete all-final DFA over *alphabet*: a guide that
    prunes nothing.  Guiding by it reproduces the blind subset
    construction state-for-state and charge-for-charge."""
    from repro.strings.dfa import DFA

    alphabet = frozenset(alphabet)
    state = "*"
    return DFA(
        {state},
        alphabet,
        {(state, symbol): state for symbol in alphabet},
        state,
        {state},
    )


def depth_guide(alphabet: Iterable[Any], depth: int) -> "_DFA":
    """A chain DFA accepting exactly the words of length <= *depth*.

    As a guide it cuts subset exploration off below level ``depth`` of
    the BFS — the natural schema for documents of bounded nesting, and
    the simplest guide that provably bends the Theorem 3.2 blow-up
    (``2^n`` subsets become ``O(2^(depth+1))``).
    """
    if depth < 0:
        raise AutomatonError(f"depth_guide depth must be >= 0, got {depth}")
    from repro.strings.dfa import DFA

    alphabet = frozenset(alphabet)
    states = list(range(depth + 1))
    transitions = {
        (level, symbol): level + 1
        for level in range(depth)
        for symbol in alphabet
    }
    return DFA(states, alphabet, transitions, 0, states)


def _guide_step_table(
    guide: "_DFA", symbols: list[Any]
) -> tuple[dict[tuple[Any, int], Any], frozenset[Any]]:
    """``(guide state, symbol index) -> alive successor`` plus the alive set.

    Alive = reachable and (when the guide declares finals) co-reachable;
    a guide with no finals is a prefix machine, so every reachable state
    is alive.  Transitions into dead states are dropped — the guided BFS
    treats them as pruned.
    """
    reachable = guide.reachable_states()
    if guide.finals:
        alive = frozenset(
            state
            for state in guide.to_nfa().coreachable_states()
            if state in reachable
        )
    else:
        alive = reachable
    table: dict[tuple[Any, int], Any] = {}
    for sym_index, symbol in enumerate(symbols):
        for state in alive:
            target = guide.transitions.get((state, symbol))
            if target is not None and target in alive:
                table[(state, sym_index)] = target
    return table, alive


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SchemaGuidedCheckpoint:
    """Resumable snapshot of a partially-run guided subset construction.

    Same observable contract as
    :class:`~repro.strings.determinize.SubsetCheckpoint` (``states``,
    ``states_explored``, ``frontier_size``, resumable via the
    ``checkpoint=`` kwarg with the same NFA/guide/flags), but the
    explored set and frontier are ``(guide state, subset)`` pairs — the
    unit the guided BFS charges by.
    """

    pairs: tuple[tuple[Any, frozenset[Any]], ...]
    transitions: tuple[tuple[tuple[frozenset[Any], Any], frozenset[Any]], ...]
    frontier: tuple[tuple[Any, frozenset[Any]], ...]

    @property
    def states(self) -> frozenset[frozenset[Any]]:
        """The distinct subset components explored so far."""
        return frozenset(subset for _, subset in self.pairs)

    @property
    def states_explored(self) -> int:
        return len(self.pairs)

    @property
    def frontier_size(self) -> int:
        return len(self.frontier)


# ----------------------------------------------------------------------
# The guided kernel
# ----------------------------------------------------------------------

def guided_subset_construction(
    nfa: "_NFA",
    guide: "_DFA",
    *,
    keep_empty: bool = False,
    budget: Budget | None = None,
    checkpoint: SchemaGuidedCheckpoint | None = None,
    trace: Any = None,
) -> "_DFA":
    """Subset construction pruned by *guide* (see the module docstring).

    For every word ``w`` accepted by *guide* the returned DFA reaches the
    same subset as the blind construction, so ``L(result) ∩ L(guide) =
    L(nfa) ∩ L(guide)``; subsets unreachable under the guide are never
    materialized.  Under :func:`universal_guide` the result — and the
    budget charge sequence — equals the blind kernel's exactly.
    """
    budget = resolve_budget(budget)
    order, code = _code_states(nfa.states)
    symbols = sorted(nfa.alphabet, key=repr)
    fanout = len(symbols)
    succ: list[list[int]] = [[0] * len(order) for _ in symbols]
    for sym_index, symbol in enumerate(symbols):
        row = succ[sym_index]
        for state, index in code.items():
            targets = nfa.transitions.get((state, symbol))
            if targets:
                row[index] = _mask_of(targets, code)
    nchunks = ((len(order) + 15) >> 4) or 1
    step_tab: list[list[dict[int, int]]] = [
        [{0: 0} for _ in range(nchunks)] for _ in symbols
    ]
    initial_mask = _mask_of(nfa.initials, code)
    finals_mask = _mask_of(nfa.finals, code)
    g_step, alive = _guide_step_table(guide, symbols)

    with _obs.construction_span(
        "determinize",
        trace=trace,
        budget=budget,
        kernel="schema-guided",
        nfa_states=len(order),
        guide_states=len(alive),
    ) as span:
        dfa = _guided_scalar(
            nfa, guide, keep_empty, budget, checkpoint, order, code, symbols,
            fanout, succ, step_tab, g_step, initial_mask, finals_mask,
        )
        if span is not None:
            span.annotate(dfa_states=len(dfa.states))
        if _obs.ENABLED:
            _obs.METRICS.counter("determinize.runs").inc()
            _obs.METRICS.counter("determinize.schema_guided.runs").inc()
            _obs.METRICS.histogram("determinize.dfa_states").observe(len(dfa.states))
    return dfa


def _guided_scalar(
    nfa: "_NFA",
    guide: "_DFA",
    keep_empty: bool,
    budget: Budget | None,
    checkpoint: SchemaGuidedCheckpoint | None,
    order: list[Any],
    code: dict[Any, int],
    symbols: list[Any],
    fanout: int,
    succ: list[list[int]],
    step_tab: list[list[dict[int, int]]],
    g_step: dict[tuple[Any, int], Any],
    initial_mask: int,
    finals_mask: int,
) -> "_DFA":
    """The governed guided BFS (single source of truth for charging)."""
    from repro.strings.dfa import DFA

    if checkpoint is None:
        first = (guide.initial, initial_mask)
        seen: set[tuple[Any, int]] = {first}
        subsets: dict[int, None] = {initial_mask: None}
        trans: dict[tuple[int, int], int] = {}
        queue: deque[tuple[Any, int]] = deque([first])
        if budget is not None:
            budget.charge_states(1, frontier=1)
    else:
        first = (guide.initial, initial_mask)
        seen = set()
        subsets = {initial_mask: None}
        for g, subset in checkpoint.pairs:
            mask = _mask_of(subset, code)
            seen.add((g, mask))
            subsets[mask] = None
        trans = {
            (_mask_of(subset, code), symbols.index(symbol)): _mask_of(target, code)
            for (subset, symbol), target in checkpoint.transitions
        }
        queue = deque(
            (g, _mask_of(subset, code)) for g, subset in checkpoint.frontier
        )

    with budget_phase(budget, "determinize"):
        if budget is not None:
            cursor = [first]

            def snapshot() -> SchemaGuidedCheckpoint:
                # Decoded lazily, only at trip time; *cursor* is re-enqueued
                # so resumption recomputes at most |alphabet| idempotent
                # transitions (same discipline as the blind kernel).
                return SchemaGuidedCheckpoint(
                    pairs=tuple((g, _unmask(m, order)) for g, m in seen),
                    transitions=tuple(
                        ((_unmask(src, order), symbols[s]), _unmask(dst, order))
                        for (src, s), dst in trans.items()
                    ),
                    frontier=tuple(
                        (g, _unmask(m, order)) for g, m in (cursor[0], *queue)
                    ),
                )

            tick, charge_states = budget.tick, budget.charge_states
            pending = 0
        sym_range = range(fanout)
        while queue:
            g_state, mask = queue.popleft()
            if budget is not None:
                cursor[0] = (g_state, mask)
                # Charged before guide pruning: the fanout is the work the
                # blind loop would do, so the universal guide reproduces
                # blind trip counts exactly.
                pending += fanout
                if pending >= _FLUSH:
                    tick(pending, len(queue), snapshot)
                    pending = 0
            for sym_index in sym_range:
                g_next = g_step.get((g_state, sym_index))
                if g_next is None:
                    continue  # pruned: the guide cannot read this symbol here
                row = succ[sym_index]
                tabs = step_tab[sym_index]
                target = 0
                rest = mask
                chunk_index = 0
                while rest:  # ungoverned: bit-scan bounded by the coded state count
                    chunk = rest & 0xFFFF
                    if chunk:
                        table = tabs[chunk_index]
                        part = table.get(chunk)
                        if part is None:
                            stack = []
                            value = chunk
                            while part is None:  # ungoverned: chain-fill, <= 16 bits
                                stack.append(value)
                                value ^= value & -value
                                part = table.get(value)
                            base = chunk_index << 4
                            while stack:  # ungoverned: chain-fill bounded by 16 bits
                                value = stack.pop()
                                low = value & -value
                                part |= row[base + low.bit_length() - 1]
                                table[value] = part
                        target |= part
                    rest >>= 16
                    chunk_index += 1
                if not target and not keep_empty:
                    continue
                trans[(mask, sym_index)] = target
                if target not in subsets:
                    subsets[target] = None
                pair = (g_next, target)
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
                    if budget is not None:
                        charge_states(1, len(queue), snapshot)
        if budget is not None and pending:
            budget.tick(pending, 0)

    # API boundary: drop the guide component, reconstruct frozenset views.
    views = {mask: _unmask(mask, order) for mask in subsets}
    transitions = {
        (views[src], symbols[sym_index]): views[dst]
        for (src, sym_index), dst in trans.items()
    }
    finals = [views[mask] for mask in subsets if mask & finals_mask]
    return DFA._from_parts(
        views.values(), nfa.alphabet, transitions, views[initial_mask], finals
    )


# ----------------------------------------------------------------------
# Memo cache (strategy folded into the key via the cache name)
# ----------------------------------------------------------------------

_SG_DET_CACHE = _KernelCache("schema_guided_det")
_SG_MIN_CACHE = _KernelCache("schema_guided_min_dfa")


def _sg_cache_totals() -> tuple[int, int]:
    return (
        _SG_DET_CACHE.hits + _SG_MIN_CACHE.hits,
        _SG_DET_CACHE.misses + _SG_MIN_CACHE.misses,
    )


_obs.register_cache_provider(_sg_cache_totals)


def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/entry counters of the schema-guided kernel caches."""
    return {
        _SG_DET_CACHE.name: _SG_DET_CACHE.stats(),
        _SG_MIN_CACHE.name: _SG_MIN_CACHE.stats(),
    }


def clear_caches() -> None:
    """Drop the schema-guided memo entries and reset the counters."""
    _SG_DET_CACHE.clear()
    _SG_MIN_CACHE.clear()


def cached_guided_subset_construction(
    nfa: "_NFA",
    guide: "_DFA",
    *,
    keep_empty: bool = False,
    budget: Budget | None = None,
) -> "_DFA":
    """Memoized :func:`guided_subset_construction`.

    Keyed by ``(state reprs, NFA fingerprint, guide fingerprint,
    keep_empty)`` — state reprs are included because the returned DFA's
    states are frozensets of the *input's* state objects (two
    isomorphic-but-differently-named NFAs must not share an entry).  The
    cache name (``schema_guided_det``) folds the strategy into the
    on-disk artifact digest, so blind and guided artifacts never
    collide.  Hits replay the recorded budget cost.
    """
    budget = resolve_budget(budget)
    state_key = _symbol_reprs(nfa.states)
    nfa_key = structural_key(nfa)
    guide_key = structural_key(guide)
    key = None
    if state_key is not None and nfa_key is not None and guide_key is not None:
        key = (state_key, nfa_key, guide_key, bool(keep_empty))

    def build(inner_budget: Budget | None) -> "_DFA":
        return guided_subset_construction(
            nfa, guide, keep_empty=keep_empty, budget=inner_budget
        )

    return _memoized(_SG_DET_CACHE, key, build, budget)


def cached_guided_min_dfa(
    language: object,
    guide: "_DFA",
    *,
    budget: Budget | None = None,
) -> "_DFA":
    """Memoized guided counterpart of
    :func:`repro.strings.kernels.cached_min_dfa`: determinize *language*
    under *guide* (pruning guide-dead subsets during the construction
    instead of restricting afterwards), then minimize.

    This is the kernel behind Construction 3.1's guided content-model
    unions: the guide is the universal guide over the symbols actually
    leaving a subset state, so symbols no valid document can emit there
    are never expanded.  Relative to words the guide accepts, the result
    is language-equal to the blind pipeline.  Keyed by ``(state reprs,
    language fingerprint, guide fingerprint)``; hits replay the recorded
    budget cost.
    """
    from repro.strings.minimize import minimize_dfa
    from repro.strings.ops import as_nfa

    budget = resolve_budget(budget)
    nfa = as_nfa(language)
    state_key = _symbol_reprs(nfa.states)
    nfa_key = structural_key(language)
    guide_key = structural_key(guide)
    key = None
    if state_key is not None and nfa_key is not None and guide_key is not None:
        key = (state_key, nfa_key, guide_key)

    def build(inner_budget: Budget | None) -> "_DFA":
        return minimize_dfa(
            guided_subset_construction(nfa, guide, budget=inner_budget),
            budget=inner_budget,
        )

    return _memoized(_SG_MIN_CACHE, key, build, budget)
