"""Hopcroft's O(n log n) DFA minimization.

:func:`repro.strings.minimize.minimize_dfa` uses Moore-style iterative
refinement — simple and fast enough for the paper's instances.  This
module provides the asymptotically optimal alternative for the hot paths
(content models of large constructed schemas), differentially tested
against the Moore route.

The split structure follows Hopcroft's classic "smaller half" worklist:
partition blocks are refined against (block, symbol) splitters, and only
the smaller part of each split re-enters the worklist.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro import observability as _obs
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.strings.dfa import DFA


def hopcroft_minimize(
    dfa: DFA, *, complete: bool = False, budget: Budget | None = None
) -> DFA:
    """Return the minimal DFA for ``L(dfa)`` via Hopcroft's algorithm.

    Same contract as :func:`repro.strings.minimize.minimize_dfa`: the
    result is trim by default (pass ``complete=True`` to keep the sink),
    with canonical BFS state names.  Charges one step per splitter drawn
    and one state per block created against the resolved *budget*.
    """
    budget = resolve_budget(budget)
    # Restrict to the reachable part and complete it.
    reachable = dfa.reachable_states()
    restricted = DFA(
        reachable,
        dfa.alphabet,
        {
            (src, sym): dst
            for (src, sym), dst in dfa.transitions.items()
            if src in reachable and dst in reachable
        },
        dfa.initial,
        dfa.finals & reachable,
    )
    total = restricted.completed()
    states = list(total.states)
    alphabet = list(total.alphabet)

    # Inverse transition index: (symbol, dst) -> set of srcs.
    inverse: dict[tuple, set] = {}
    for (src, sym), dst in total.transitions.items():
        inverse.setdefault((sym, dst), set()).add(src)

    finals = set(total.finals)
    non_finals = set(states) - finals
    # Partition as a list of blocks; block index per state.
    blocks: list[set] = []
    block_of: dict[Hashable, int] = {}
    for group in (finals, non_finals):
        if group:
            index = len(blocks)
            blocks.append(set(group))
            for state in group:
                block_of[state] = index

    worklist: deque[tuple[int, object]] = deque()
    seed = 0 if (finals and (not non_finals or len(finals) <= len(non_finals))) else (
        1 if non_finals and finals else 0
    )
    for symbol in alphabet:
        worklist.append((seed, symbol))

    with _obs.construction_span(
        "hopcroft-minimize", budget=budget, n_states=len(states)
    ) as span:
        while worklist:
            if budget is not None:
                with budget_phase(budget, "hopcroft"):
                    budget.tick(frontier=len(worklist))
            splitter_index, symbol = worklist.popleft()
            splitter = blocks[splitter_index]
            # States with a `symbol`-transition into the splitter.
            predecessors: set[Hashable] = set()
            for dst in splitter:
                predecessors |= inverse.get((symbol, dst), set())
            if not predecessors:
                continue
            # Group the affected blocks.
            touched: dict[int, set] = {}
            for state in predecessors:
                touched.setdefault(block_of[state], set()).add(state)
            for block_index, inside in touched.items():
                block = blocks[block_index]
                if len(inside) == len(block):
                    continue  # no split
                outside = block - inside
                # Keep the larger part in place; the smaller becomes new.
                if len(inside) <= len(outside):
                    new_part, old_part = inside, outside
                else:
                    new_part, old_part = outside, inside
                blocks[block_index] = old_part
                new_index = len(blocks)
                blocks.append(new_part)
                if budget is not None:
                    with budget_phase(budget, "hopcroft"):
                        budget.charge_states(frontier=len(worklist))
                for state in new_part:
                    block_of[state] = new_index
                # Update the worklist (smaller-half rule).
                for sym in alphabet:
                    if (block_index, sym) in worklist:
                        worklist.append((new_index, sym))
                    else:
                        smaller = (
                            new_index
                            if len(new_part) <= len(old_part)
                            else block_index
                        )
                        worklist.append((smaller, sym))
        if span is not None:
            span.annotate(blocks=len(blocks))
        if _obs.ENABLED:
            _obs.METRICS.counter("hopcroft.runs").inc()
            _obs.METRICS.histogram("hopcroft.blocks").observe(len(blocks))

    transitions = {
        (block_of[src], sym): block_of[dst]
        for (src, sym), dst in total.transitions.items()
    }
    merged = DFA(
        set(block_of.values()),
        total.alphabet,
        transitions,
        block_of[total.initial],
        {block_of[state] for state in total.finals},
    )
    if not complete:
        merged = merged.trim()
    return merged.relabel("m")
