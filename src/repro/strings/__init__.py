"""Regular string-language substrate (Section 2.1 of the paper).

Public API:

* :class:`~repro.strings.nfa.NFA`, :class:`~repro.strings.dfa.DFA`
* :func:`~repro.strings.determinize.determinize`
* :func:`~repro.strings.minimize.minimize_dfa`, :func:`~repro.strings.minimize.moore_partition`
* :mod:`~repro.strings.regex` — the paper's RE grammar + parser
* :func:`~repro.strings.glushkov.glushkov_nfa` — state-labeled NFAs
* :mod:`~repro.strings.ops` — coercions and decision procedures
* :mod:`~repro.strings.builders` — the paper's concrete languages
* :mod:`~repro.strings.kernels` — integer-coded bitmask hot loops and the
  structural memo cache (see ``docs/PERFORMANCE.md``)
* :mod:`~repro.strings.schema_guided` — schema-guided pruned
  determinization (``determinize(..., strategy="schema-guided")``)
"""

from repro.strings.derivatives import derivative, dfa_from_regex, matches, normalize
from repro.strings.determinize import determinize
from repro.strings.dfa import DFA
from repro.strings.glushkov import glushkov_nfa, is_deterministic_expression
from repro.strings.hopcroft import hopcroft_minimize
from repro.strings.kernels import (
    cache_stats,
    cached_min_dfa,
    clear_caches,
    hopcroft_refine,
    nfa_includes,
    structural_key,
    subset_construction,
)
from repro.strings.minimize import minimal_dfa_equal, minimize_dfa, moore_partition
from repro.strings.nfa import NFA
from repro.strings.ops import (
    as_dfa,
    as_min_dfa,
    as_nfa,
    count_words_by_length,
    enumerate_words,
    equivalent,
    includes,
    is_empty,
    is_universal,
    sample_word,
    shortest_word,
)
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Regex,
    concat,
    parse,
    sym,
    union,
)
from repro.strings.schema_guided import (
    SchemaGuidedCheckpoint,
    cached_guided_subset_construction,
    depth_guide,
    guided_subset_construction,
    universal_guide,
)

__all__ = [
    "DFA",
    "EMPTY",
    "EPSILON",
    "NFA",
    "Regex",
    "SchemaGuidedCheckpoint",
    "as_dfa",
    "as_min_dfa",
    "as_nfa",
    "cache_stats",
    "cached_guided_subset_construction",
    "cached_min_dfa",
    "clear_caches",
    "concat",
    "depth_guide",
    "guided_subset_construction",
    "universal_guide",
    "count_words_by_length",
    "derivative",
    "determinize",
    "dfa_from_regex",
    "matches",
    "normalize",
    "enumerate_words",
    "equivalent",
    "glushkov_nfa",
    "hopcroft_minimize",
    "hopcroft_refine",
    "includes",
    "is_deterministic_expression",
    "is_empty",
    "is_universal",
    "minimal_dfa_equal",
    "minimize_dfa",
    "moore_partition",
    "nfa_includes",
    "parse",
    "sample_word",
    "shortest_word",
    "structural_key",
    "subset_construction",
    "sym",
    "union",
]
