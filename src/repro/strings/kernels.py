"""Bitset automata kernels: the library's hot loops on machine integers.

Every construction in the paper bottoms out in three string-automaton
primitives — determinization (Construction 3.1 *is* a subset
construction), minimization, and product/inclusion — and they all spend
their time hashing frozensets and allocating tuples.  This module
integer-codes states and symbols **once per automaton** and runs the hot
loops on ints:

* :func:`subset_construction` — subset states are int bitmasks interned
  in a dict; ``frozenset`` views are reconstructed only at the API
  boundary, so :class:`~repro.strings.determinize.SubsetCheckpoint`
  resume and the upper approximation's merged-type inspection keep
  working unchanged.  Ungoverned runs on NFAs with <= 63 states take a
  numpy-vectorized level-BFS fast path when numpy is importable (the
  kernels degrade gracefully to the scalar loop without it).
* :func:`hopcroft_refine` — Hopcroft's O(n log n) "smaller half"
  partition refinement, generalized to arbitrary initial partitions so
  it can replace the quadratic Moore loop behind both
  :func:`~repro.strings.minimize.minimize_dfa` and
  :func:`~repro.strings.minimize.moore_partition`.
* :func:`nfa_includes` — on-the-fly product inclusion: the pair space of
  two lazily-determinized NFAs is explored BFS with **early exit** on
  the first counterexample, never materializing either full DFA.
* :func:`cached_min_dfa` — a structural-hash interning cache for minimal
  content-model DFAs with hit/miss counters.  Cache hits *recharge* the
  active :class:`~repro.runtime.Budget` with the recorded construction
  cost, so governed runs trip at the same state counts whether or not
  the cache is warm (governance stays deterministic).

All loops charge the PR-1 budget in ``_FLUSH``-sized batches, keeping
the governed/ungoverned overhead under the 5% ceiling enforced by
``benchmarks/bench_governor_overhead.py``.

See ``docs/PERFORMANCE.md`` for the coding scheme and the cache
invalidation story.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable, Mapping
from itertools import repeat
from typing import TYPE_CHECKING, Any

from repro import observability as _obs
from repro.runtime.budget import Budget, budget_phase, resolve_budget

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from repro.strings.determinize import SubsetCheckpoint
    from repro.strings.dfa import DFA as _DFA
    from repro.strings.nfa import NFA as _NFA

try:  # the vectorized fast path is optional — the scalar kernels are exact
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

State = Hashable
Symbol = Hashable

#: Batch size (in steps) for flushing locally-accumulated tick charges;
#: bounds how stale the step counter may run during the hot loops.
_FLUSH = 256

#: Set to False to force the scalar loops even when numpy is importable.
#: The governor-overhead benchmark uses this to compare governed vs
#: ungoverned runs of the *same* code path (the vectorized fast path only
#: exists ungoverned, so leaving it on would measure the fast path's
#: advantage, not the cost of budget charging).
USE_FAST_PATH = True


# ----------------------------------------------------------------------
# Integer coding
# ----------------------------------------------------------------------

def _code_states(states: Iterable[State]) -> tuple[list[State], dict[State, int]]:
    """Deterministically order *states* and return ``(order, index)``."""
    order = sorted(states, key=repr)
    return order, {state: i for i, state in enumerate(order)}


def _mask_of(states: Iterable[State], code: dict[State, int]) -> int:
    mask = 0
    for state in states:
        mask |= 1 << code[state]
    return mask


def _unmask(mask: int, order: list[State]) -> frozenset[State]:
    members = []
    while mask:  # ungoverned: bit-scan bounded by one machine word
        low = mask & -mask
        members.append(order[low.bit_length() - 1])
        mask ^= low
    return frozenset(members)


def _chunk_frozensets(order: list[State], base: int, values: list[int]) -> dict[int, frozenset]:
    """Interned frozensets for 16-bit chunk *values* over ``order[base:]``.

    Filled along the chain ``sets[v] = sets[v ^ lowbit] | {state}`` so each
    distinct chunk value costs one union, and the member hashes stored in
    the smaller set are reused instead of recomputed.
    """
    sets: dict[int, frozenset] = {0: frozenset()}
    for value in values:
        stack = []
        cursor = value
        part = sets.get(cursor)
        while part is None:
            stack.append(cursor)
            cursor ^= cursor & -cursor
            part = sets.get(cursor)
        while stack:
            cursor = stack.pop()
            low = cursor & -cursor
            part = part | {order[base + low.bit_length() - 1]}
            sets[cursor] = part
    return sets


def _subset_fast(
    nfa: "_NFA",
    keep_empty: bool,
    order: list[State],
    symbols: list[Hashable],
    succ: list[list[int]],
    initial_mask: int,
    finals_mask: int,
) -> "_DFA":
    """Vectorized (numpy) subset construction for ungoverned runs.

    The BFS runs level-synchronously on int64 mask arrays: one fancy-indexed
    gather per (level, symbol, chunk) replaces the per-subset Python loop.
    Only the API boundary — frozenset views, the transitions dict — is
    Python-object work, assembled with C-level ``zip``/``map``/``update``.
    Masks must fit in a signed int64, so callers gate on ``len(order) <= 63``.

    The cyclic GC is paused for the duration: the construction allocates
    ~``|Q| + |delta|`` tuples and frozensets of *pre-existing* objects (no
    reference cycles can form), and generation-0 scans over that churn cost
    more than the whole BFS.
    """
    import gc

    from repro.strings.dfa import DFA

    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _subset_fast_inner(
            nfa, keep_empty, order, symbols, succ, initial_mask, finals_mask, DFA
        )
    finally:
        if gc_was_enabled:
            gc.enable()


def _subset_fast_inner(
    nfa: "_NFA",
    keep_empty: bool,
    order: list[State],
    symbols: list[Hashable],
    succ: list[list[int]],
    initial_mask: int,
    finals_mask: int,
    DFA: "type[_DFA]",
) -> "_DFA":
    size = len(order)
    nchunks = ((size + 15) >> 4) or 1
    int64 = _np.int64
    tables = []  # tables[sym][chunk]: int64[65536] chunk-value -> successor mask
    for row in succ:
        per_chunk = []
        for chunk_index in range(nchunks):
            base = chunk_index << 4
            table = _np.zeros(1, dtype=int64)
            for bit in range(16):
                successors = row[base + bit] if base + bit < size else 0
                table = _np.concatenate([table, table | int64(successors)])
            per_chunk.append(table)
        tables.append(per_chunk)

    seen = _np.array([initial_mask], dtype=int64)
    frontier = seen
    src_parts: list[list] = [[] for _ in symbols]
    dst_parts: list[list] = [[] for _ in symbols]
    while frontier.size:  # ungoverned: fast path, entered only when no budget is active
        chunks = [(frontier >> (16 * c)) & 0xFFFF for c in range(nchunks)]
        level: list[int] = []
        for sym_index, per_chunk in enumerate(tables):
            targets = per_chunk[0][chunks[0]]
            for chunk_index in range(1, nchunks):
                targets = targets | per_chunk[chunk_index][chunks[chunk_index]]
            if not keep_empty:
                nonzero = targets != 0
                src_parts[sym_index].append(frontier[nonzero])
                dst_parts[sym_index].append(targets[nonzero])
                level.append(targets[nonzero])
            else:
                src_parts[sym_index].append(frontier)
                dst_parts[sym_index].append(targets)
                level.append(targets)
        if not level:
            break
        candidates = _np.unique(_np.concatenate(level))
        positions = _np.searchsorted(seen, candidates)
        clamped = _np.minimum(positions, seen.size - 1)
        fresh = candidates[
            (seen[clamped] != candidates) | (positions >= seen.size)
        ]
        if fresh.size:
            seen = _np.concatenate([seen, fresh])
            seen.sort()
        frontier = fresh

    # API boundary: decode masks to frozenset views (chunk-interned), then
    # assemble the transitions dict without a per-entry Python loop.
    per_chunk_views = []
    for chunk_index in range(nchunks):
        column = (seen >> (16 * chunk_index)) & 0xFFFF
        sets = _chunk_frozensets(
            order, chunk_index << 4, _np.unique(column).tolist()
        )
        per_chunk_views.append(list(map(sets.__getitem__, column.tolist())))
    views = per_chunk_views[0]
    for chunk_views in per_chunk_views[1:]:
        views = list(map(frozenset.union, views, chunk_views))

    transitions: dict[tuple[frozenset[Hashable], Hashable], frozenset[Hashable]] = {}
    getter = views.__getitem__
    for sym_index, symbol in enumerate(symbols):
        if not src_parts[sym_index]:
            continue
        srcs = _np.searchsorted(seen, _np.concatenate(src_parts[sym_index]))
        dsts = _np.searchsorted(seen, _np.concatenate(dst_parts[sym_index]))
        transitions.update(
            zip(
                zip(map(getter, srcs.tolist()), repeat(symbol)),
                map(getter, dsts.tolist()),
            )
        )
    finals = list(
        map(getter, _np.nonzero(seen & finals_mask)[0].tolist())
    )
    initial_view = views[int(_np.searchsorted(seen, initial_mask))]
    return DFA._from_parts(
        views, nfa.alphabet, transitions, initial_view, finals
    )


# ----------------------------------------------------------------------
# Subset construction on bitmasks
# ----------------------------------------------------------------------

def subset_construction(
    nfa: "_NFA",
    *,
    keep_empty: bool = False,
    budget: Budget | None = None,
    checkpoint: "SubsetCheckpoint | None" = None,
) -> "_DFA":
    """Bitmask subset construction; same contract as
    :func:`repro.strings.determinize.determinize`.

    States and symbols of *nfa* are integer-coded once; the BFS then works
    on int masks (interning, membership, and transition targets are all
    integer operations).  The returned DFA's states are ``frozenset``
    views reconstructed at the boundary, and budget charging replicates
    the reference loop exactly — one state per new subset, ``|alphabet|``
    steps per expanded subset, flushed every ``_FLUSH`` steps — so
    checkpoints and exhaustion counts are interchangeable with
    :func:`~repro.strings.determinize.determinize_reference`.
    """
    budget = resolve_budget(budget)
    order, code = _code_states(nfa.states)
    symbols = sorted(nfa.alphabet, key=repr)
    fanout = len(symbols)
    # succ[sym_index][state_index] -> bitmask of successor states.
    succ: list[list[int]] = [[0] * len(order) for _ in symbols]
    for sym_index, symbol in enumerate(symbols):
        row = succ[sym_index]
        for state, index in code.items():
            targets = nfa.transitions.get((state, symbol))
            if targets:
                row[index] = _mask_of(targets, code)

    # Lazily-filled 16-bit chunk tables: step_tab[sym][chunk] maps a
    # 16-bit slice of a subset mask to the OR of the successor masks of
    # the states in that slice, so one step costs ~ceil(n/16) table
    # lookups instead of one per set bit.  Tables fill on demand via the
    # chain t[v] = t[v without lowest bit] | row[lowest bit], one O(1)
    # entry per distinct chunk value ever seen.
    nchunks = ((len(order) + 15) >> 4) or 1
    step_tab: list[list[dict[int, int]]] = [
        [{0: 0} for _ in range(nchunks)] for _ in symbols
    ]

    initial_mask = _mask_of(nfa.initials, code)
    finals_mask = _mask_of(nfa.finals, code)

    fast = (
        budget is None
        and checkpoint is None
        and _np is not None
        and USE_FAST_PATH
        and len(order) <= 63
    )
    with _obs.construction_span(
        "determinize",
        budget=budget,
        kernel="fast" if fast else "scalar",
        nfa_states=len(order),
    ) as span:
        if fast:
            # Ungoverned, uninterrupted runs take the vectorized path; the
            # scalar loop stays the single source of truth for budget
            # charging and checkpoint semantics.
            dfa = _subset_fast(
                nfa, keep_empty, order, symbols, succ, initial_mask, finals_mask
            )
        else:
            dfa = _subset_scalar(
                nfa, keep_empty, budget, checkpoint, order, code, symbols,
                fanout, succ, step_tab, nchunks, initial_mask, finals_mask,
            )
        if span is not None:
            span.annotate(dfa_states=len(dfa.states))
        if _obs.ENABLED:
            _obs.METRICS.counter("determinize.runs").inc()
            _obs.METRICS.histogram("determinize.dfa_states").observe(len(dfa.states))
    return dfa


def _subset_scalar(
    nfa: "_NFA",
    keep_empty: bool,
    budget: Budget | None,
    checkpoint: "SubsetCheckpoint | None",
    order: list[State],
    code: dict[State, int],
    symbols: list[Hashable],
    fanout: int,
    succ: list[list[int]],
    step_tab: list[list[dict[int, int]]],
    nchunks: int,
    initial_mask: int,
    finals_mask: int,
) -> "_DFA":
    """The governed scalar subset loop (see :func:`subset_construction`)."""
    from repro.strings.determinize import SubsetCheckpoint
    from repro.strings.dfa import DFA

    if checkpoint is None:
        seen: set[int] = {initial_mask}
        trans: dict[tuple[int, int], int] = {}
        queue: deque[int] = deque([initial_mask])
        if budget is not None:
            budget.charge_states(1, frontier=1)
    else:
        seen = {_mask_of(subset, code) for subset in checkpoint.states}
        trans = {
            (_mask_of(subset, code), symbols.index(symbol)): _mask_of(target, code)
            for (subset, symbol), target in checkpoint.transitions
        }
        queue = deque(_mask_of(subset, code) for subset in checkpoint.frontier)

    with budget_phase(budget, "determinize"):
        if budget is not None:
            cursor = [initial_mask]

            def snapshot() -> SubsetCheckpoint:
                # Decoded lazily, only at trip time; *cursor* is re-enqueued
                # so resumption recomputes at most |alphabet| idempotent
                # transitions.
                return SubsetCheckpoint(
                    states=frozenset(_unmask(m, order) for m in seen),
                    transitions=tuple(
                        ((_unmask(src, order), symbols[s]), _unmask(dst, order))
                        for (src, s), dst in trans.items()
                    ),
                    frontier=tuple(
                        _unmask(m, order) for m in (cursor[0], *queue)
                    ),
                )

            tick, charge_states = budget.tick, budget.charge_states
            pending = 0
        sym_range = range(fanout)
        while queue:
            mask = queue.popleft()
            if budget is not None:
                cursor[0] = mask
                pending += fanout
                if pending >= _FLUSH:
                    tick(pending, len(queue), snapshot)
                    pending = 0
            for sym_index in sym_range:
                row = succ[sym_index]
                tabs = step_tab[sym_index]
                target = 0
                rest = mask
                chunk_index = 0
                while rest:
                    chunk = rest & 0xFFFF
                    if chunk:
                        table = tabs[chunk_index]
                        part = table.get(chunk)
                        if part is None:
                            stack = []
                            value = chunk
                            while part is None:
                                stack.append(value)
                                value ^= value & -value
                                part = table.get(value)
                            base = chunk_index << 4
                            while stack:
                                value = stack.pop()
                                low = value & -value
                                part |= row[base + low.bit_length() - 1]
                                table[value] = part
                        target |= part
                    rest >>= 16
                    chunk_index += 1
                if not target and not keep_empty:
                    continue
                trans[(mask, sym_index)] = target
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
                    if budget is not None:
                        charge_states(1, len(queue), snapshot)
        if budget is not None and pending:
            budget.tick(pending, 0)

    # API boundary: reconstruct frozenset views.  Chunk-level frozensets
    # are interned and combined with set union, which reuses the stored
    # element hashes instead of rehashing every member of every subset.
    empty: frozenset[Hashable] = frozenset()
    member_tab: list[dict[int, frozenset]] = [{0: empty} for _ in range(nchunks)]
    views: dict[int, frozenset] = {}
    for mask in seen:
        parts = None
        rest = mask
        chunk_index = 0
        while rest:
            chunk = rest & 0xFFFF
            if chunk:
                table = member_tab[chunk_index]
                part = table.get(chunk)
                if part is None:
                    stack = []
                    value = chunk
                    while part is None:
                        stack.append(value)
                        value ^= value & -value
                        part = table.get(value)
                    base = chunk_index << 4
                    while stack:
                        value = stack.pop()
                        low = value & -value
                        part = part | {order[base + low.bit_length() - 1]}
                        table[value] = part
                parts = part if parts is None else parts | part
            rest >>= 16
            chunk_index += 1
        views[mask] = empty if parts is None else parts
    transitions = {
        (views[src], symbols[sym_index]): views[dst]
        for (src, sym_index), dst in trans.items()
    }
    finals = [views[mask] for mask in seen if mask & finals_mask]
    return DFA._from_parts(
        views.values(), nfa.alphabet, transitions, views[initial_mask], finals
    )


# ----------------------------------------------------------------------
# Hopcroft partition refinement
# ----------------------------------------------------------------------

def hopcroft_refine(
    states: Iterable[State],
    alphabet: Iterable[Symbol],
    delta: Mapping[tuple[State, Symbol], State],
    initial_partition: Mapping[State, Hashable],
    *,
    budget: Budget | None = None,
) -> dict[State, int]:
    """Coarsest refinement of *initial_partition* stable under *delta*.

    Same contract as :func:`repro.strings.minimize.moore_partition`
    (*delta* must be total on ``states x alphabet``) but runs Hopcroft's
    O(|delta| log n) "smaller half" worklist on integer-coded states
    instead of the quadratic signature-re-hashing Moore loop.  Block ids
    are normalized to first-occurrence order over *states*, which matches
    the reference implementation's numbering exactly.
    """
    budget = resolve_budget(budget)
    states = list(states)
    alphabet = list(alphabet)
    n = len(states)
    if n == 0:
        return {}
    index = {state: i for i, state in enumerate(states)}

    # Inverse transition index: preds[sym][dst] -> list of srcs (as ints).
    preds: list[list[list[int]]] = [[[] for _ in range(n)] for _ in alphabet]
    for sym_i, symbol in enumerate(alphabet):
        column = preds[sym_i]
        for i, state in enumerate(states):
            column[index[delta[(state, symbol)]]].append(i)

    # Initial blocks, grouped by partition class in first-occurrence order.
    class_ids: dict[Hashable, int] = {}
    block_of = [0] * n
    blocks: list[set[int]] = []
    for i, state in enumerate(states):
        key = initial_partition[state]
        block_id = class_ids.get(key)
        if block_id is None:
            block_id = class_ids[key] = len(blocks)
            blocks.append(set())
        blocks[block_id].add(i)
        block_of[i] = block_id

    # Seed the worklist with every (block, symbol) pair except the largest
    # block per symbol (safe for arbitrary initial partitions).
    worklist: deque[tuple[int, int]] = deque()
    in_worklist: set[tuple[int, int]] = set()
    if len(blocks) > 1:
        largest = max(range(len(blocks)), key=lambda b: len(blocks[b]))
        for block_id in range(len(blocks)):
            if block_id == largest:
                continue
            for sym_i in range(len(alphabet)):
                worklist.append((block_id, sym_i))
                in_worklist.add((block_id, sym_i))

    pending = 0
    with _obs.construction_span(
        "hopcroft-refine", budget=budget, n_states=n, n_symbols=len(alphabet)
    ) as span, budget_phase(budget, "minimize"):
        if budget is not None:
            # One step per state for the initial classification pass, so
            # even refinements that never split charge something (the
            # reference Moore loop always paid at least one round).
            budget.tick(n, frontier=len(blocks))
        while worklist:
            entry = worklist.popleft()
            in_worklist.discard(entry)
            block_id, sym_i = entry
            column = preds[sym_i]
            # States with a sym-transition into the splitter block.
            touched: dict[int, list[int]] = {}
            for dst in blocks[block_id]:
                for src in column[dst]:
                    touched.setdefault(block_of[src], []).append(src)
            if budget is not None:
                pending += len(blocks[block_id]) + sum(
                    len(inside) for inside in touched.values()
                )
                if pending >= _FLUSH:
                    budget.tick(pending, frontier=len(worklist))
                    pending = 0
            for affected_id, inside_list in touched.items():
                block = blocks[affected_id]
                inside = set(inside_list)
                if len(inside) == len(block):
                    continue  # no split
                outside = block - inside
                # Keep the larger part under the old id so stale worklist
                # entries keep denoting a superset of what they named.
                if len(inside) <= len(outside):
                    new_part, old_part = inside, outside
                else:
                    new_part, old_part = outside, inside
                blocks[affected_id] = old_part
                new_id = len(blocks)
                blocks.append(new_part)
                for i in new_part:
                    block_of[i] = new_id
                for s in range(len(alphabet)):
                    if (affected_id, s) in in_worklist:
                        worklist.append((new_id, s))
                        in_worklist.add((new_id, s))
                    else:
                        smaller = new_id if len(new_part) <= len(old_part) else affected_id
                        worklist.append((smaller, s))
                        in_worklist.add((smaller, s))
        if budget is not None and pending:
            budget.tick(pending)
        if span is not None:
            span.annotate(blocks=len(blocks))
        if _obs.ENABLED:
            _obs.METRICS.counter("hopcroft.runs").inc()
            _obs.METRICS.histogram("hopcroft.blocks").observe(len(blocks))

    # Normalize block ids to first-occurrence order over *states* — the
    # numbering the Moore reference loop produces.
    renumber: dict[int, int] = {}
    result: dict[State, int] = {}
    for i, state in enumerate(states):
        block_id = block_of[i]
        if block_id not in renumber:
            renumber[block_id] = len(renumber)
        result[state] = renumber[block_id]
    return result


# ----------------------------------------------------------------------
# On-the-fly product inclusion
# ----------------------------------------------------------------------

def nfa_includes(sup: "_NFA", sub: "_NFA", *, budget: Budget | None = None) -> bool:
    """Decide ``L(sub) subseteq L(sup)`` without materializing either DFA.

    Both automata are determinized *lazily* as int bitmasks and the pair
    space ``(sub_subset, sup_subset)`` is explored breadth-first.  The
    first pair with an accepting ``sub`` component and a rejecting
    ``sup`` component is a counterexample and aborts the search
    immediately — for non-inclusions this typically visits a tiny
    fraction of the product.

    Only *sub*'s symbols are iterated (words of ``L(sub)`` cannot use
    others), so unequal alphabets are handled for free: on a symbol
    unknown to *sup* the sup-component moves to the empty (rejecting)
    subset and the search continues.
    """
    budget = resolve_budget(budget)
    sub_order, sub_code = _code_states(sub.states)
    sup_order, sup_code = _code_states(sup.states)
    symbols = sorted(sub.alphabet, key=repr)
    fanout = len(symbols)

    sub_succ: list[list[int]] = [[0] * len(sub_order) for _ in symbols]
    sup_succ: list[list[int]] = [[0] * len(sup_order) for _ in symbols]
    for sym_i, symbol in enumerate(symbols):
        row = sub_succ[sym_i]
        for state, i in sub_code.items():
            targets = sub.transitions.get((state, symbol))
            if targets:
                row[i] = _mask_of(targets, sub_code)
        row = sup_succ[sym_i]
        for state, i in sup_code.items():
            targets = sup.transitions.get((state, symbol))
            if targets:
                row[i] = _mask_of(targets, sup_code)

    sub_finals = _mask_of(sub.finals, sub_code)
    sup_finals = _mask_of(sup.finals, sup_code)
    initial = (_mask_of(sub.initials, sub_code), _mask_of(sup.initials, sup_code))
    if initial[0] & sub_finals and not initial[1] & sup_finals:
        return False  # the empty word is a counterexample

    seen: set[tuple[int, int]] = {initial}
    queue: deque[tuple[int, int]] = deque([initial])
    pending = 0
    with _obs.construction_span(
        "inclusion", budget=budget
    ) as span, budget_phase(budget, "inclusion"):
        if _obs.ENABLED:
            _obs.METRICS.counter("inclusion.runs").inc()
        if budget is not None:
            budget.charge_states(1, frontier=1)
        while queue:
            sub_mask, sup_mask = queue.popleft()
            if budget is not None:
                pending += fanout
                if pending >= _FLUSH:
                    budget.tick(pending, len(queue))
                    pending = 0
            for sym_i in range(fanout):
                row = sub_succ[sym_i]
                sub_next = 0
                rest = sub_mask
                while rest:
                    low = rest & -rest
                    sub_next |= row[low.bit_length() - 1]
                    rest ^= low
                if not sub_next:
                    continue  # the word died in sub: not a counterexample
                row = sup_succ[sym_i]
                sup_next = 0
                rest = sup_mask
                while rest:
                    low = rest & -rest
                    sup_next |= row[low.bit_length() - 1]
                    rest ^= low
                if sub_next & sub_finals and not sup_next & sup_finals:
                    if budget is not None and pending:
                        budget.tick(pending, len(queue))
                    if span is not None:
                        span.annotate(included=False, pairs=len(seen))
                    return False  # early exit on the first counterexample
                pair = (sub_next, sup_next)
                if pair not in seen:
                    seen.add(pair)
                    queue.append(pair)
                    if budget is not None:
                        budget.charge_states(1, len(queue))
        if budget is not None and pending:
            budget.tick(pending, 0)
        if span is not None:
            span.annotate(included=True, pairs=len(seen))
    return True


# ----------------------------------------------------------------------
# Structural-hash memo cache
# ----------------------------------------------------------------------

class _KernelCache:
    """A bounded insertion-ordered memo cache with hit/miss counters.

    Values are ``(payload, states_cost, steps_cost)`` triples; the costs
    are what the original construction charged its budget, replayed on
    every hit so governed runs stay count-deterministic (see
    :func:`cached_min_dfa`).
    """

    __slots__ = ("name", "entries", "hits", "misses", "max_entries")

    def __init__(self, name: str, max_entries: int = 4096) -> None:
        self.name = name
        self.entries: dict[Any, tuple[Any, int, int]] = {}
        self.hits = 0
        self.misses = 0
        self.max_entries = max_entries

    def get(self, key: Any) -> tuple[Any, int, int] | None:
        entry = self.entries.get(key)
        if entry is not None:
            self.hits += 1
            if _obs.ENABLED:
                _obs.METRICS.counter(f"cache.{self.name}.hits").inc()
        else:
            self.misses += 1
            if _obs.ENABLED:
                _obs.METRICS.counter(f"cache.{self.name}.misses").inc()
        return entry

    def store(self, key: Any, value: tuple[Any, int, int]) -> None:
        if len(self.entries) >= self.max_entries:
            # Evict the oldest entry (dicts preserve insertion order).
            self.entries.pop(next(iter(self.entries)))
        self.entries[key] = value

    def clear(self) -> None:
        self.entries.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, dict[str, int]]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.entries),
            "max_entries": self.max_entries,
        }


_MIN_DFA_CACHE = _KernelCache("min_dfa")
_CONTENT_CACHE = _KernelCache("content_model")


def _kernel_cache_totals() -> tuple[int, int]:
    return (
        _MIN_DFA_CACHE.hits + _CONTENT_CACHE.hits,
        _MIN_DFA_CACHE.misses + _CONTENT_CACHE.misses,
    )


_obs.register_cache_provider(_kernel_cache_totals)


def cache_stats() -> dict[str, dict]:
    """Hit/miss/entry counters of every kernel cache, keyed by name."""
    return {
        cache.name: cache.stats() for cache in (_MIN_DFA_CACHE, _CONTENT_CACHE)
    }


def clear_caches() -> None:
    """Drop all kernel cache entries and reset the counters."""
    _MIN_DFA_CACHE.clear()
    _CONTENT_CACHE.clear()


def canonical_repr(value: object) -> str:
    """``repr`` made stable across processes and pickle round-trips.

    Plain ``repr`` of a frozenset (or of a tuple containing one — the
    constructions' subset-typed symbols) follows hash-table iteration
    order, which varies with hash randomization and with how an equal set
    was rebuilt by ``pickle``.  Anything feeding a cache key or a
    canonical ordering must render set elements sorted instead.
    """
    if isinstance(value, (frozenset, set)):
        return "{" + ",".join(sorted(canonical_repr(v) for v in value)) + "}"
    if isinstance(value, tuple):
        return "(" + ",".join(canonical_repr(v) for v in value) + ")"
    if isinstance(value, list):
        return "[" + ",".join(canonical_repr(v) for v in value) + "]"
    return repr(value)


def _symbol_reprs(alphabet: Iterable[Hashable]) -> tuple[str, ...] | None:
    """Sorted canonical symbol reprs, or None when they collide
    (uncacheable — canonical repr is the only portable total order over
    mixed symbol types, and a collision would let two distinct automata
    share a key)."""
    reprs = sorted(canonical_repr(symbol) for symbol in alphabet)
    for left, right in zip(reprs, reprs[1:]):
        if left == right:
            return None
    return tuple(reprs)


def structural_key(language: object) -> tuple[Any, ...] | None:
    """A hashable structural fingerprint of a language-like value.

    Equal keys imply isomorphic automata (hence equal minimal DFAs);
    distinct-but-isomorphic inputs may miss — the cache trades recall for
    soundness.  Returns None for uncacheable inputs.
    """
    from repro.strings.dfa import DFA
    from repro.strings.nfa import NFA
    from repro.strings.regex import Regex

    if isinstance(language, str):
        return ("re", language)
    if isinstance(language, Regex):
        return ("regex", language)
    if isinstance(language, DFA):
        alphabet_key = _symbol_reprs(language.alphabet)
        if alphabet_key is None:
            return None
        # Canonical BFS order over the reachable part (unreachable states
        # cannot change the minimal DFA).
        symbols = sorted(language.alphabet, key=canonical_repr)
        order: dict[Hashable, int] = {language.initial: 0}
        queue = deque([language.initial])
        edges: list[tuple[int, str, int]] = []
        while queue:  # ungoverned: linear BFS for a cache key over a materialized DFA
            state = queue.popleft()
            src = order[state]
            for symbol in symbols:
                dst = language.transitions.get((state, symbol))
                if dst is None:
                    continue
                if dst not in order:
                    order[dst] = len(order)
                    queue.append(dst)
                edges.append((src, canonical_repr(symbol), order[dst]))
        finals = tuple(sorted(order[q] for q in language.finals if q in order))
        return ("dfa", alphabet_key, len(order), tuple(edges), finals)
    if isinstance(language, NFA):
        alphabet_key = _symbol_reprs(language.alphabet)
        if alphabet_key is None:
            return None
        order, code = _code_states(language.states)
        edges = tuple(
            sorted(
                (code[src], canonical_repr(symbol), _mask_of(dsts, code))
                for (src, symbol), dsts in language.transitions.items()
            )
        )
        return (
            "nfa",
            alphabet_key,
            len(order),
            edges,
            _mask_of(language.initials, code),
            _mask_of(language.finals, code),
        )
    return None


def _recharge(budget: Budget | None, states_cost: int, steps_cost: int) -> None:
    """Replay a cached construction's recorded cost against *budget*.

    This is what keeps governance deterministic across warm and cold
    caches: a budget too small for the construction is also too small
    for the cache hit, and trips at the same counters.
    """
    if budget is None:
        return
    if states_cost:
        budget.charge_states(states_cost)
    extra = steps_cost - states_cost
    if extra > 0:
        budget.tick(extra)


def _memoized(
    cache: _KernelCache,
    key: Any,
    build: Callable[[Budget | None], Any],
    budget: Budget | None,
) -> Any:
    """Look *key* up in *cache*; on a miss run *build* under a metering
    budget and record the charged cost alongside the result.

    Two tiers: the in-process memo dict, then — when a persistent store
    is configured (:func:`repro.cache.resolve_cache`) — the on-disk
    artifact cache, addressed by ``artifact_digest(cache.name, key)``.
    Disk hits replay their recorded budget cost exactly like memo hits
    and re-populate the memo tier; fresh builds write through to disk.
    """
    if key is None:
        return build(budget)
    entry = cache.get(key)
    if entry is not None:
        value, states_cost, steps_cost = entry
        _recharge(budget, states_cost, steps_cost)
        return value
    from repro.cache import artifact_digest, resolve_cache

    disk = resolve_cache()
    digest = artifact_digest(cache.name, key) if disk is not None else None
    if disk is not None and digest is not None:
        loaded = disk.get(digest)
        if loaded is not None:
            value, states_cost, steps_cost = loaded
            _recharge(budget, states_cost, steps_cost)
            cache.store(key, (value, states_cost, steps_cost))
            return value
    if budget is not None:
        states_before, steps_before = budget.states, budget.steps
        value = build(budget)
        cost = (budget.states - states_before, budget.steps - steps_before)
    else:
        meter = Budget()  # unlimited, but it still counts
        value = build(meter)
        cost = (meter.states, meter.steps)
    cache.store(key, (value, *cost))
    if disk is not None and digest is not None:
        disk.put(digest, value, *cost)
    return value


# repro-par: shardable
def cached_min_dfa(language: object, *, budget: Budget | None = None) -> "_DFA":
    """Memoized ``as_min_dfa``: coerce *language* to its minimal trim DFA,
    interning structurally-equal inputs.

    The returned DFA is shared between callers — treat it as immutable
    (every operation in this library already copies).  Hits replay the
    recorded budget cost (see :func:`_recharge`).
    """
    from repro.strings.determinize import determinize
    from repro.strings.dfa import DFA
    from repro.strings.minimize import minimize_dfa
    from repro.strings.ops import as_nfa

    budget = resolve_budget(budget)

    def build(inner_budget: Budget | None) -> "_DFA":
        if isinstance(language, DFA):
            return minimize_dfa(language, budget=inner_budget)
        return minimize_dfa(
            determinize(as_nfa(language), budget=inner_budget), budget=inner_budget
        )

    return _memoized(_MIN_DFA_CACHE, structural_key(language), build, budget)


# repro-par: shardable
def cached_content_model(
    language: object, types: frozenset[Hashable], *, budget: Budget | None = None
) -> "_DFA":
    """Memoized EDTD content-model pipeline: minimal DFA completed over
    *types* and trimmed (what :class:`repro.schemas.edtd.EDTD` stores per
    type).

    Keyed by ``(structural fingerprint, type set)``; the biggest wins are
    the leaf content model ``"~"`` (re-minted for every leaf type of
    every constructed schema) and retagged content models shared across
    product constructions.  Raises :class:`repro.errors.SchemaError` when
    the content model mentions symbols outside *types* (never cached).
    """
    from repro.errors import SchemaError

    budget = resolve_budget(budget)
    types_key = _symbol_reprs(types)
    language_key = structural_key(language)
    key = None
    if types_key is not None and language_key is not None:
        key = (language_key, types_key)

    def build(inner_budget: Budget | None) -> "_DFA":
        dfa = cached_min_dfa(language, budget=inner_budget)
        if not dfa.alphabet <= types:
            raise SchemaError(
                f"content model uses unknown types: "
                f"{set(dfa.alphabet) - set(types)!r}"
            )
        return dfa.completed(types).trim()

    return _memoized(_CONTENT_CACHE, key, build, budget)
