"""DFA minimization and Moore-machine minimization by partition refinement.

Two flavours are provided:

* :func:`minimize_dfa` — the classical minimal DFA for a regular language.
  The paper's size measures assume content models are given as minimal DFAs
  (Section 2.2), so every schema constructor funnels content models through
  this function.

* :func:`moore_partition` — partition refinement of a deterministic
  transition structure with an arbitrary initial partition ("outputs").
  This is the engine behind single-type EDTD minimization (the paper's
  reference [20]): a DFA-based XSD is a Moore machine mapping ancestor
  strings to content models, and merging Moore-equivalent states yields the
  type-minimal XSD.

Since PR 2 the refinement engine is Hopcroft's O(n log n) "smaller half"
worklist on integer-coded states
(:func:`repro.strings.kernels.hopcroft_refine`); the original quadratic
signature-re-hashing loop is kept as :func:`moore_partition_reference`
for differential testing.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.strings.dfa import DFA

State = Hashable
Symbol = Hashable


def moore_partition(
    states: Iterable[State],
    alphabet: Iterable[Symbol],
    delta: Mapping[tuple[State, Symbol], State],
    initial_partition: Mapping[State, Hashable],
    *,
    budget: Budget | None = None,
) -> dict[State, int]:
    """Coarsest refinement of *initial_partition* stable under *delta*.

    *delta* must be total on ``states x alphabet``.  Returns a mapping from
    each state to its block index; two states get the same index iff they are
    Moore-equivalent (same output class now and after every input word).
    Block indices are assigned in first-occurrence order over *states*.

    Runs Hopcroft's O(|delta| log n) refinement
    (:func:`repro.strings.kernels.hopcroft_refine`).  Polynomial, but its
    inputs can be exponentially large outputs of the subset construction,
    so the refinement work is governed (steps charged per predecessor
    scanned, flushed in batches).
    """
    from repro.strings.kernels import hopcroft_refine

    return hopcroft_refine(
        states, alphabet, delta, initial_partition, budget=budget
    )


def moore_partition_reference(
    states: Iterable[State],
    alphabet: Iterable[Symbol],
    delta: Mapping[tuple[State, Symbol], State],
    initial_partition: Mapping[State, Hashable],
    *,
    budget: Budget | None = None,
) -> dict[State, int]:
    """Quadratic Moore refinement loop — the pre-kernel implementation,
    kept as the differential-testing oracle for
    :func:`repro.strings.kernels.hopcroft_refine`.

    One step is charged per state signature per round.
    """
    budget = resolve_budget(budget)
    states = list(states)
    alphabet = list(alphabet)
    # Block ids: normalize initial partition to consecutive ints.
    classes: dict[Hashable, int] = {}
    block_of: dict[State, int] = {}
    for state in states:
        key = initial_partition[state]
        if key not in classes:
            classes[key] = len(classes)
        block_of[state] = classes[key]

    changed = True
    while changed:
        changed = False
        if budget is not None:
            with budget_phase(budget, "minimize"):
                budget.tick(len(states), frontier=len(set(block_of.values())))
        signature: dict[State, tuple] = {}
        for state in states:
            signature[state] = (
                block_of[state],
                tuple(block_of[delta[(state, symbol)]] for symbol in alphabet),
            )
        new_ids: dict[tuple, int] = {}
        new_block_of: dict[State, int] = {}
        for state in states:
            sig = signature[state]
            if sig not in new_ids:
                new_ids[sig] = len(new_ids)
            new_block_of[state] = new_ids[sig]
        if len(new_ids) != len(set(block_of.values())):
            changed = True
        block_of = new_block_of
    return block_of


def minimize_dfa(
    dfa: DFA, *, complete: bool = False, budget: Budget | None = None
) -> DFA:
    """Return the minimal DFA for ``L(dfa)``.

    By default the result is *trim* (no dead/sink state), which is the
    representation the paper's size bounds are stated for; pass
    ``complete=True`` to keep the completion sink.

    The states of the result are canonical integers ``"m0".."mN"`` assigned
    in BFS order, so two calls on language-equal inputs over the same
    alphabet return isomorphic (in fact identical up to dict ordering)
    automata — :meth:`DFA.isomorphic_to` then decides language equality.
    """
    # Work on the reachable, completed automaton.
    reachable = dfa.reachable_states()
    restricted = DFA(
        reachable,
        dfa.alphabet,
        {
            (src, sym): dst
            for (src, sym), dst in dfa.transitions.items()
            if src in reachable and dst in reachable
        },
        dfa.initial,
        dfa.finals & reachable,
    )
    total = restricted.completed()
    partition = moore_partition(
        total.states,
        total.alphabet,
        total.transitions,
        {state: (state in total.finals) for state in total.states},
        budget=budget,
    )
    block_states = set(partition.values())
    transitions = {
        (partition[src], sym): partition[dst]
        for (src, sym), dst in total.transitions.items()
    }
    merged = DFA(
        block_states,
        total.alphabet,
        transitions,
        partition[total.initial],
        {partition[q] for q in total.finals},
    )
    if not complete:
        merged = merged.trim()
    return merged.relabel("m")


def minimal_dfa_equal(left: DFA, right: DFA) -> bool:
    """Decide ``L(left) == L(right)`` by comparing minimal DFAs.

    Both automata are minimized over the union of their alphabets, then
    compared up to isomorphism.
    """
    alphabet = left.alphabet | right.alphabet
    lmin = minimize_dfa(left.completed(alphabet), complete=True)
    rmin = minimize_dfa(right.completed(alphabet), complete=True)
    return lmin.isomorphic_to(rmin)
