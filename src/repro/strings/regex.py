"""Regular expressions per the paper's grammar (Section 2.1).

The AST mirrors the grammar

    r ::= emptyset | epsilon | a | r . r | r + r | (r)* | (r)+ | (r)?

The concrete syntax accepted by :func:`parse` follows XML DTD content-model
conventions (which avoid the ambiguity between the paper's infix union ``+``
and postfix one-or-more ``+``):

* ``|``   — union (the paper's infix ``+``)
* ``,``   — concatenation (juxtaposition also works: ``a b`` == ``a, b``)
* ``*``   — Kleene star (postfix)
* ``+``   — one-or-more (postfix)
* ``?``   — optional (postfix)
* ``~``   — the empty word epsilon
* ``#``   — the empty language
* symbols — identifiers matching ``[A-Za-z_][A-Za-z0-9_]*``

Examples: ``"(a | b)* , c"``, ``"store, item+"``, ``"~ | a, a"``.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass
from functools import reduce

from repro.errors import RegexSyntaxError


class Regex:
    """Base class of regular-expression AST nodes.

    Nodes are immutable and hashable.  Combinators are available both as
    functions of this module and as operators:

    * ``r1 | r2`` — union
    * ``r1 + r2`` — concatenation
    * ``r.star()``, ``r.plus()``, ``r.opt()`` — postfix operators
    """

    def __or__(self, other: "Regex") -> "Regex":
        return union(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return concat(self, other)

    def star(self) -> "Regex":
        return Star(self)

    def plus(self) -> "Regex":
        return Plus(self)

    def opt(self) -> "Regex":
        return Opt(self)

    # -- Structural queries -------------------------------------------------

    def nullable(self) -> bool:
        """True iff the empty word is in ``L(r)``."""
        raise NotImplementedError

    def symbols(self) -> frozenset[Hashable]:
        """The set of alphabet symbols occurring in the expression."""
        raise NotImplementedError

    def rpn_size(self) -> int:
        """Number of AST nodes (a standard expression-size measure)."""
        raise NotImplementedError

    def denotes_empty_language(self) -> bool:
        """True iff ``L(r)`` is the empty language (syntactic check)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language (the paper's ∅)."""

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[Hashable]:
        return frozenset()

    def rpn_size(self) -> int:
        return 1

    def denotes_empty_language(self) -> bool:
        return True

    def __str__(self) -> str:
        return "#"


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty word."""

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[Hashable]:
        return frozenset()

    def rpn_size(self) -> int:
        return 1

    def denotes_empty_language(self) -> bool:
        return False

    def __str__(self) -> str:
        return "~"


@dataclass(frozen=True)
class Sym(Regex):
    """A single alphabet symbol."""

    symbol: object

    def nullable(self) -> bool:
        return False

    def symbols(self) -> frozenset[Hashable]:
        return frozenset([self.symbol])

    def rpn_size(self) -> int:
        return 1

    def denotes_empty_language(self) -> bool:
        return False

    def __str__(self) -> str:
        return str(self.symbol)


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation ``left . right``."""

    left: Regex
    right: Regex

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def symbols(self) -> frozenset[Hashable]:
        return self.left.symbols() | self.right.symbols()

    def rpn_size(self) -> int:
        return 1 + self.left.rpn_size() + self.right.rpn_size()

    def denotes_empty_language(self) -> bool:
        return self.left.denotes_empty_language() or self.right.denotes_empty_language()

    def __str__(self) -> str:
        parts = []
        for child in (self.left, self.right):
            text = str(child)
            if isinstance(child, Union):
                text = f"({text})"
            parts.append(text)
        return ", ".join(parts)


@dataclass(frozen=True)
class Union(Regex):
    """Union ``left + right`` (written ``|`` in the concrete syntax)."""

    left: Regex
    right: Regex

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def symbols(self) -> frozenset[Hashable]:
        return self.left.symbols() | self.right.symbols()

    def rpn_size(self) -> int:
        return 1 + self.left.rpn_size() + self.right.rpn_size()

    def denotes_empty_language(self) -> bool:
        return self.left.denotes_empty_language() and self.right.denotes_empty_language()

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


def _unary_str(child: Regex, op: str) -> str:
    text = str(child)
    if isinstance(child, (Union, Concat)):
        text = f"({text})"
    return text + op


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure ``(r)*``."""

    child: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[Hashable]:
        return self.child.symbols()

    def rpn_size(self) -> int:
        return 1 + self.child.rpn_size()

    def denotes_empty_language(self) -> bool:
        return False

    def __str__(self) -> str:
        return _unary_str(self.child, "*")


@dataclass(frozen=True)
class Plus(Regex):
    """One-or-more ``(r)+``."""

    child: Regex

    def nullable(self) -> bool:
        return self.child.nullable()

    def symbols(self) -> frozenset[Hashable]:
        return self.child.symbols()

    def rpn_size(self) -> int:
        return 1 + self.child.rpn_size()

    def denotes_empty_language(self) -> bool:
        return self.child.denotes_empty_language()

    def __str__(self) -> str:
        return _unary_str(self.child, "+")


@dataclass(frozen=True)
class Opt(Regex):
    """Optional ``(r)?``."""

    child: Regex

    def nullable(self) -> bool:
        return True

    def symbols(self) -> frozenset[Hashable]:
        return self.child.symbols()

    def rpn_size(self) -> int:
        return 1 + self.child.rpn_size()

    def denotes_empty_language(self) -> bool:
        return False

    def __str__(self) -> str:
        return _unary_str(self.child, "?")


# ----------------------------------------------------------------------
# Smart constructors
# ----------------------------------------------------------------------

EMPTY = Empty()
EPSILON = Epsilon()


def sym(symbol: object) -> Sym:
    """Wrap a raw symbol into a :class:`Sym` node."""
    return Sym(symbol)


def concat(*parts: Regex) -> Regex:
    """Concatenation of *parts* (with the obvious ∅/ε simplifications)."""
    if not parts:
        return EPSILON

    def combine(left: Regex, right: Regex) -> Regex:
        if isinstance(left, Empty) or isinstance(right, Empty):
            return EMPTY
        if isinstance(left, Epsilon):
            return right
        if isinstance(right, Epsilon):
            return left
        return Concat(left, right)

    return reduce(combine, parts)


def union(*parts: Regex) -> Regex:
    """Union of *parts* (with the obvious ∅ simplifications)."""
    if not parts:
        return EMPTY

    def combine(left: Regex, right: Regex) -> Regex:
        if isinstance(left, Empty):
            return right
        if isinstance(right, Empty):
            return left
        if left == right:
            return left
        return Union(left, right)

    return reduce(combine, parts)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_TOKEN_RE = _re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_]*)|(?P<op>[|,*+?()~#]))"
)


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise RegexSyntaxError(f"unexpected character at {pos}: {remainder[0]!r}")
        tokens.append(match.group("ident") or match.group("op"))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the concrete syntax documented above."""

    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> str:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def parse(self) -> Regex:
        expr = self._union()
        if self._peek() is not None:
            raise RegexSyntaxError(f"trailing input at token {self._peek()!r}")
        return expr

    def _union(self) -> Regex:
        parts = [self._concat()]
        while self._peek() == "|":
            self._advance()
            parts.append(self._concat())
        return union(*parts)

    def _concat(self) -> Regex:
        parts = [self._postfix()]
        while True:  # ungoverned: consumes one token per pass, bounded by input length
            token = self._peek()
            if token == ",":
                self._advance()
                parts.append(self._postfix())
            elif token is not None and (token == "(" or token in "~#" or token[0].isalpha() or token[0] == "_"):
                parts.append(self._postfix())
            else:
                break
        return concat(*parts)

    def _postfix(self) -> Regex:
        expr = self._atom()
        while self._peek() in ("*", "+", "?"):
            op = self._advance()
            if op == "*":
                expr = Star(expr)
            elif op == "+":
                expr = Plus(expr)
            else:
                expr = Opt(expr)
        return expr

    def _atom(self) -> Regex:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of expression")
        if token == "(":
            self._advance()
            expr = self._union()
            if self._peek() != ")":
                raise RegexSyntaxError("missing closing parenthesis")
            self._advance()
            return expr
        if token == "~":
            self._advance()
            return EPSILON
        if token == "#":
            self._advance()
            return EMPTY
        if token[0].isalpha() or token[0] == "_":
            self._advance()
            return Sym(token)
        raise RegexSyntaxError(f"unexpected token {token!r}")


def parse(text: str) -> Regex:
    """Parse the concrete syntax into a :class:`Regex` AST."""
    return _Parser(_tokenize(text)).parse()
