"""Subset construction: NFA -> DFA.

Construction 3.1 of the paper hinges on exactly this operation applied to
type automata, so the implementation exposes the raw subset states (frozen
sets of NFA states) — the approximation constructions need to inspect which
EDTD types were merged into each subset state.

This is the canonical worst-case-exponential loop of the library
(``2^n`` reachable subsets — :func:`repro.families.hard.theorem_3_2_family`
triggers it on purpose), so it is fully governed: pass ``budget=`` or run
inside ``with Budget(...):`` and the BFS charges one state per subset
materialized and one step per transition computed.  On exhaustion the
raised :class:`repro.errors.BudgetExceededError` carries a
:class:`SubsetCheckpoint` from which a later call can *resume* the
construction instead of restarting it.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AutomatonError
from repro.runtime.budget import Budget, budget_phase, resolve_budget
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from repro.strings.schema_guided import SchemaGuidedCheckpoint

#: Batch size (in steps) for flushing locally-accumulated tick charges;
#: bounds how stale the step counter may run during the hot loop.
_FLUSH = 256


@dataclass(frozen=True)
class SubsetCheckpoint:
    """Resumable snapshot of a partially-run subset construction.

    Captures the explored subset states, the transitions discovered so
    far, and the BFS frontier.  Opaque to callers: obtain one from
    ``BudgetExceededError.checkpoint`` and pass it back via
    ``determinize(..., checkpoint=...)`` (with the *same* NFA and
    ``keep_empty`` flag) to continue where the budget tripped.
    """

    states: frozenset[frozenset[Hashable]]
    transitions: tuple[tuple[tuple[frozenset[Hashable], Hashable], frozenset[Hashable]], ...]
    frontier: tuple[frozenset[Hashable], ...]

    @property
    def states_explored(self) -> int:
        return len(self.states)

    @property
    def frontier_size(self) -> int:
        return len(self.frontier)


def determinize(
    nfa: NFA,
    *,
    keep_empty: bool = False,
    budget: Budget | None = None,
    checkpoint: "SubsetCheckpoint | SchemaGuidedCheckpoint | None" = None,
    strategy: str = "blind",
    guide: DFA | None = None,
) -> DFA:
    """Return a DFA equivalent to *nfa* via the standard subset construction.

    States of the result are frozensets of NFA states.  Only subsets
    reachable from the initial subset are constructed.  By default the empty
    subset (dead state) is omitted, yielding a partial DFA; pass
    ``keep_empty=True`` to keep it (producing a complete DFA).

    *budget* (or the ambient ``with Budget(...):`` default) bounds the
    construction; *checkpoint* resumes a previous budget-interrupted run —
    checkpoints are interchangeable between this function and
    :func:`determinize_reference` (same frozenset format, same charge
    sequence).

    *strategy* selects the kernel: ``"blind"`` (the default) explores
    every reachable subset; ``"schema-guided"`` prunes the BFS with a
    *guide* DFA (:mod:`repro.strings.schema_guided`) so subsets
    unreachable under the guiding schema are never materialized.  With
    ``guide=None`` the guided kernel uses the universal guide and
    reproduces the blind construction state-for-state.  Guided runs
    checkpoint with :class:`~repro.strings.schema_guided.SchemaGuidedCheckpoint`
    (same observable contract).

    Since PR 2 the BFS runs on the integer-coded bitmask kernel
    (:func:`repro.strings.kernels.subset_construction`); subset states
    are interned int masks and the frozenset views are reconstructed only
    at this API boundary.
    """
    if strategy == "blind":
        if guide is not None:
            raise AutomatonError(
                "guide= requires strategy='schema-guided' (got strategy='blind')"
            )
        from repro.strings.kernels import subset_construction

        if checkpoint is not None and not isinstance(checkpoint, SubsetCheckpoint):
            raise AutomatonError(
                "strategy='blind' resumes from SubsetCheckpoint, "
                f"not {type(checkpoint).__name__}"
            )
        return subset_construction(
            nfa, keep_empty=keep_empty, budget=budget, checkpoint=checkpoint
        )
    if strategy == "schema-guided":
        from repro.strings.schema_guided import (
            SchemaGuidedCheckpoint,
            guided_subset_construction,
            universal_guide,
        )

        if checkpoint is not None and not isinstance(
            checkpoint, SchemaGuidedCheckpoint
        ):
            raise AutomatonError(
                "strategy='schema-guided' resumes from SchemaGuidedCheckpoint, "
                f"not {type(checkpoint).__name__}"
            )
        if guide is None:
            guide = universal_guide(nfa.alphabet)
        return guided_subset_construction(
            nfa, guide, keep_empty=keep_empty, budget=budget, checkpoint=checkpoint
        )
    raise AutomatonError(
        f"unknown determinization strategy {strategy!r} "
        "(expected 'blind' or 'schema-guided')"
    )


def determinize_reference(
    nfa: NFA,
    *,
    keep_empty: bool = False,
    budget: Budget | None = None,
    checkpoint: SubsetCheckpoint | None = None,
) -> DFA:
    """Frozenset-based subset construction — the pre-kernel implementation,
    kept as the differential-testing oracle for
    :func:`repro.strings.kernels.subset_construction`."""
    budget = resolve_budget(budget)
    initial = nfa.initials
    if checkpoint is None:
        states: set[frozenset] = {initial}
        transitions: dict[tuple[frozenset, object], frozenset] = {}
        queue: deque[frozenset] = deque([initial])
        if budget is not None:
            budget.charge_states(1, frontier=1)
    else:
        states = set(checkpoint.states)
        transitions = dict(checkpoint.transitions)
        queue = deque(checkpoint.frontier)
    with budget_phase(budget, "determinize"):
        fanout = len(nfa.alphabet)
        if budget is not None:
            # Governed-loop overhead discipline: one shared lazy snapshot
            # closure (a cursor cell tracks the subset being expanded, so
            # no per-iteration allocation), pre-bound charge methods, and
            # step charges accumulated locally and flushed in batches —
            # the hot loop pays one charge_states per *new* subset and a
            # tick only every ~_FLUSH steps.  Totals are unchanged: the
            # tail flush lands after the loop.
            cursor = [initial]
            snapshot = lambda: _snapshot(states, transitions, queue, cursor[0])
            tick, charge_states = budget.tick, budget.charge_states
            pending = 0
        while queue:
            subset = queue.popleft()
            if budget is not None:
                cursor[0] = subset
                pending += fanout
                if pending >= _FLUSH:
                    tick(pending, len(queue), snapshot)
                    pending = 0
            for symbol in nfa.alphabet:
                target = nfa.step(subset, symbol)
                if not target and not keep_empty:
                    continue
                transitions[(subset, symbol)] = target
                if target not in states:
                    states.add(target)
                    queue.append(target)
                    if budget is not None:
                        charge_states(1, len(queue), snapshot)
        if budget is not None and pending:
            budget.tick(pending, 0)
    finals = {subset for subset in states if subset & nfa.finals}
    return DFA(states, nfa.alphabet, transitions, initial, finals)


def _snapshot(
    states: set[frozenset[Hashable]],
    transitions: dict[tuple[frozenset[Hashable], Hashable], frozenset[Hashable]],
    queue: deque,
    current: frozenset[Hashable],
) -> SubsetCheckpoint:
    """Checkpoint the BFS with *current* re-enqueued for a clean resume.

    Re-processing *current* from scratch recomputes at most ``|alphabet|``
    transitions — all idempotent — so resumption never loses or
    duplicates states.
    """
    return SubsetCheckpoint(
        states=frozenset(states),
        transitions=tuple(transitions.items()),
        frontier=(current, *queue),
    )
