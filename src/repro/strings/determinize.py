"""Subset construction: NFA -> DFA.

Construction 3.1 of the paper hinges on exactly this operation applied to
type automata, so the implementation exposes the raw subset states (frozen
sets of NFA states) — the approximation constructions need to inspect which
EDTD types were merged into each subset state.
"""

from __future__ import annotations

from collections import deque

from repro.strings.dfa import DFA
from repro.strings.nfa import NFA


def determinize(nfa: NFA, *, keep_empty: bool = False) -> DFA:
    """Return a DFA equivalent to *nfa* via the standard subset construction.

    States of the result are frozensets of NFA states.  Only subsets
    reachable from the initial subset are constructed.  By default the empty
    subset (dead state) is omitted, yielding a partial DFA; pass
    ``keep_empty=True`` to keep it (producing a complete DFA).
    """
    initial = nfa.initials
    states: set[frozenset] = {initial}
    transitions: dict[tuple[frozenset, object], frozenset] = {}
    queue: deque[frozenset] = deque([initial])
    while queue:
        subset = queue.popleft()
        for symbol in nfa.alphabet:
            target = nfa.step(subset, symbol)
            if not target and not keep_empty:
                continue
            transitions[(subset, symbol)] = target
            if target not in states:
                states.add(target)
                queue.append(target)
    finals = {subset for subset in states if subset & nfa.finals}
    return DFA(states, nfa.alphabet, transitions, initial, finals)
