"""Language-level operations and coercions on regular string languages.

This module is the public face of the string substrate.  Most schema-level
code works with "language-like" values — a :class:`~repro.strings.dfa.DFA`,
an :class:`~repro.strings.nfa.NFA`, a :class:`~repro.strings.regex.Regex`,
or a string in the concrete regex syntax — and coerces them through
:func:`as_min_dfa` (the paper's canonical content-model representation).
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Iterator, Sequence

from repro.errors import AutomatonError
from repro.strings.determinize import determinize
from repro.strings.dfa import DFA
from repro.strings.glushkov import glushkov_nfa
from repro.strings.nfa import NFA
from repro.strings.regex import Regex, parse

Symbol = Hashable
LanguageLike = "DFA | NFA | Regex | str"


# ----------------------------------------------------------------------
# Coercions
# ----------------------------------------------------------------------

def as_nfa(language: DFA | NFA | Regex | str) -> NFA:
    """Coerce *language* to an NFA."""
    if isinstance(language, NFA):
        return language
    if isinstance(language, DFA):
        return language.to_nfa()
    if isinstance(language, str):
        language = parse(language)
    if isinstance(language, Regex):
        return glushkov_nfa(language)
    raise TypeError(f"cannot interpret {language!r} as a regular language")


def as_dfa(language: DFA | NFA | Regex | str) -> DFA:
    """Coerce *language* to a DFA (not necessarily minimal)."""
    if isinstance(language, DFA):
        return language
    return determinize(as_nfa(language))


def as_min_dfa(language: DFA | NFA | Regex | str) -> DFA:
    """Coerce *language* to the minimal (trim) DFA — the paper's canonical
    content-model representation (Section 2.2).

    Memoized through :func:`repro.strings.kernels.cached_min_dfa`:
    structurally-equal inputs return the *same* (interned, treat as
    immutable) DFA object, and cache hits recharge the ambient budget
    with the recorded construction cost.
    """
    from repro.strings.kernels import cached_min_dfa

    return cached_min_dfa(language)


# ----------------------------------------------------------------------
# Decision procedures
# ----------------------------------------------------------------------

def is_empty(language: DFA | NFA | Regex | str) -> bool:
    """True iff the language contains no word."""
    nfa = as_nfa(language)
    return nfa.is_empty_language()


def is_universal(language: DFA | NFA | Regex | str, alphabet: Iterable[Symbol]) -> bool:
    """True iff the language equals ``Sigma*`` over *alphabet*."""
    alphabet = frozenset(alphabet)
    sink = "__universal__"
    sigma_star = DFA(
        {sink},
        alphabet,
        {(sink, symbol): sink for symbol in alphabet},
        sink,
        {sink},
    )
    return includes(language, sigma_star)


def includes(
    sup: DFA | NFA | Regex | str,
    sub: DFA | NFA | Regex | str,
) -> bool:
    """True iff ``L(sub)`` is a subset of ``L(sup)``.

    Decided on the fly (:func:`repro.strings.kernels.nfa_includes`): the
    product of the two lazily-determinized automata is explored BFS and
    the search aborts on the first counterexample instead of
    materializing the full difference automaton.
    """
    from repro.strings.kernels import nfa_includes

    return nfa_includes(as_nfa(sup), as_nfa(sub))


def equivalent(
    left: DFA | NFA | Regex | str,
    right: DFA | NFA | Regex | str,
) -> bool:
    """True iff both languages are equal.

    Two on-the-fly inclusion passes with early exit (not
    minimize-both-and-compare), so unequal languages are usually refuted
    after exploring only a short counterexample prefix.  Unequal
    alphabets are fine: symbols missing from one side simply send its
    lazy subset to the rejecting empty set.
    """
    return includes(left, right) and includes(right, left)


# ----------------------------------------------------------------------
# Enumeration / counting / sampling
# ----------------------------------------------------------------------

def enumerate_words(
    language: DFA | NFA | Regex | str,
    max_length: int,
) -> Iterator[tuple[Symbol, ...]]:
    """Yield all words of the language with length <= *max_length*.

    Words are produced in shortlex order (shorter first, then by the sorted
    order of symbol reprs).  The generator explores the DFA breadth-first and
    is linear in the number of produced prefixes, so it is safe on automata
    whose languages are infinite.
    """
    dfa = as_dfa(language)
    symbols = sorted(dfa.alphabet, key=repr)
    frontier: list[tuple[tuple[Symbol, ...], object]] = [((), dfa.initial)]
    for _ in range(max_length + 1):
        next_frontier: list[tuple[tuple[Symbol, ...], object]] = []
        for word, state in frontier:
            if state in dfa.finals:
                yield word
            for symbol in symbols:
                dst = dfa.successor(state, symbol)
                if dst is not None:
                    next_frontier.append((word + (symbol,), dst))
        frontier = next_frontier


def count_words_by_length(
    language: DFA | NFA | Regex | str,
    max_length: int,
) -> list[int]:
    """Return ``[c_0, c_1, ..., c_max]`` where ``c_n`` is the number of
    accepted words of length exactly ``n``.

    Computed by dynamic programming over the DFA; runs in
    ``O(max_length * |transitions|)``.
    """
    dfa = as_dfa(language)
    counts: list[int] = []
    # vector: state -> number of words of current length reaching it
    vector: dict[object, int] = {dfa.initial: 1}
    for _ in range(max_length + 1):
        counts.append(sum(n for state, n in vector.items() if state in dfa.finals))
        nxt: dict[object, int] = {}
        for (src, _), dst in dfa.transitions.items():
            if src in vector:
                nxt[dst] = nxt.get(dst, 0) + vector[src]
        vector = nxt
    return counts


def sample_word(
    language: DFA | NFA | Regex | str,
    length: int,
    rng: random.Random,
) -> tuple[Symbol, ...]:
    """Sample a uniformly random accepted word of exactly *length* symbols.

    Raises :class:`AutomatonError` if the language has no word of that
    length.  Uses the standard backward-counting DP, so sampling is exact.
    """
    dfa = as_dfa(language)
    # paths_to_final[k][state] = number of accepted suffixes of length k from state
    paths: list[dict[object, int]] = [dict.fromkeys(dfa.finals, 1)]
    for _ in range(length):
        prev = paths[-1]
        step: dict[object, int] = {}
        for (src, _), dst in dfa.transitions.items():
            if dst in prev:
                step[src] = step.get(src, 0) + prev[dst]
        paths.append(step)
    total = paths[length].get(dfa.initial, 0)
    if total == 0:
        raise AutomatonError(f"language has no word of length {length}")
    word: list[Symbol] = []
    state = dfa.initial
    for remaining in range(length, 0, -1):
        choices: list[tuple[Symbol, object, int]] = []
        for (src, sym), dst in dfa.transitions.items():
            if src == state:
                weight = paths[remaining - 1].get(dst, 0)
                if weight:
                    choices.append((sym, dst, weight))
        choices.sort(key=lambda item: repr(item[0]))
        pick = rng.randrange(sum(weight for _, _, weight in choices))
        for sym, dst, weight in choices:
            if pick < weight:
                word.append(sym)
                state = dst
                break
            pick -= weight
    return tuple(word)


def shortest_word(language: DFA | NFA | Regex | str) -> tuple[Symbol, ...] | None:
    """Return a shortest accepted word, or None if the language is empty."""
    dfa = as_dfa(language)
    for word in enumerate_words(dfa, max_length=max(1, len(dfa.states))):
        return word
    return None


def symbols_of(language: DFA | NFA | Regex | str) -> frozenset[Hashable]:
    """Return the alphabet over which *language* is defined."""
    if isinstance(language, (DFA, NFA)):
        return language.alphabet
    if isinstance(language, str):
        language = parse(language)
    if isinstance(language, Regex):
        return language.symbols()
    raise TypeError(f"cannot interpret {language!r} as a regular language")


def words_equal(left: Sequence, right: Sequence) -> bool:
    """Positional equality of two words (helper used by tests)."""
    return tuple(left) == tuple(right)
