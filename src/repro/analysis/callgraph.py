"""Whole-program call graph over parsed module contexts.

The per-file rules (R001–R007) see one module at a time.  The
interprocedural rules (R008–R011) and the effect-inference pass
(:mod:`repro.analysis.effects`) need to know *who calls whom* across the
whole tree, so this module builds a :class:`Program`: one
:class:`FunctionNode` per module-level function and per method of a
top-level class, with every call site resolved as far as a purely
syntactic analysis can.

Resolution is deliberately conservative:

* bare-name calls resolve through the module's own functions, its
  ``import``/``from``-import maps, and classes (a class call is its
  ``__init__`` when one is defined);
* attribute calls whose root is an imported module resolve by dotted
  path;
* method calls on ``self`` resolve within the class first; method calls
  on anything else resolve to **every** program method with that name
  (a conservative union — claiming too many callees is safe, missing
  one is not);
* nested ``def``s fold into their enclosing function: their bodies are
  analyzed as part of the parent, and calling one is a no-op edge.

Anything that cannot be resolved is kept as a :class:`CallRecord` with
``kind="dynamic"`` so downstream analyses can treat it as
effect-unknown instead of silently dropping it.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import ModuleContext

#: Annotation marking a function as intended for process-parallel
#: sharding (checked by R009); place it on the ``def`` line or the line
#: directly above it.
SHARDABLE_RE = re.compile(r"#\s*repro-par:\s*shardable\b")

#: Builtins whose calls neither mutate their arguments nor touch ambient
#: state (calling them is effect-free; what they *return* is the
#: caller's problem).
PURE_BUILTINS = frozenset(
    {
        "abs", "all", "any", "bin", "bool", "bytes", "callable", "chr",
        "dict", "divmod", "enumerate", "filter", "float", "format",
        "frozenset", "getattr", "hasattr", "hash", "hex", "id", "int",
        "isinstance", "issubclass", "iter", "len", "list", "map", "max",
        "min", "next", "object", "oct", "ord", "pow", "range", "repr",
        "reversed", "round", "set", "slice", "sorted", "str", "sum",
        "super", "tuple", "type", "vars", "zip",
    }
)

#: Builtins that perform I/O.
IO_BUILTINS = frozenset({"open", "print", "input", "breakpoint"})

#: Builtin exception types: constructing one (usually to ``raise`` it)
#: is effect-free.
BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError", "AssertionError", "AttributeError",
        "BaseException", "BufferError", "ConnectionError",
        "DeprecationWarning", "EOFError", "Exception", "FileExistsError",
        "FileNotFoundError", "FloatingPointError", "GeneratorExit",
        "ImportError", "IndentationError", "IndexError",
        "InterruptedError", "IsADirectoryError", "KeyError",
        "KeyboardInterrupt", "LookupError", "MemoryError", "NameError",
        "NotADirectoryError", "NotImplementedError", "OSError",
        "OverflowError", "PermissionError", "RecursionError",
        "ReferenceError", "RuntimeError", "StopAsyncIteration",
        "StopIteration", "SyntaxError", "SystemError", "SystemExit",
        "TabError", "TimeoutError", "TypeError", "UnboundLocalError",
        "UnicodeDecodeError", "UnicodeEncodeError", "UnicodeError",
        "UserWarning", "ValueError", "Warning", "ZeroDivisionError",
    }
)

#: Budget-method names forming the governed charging protocol (mirrors
#: rules.BUDGET_METHODS; redefined here to keep this module importable
#: without the per-file rule set).
BUDGET_METHODS = frozenset({"tick", "charge_states", "charge", "check"})

#: Builtin type names that may appear in parameter annotations; they
#: resolve to "no program methods" rather than blocking narrowing.
BUILTIN_TYPE_NAMES = frozenset(
    {
        "bool", "bytes", "bytearray", "complex", "dict", "float",
        "frozenset", "int", "list", "object", "set", "str", "tuple",
        "type",
    }
)


def _annotation_classes(expr: ast.expr | None) -> tuple[str, ...]:
    """Simple class names mentioned by a parameter annotation.

    Union types (``A | B``), ``Optional[...]``, string annotations, and
    dotted names contribute their named alternatives; ``None`` and forms
    we cannot interpret contribute nothing.
    """
    if expr is None:
        return ()
    if isinstance(expr, ast.Name):
        return (expr.id,)
    if isinstance(expr, ast.Attribute):
        return (expr.attr,)
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        names: list[str] = []
        for token in expr.value.split("|"):
            token = token.split("[")[0].strip().rsplit(".", 1)[-1].strip()
            if token.isidentifier() and token != "None":
                names.append(token)
        return tuple(names)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        return _annotation_classes(expr.left) + _annotation_classes(expr.right)
    if (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "Optional"
    ):
        return _annotation_classes(expr.slice)
    return ()


def _param_annotation_map(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, tuple[str, ...]]:
    args = node.args
    out: dict[str, tuple[str, ...]] = {}
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        classes = _annotation_classes(arg.annotation)
        if classes:
            out[arg.arg] = classes
    return out


@dataclass
class CallRecord:
    """One resolved call site inside a function body."""

    node: ast.Call
    #: "nested" | "function" | "constructor" | "builtin" | "module-attr"
    #: | "method" | "param-call" | "dynamic"
    kind: str
    #: Display name for messages ("determinize", "cache.get", ...).
    display: str
    #: Qualnames of program functions this call may invoke.
    targets: tuple[str, ...] = ()
    #: Dotted path for calls that leave the program ("os.path.join").
    external: str | None = None
    #: For kind="method": "self" | "param" | "local" | "global" | "expr".
    receiver: str | None = None
    #: Method/attribute name for attribute calls.
    attr: str | None = None
    #: Receiver variable name for method calls on a bare name.
    receiver_name: str | None = None


@dataclass
class FunctionNode:
    """A module-level function or a method of a top-level class."""

    qualname: str
    module: str
    relpath: str
    ctx: ModuleContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None
    params: tuple[str, ...]
    param_set: frozenset[str]
    keyword_only: frozenset[str]
    keyword_only_none: frozenset[str]
    #: Param name -> simple class names from its annotation (union types
    #: keep every named alternative); used to narrow method resolution.
    param_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Local name -> simple class names, when every assignment to the
    #: local is a constructor call of a known class.
    local_types: dict[str, tuple[str, ...]] = field(default_factory=dict)
    locals: frozenset[str] = frozenset()
    nested_defs: frozenset[str] = frozenset()
    #: Local aliases of budget-protocol bound methods.
    budget_aliases: frozenset[str] = frozenset()
    #: Local aliases of imported-module attributes
    #: (``int64 = _np.int64``): alias name -> dotted external path.
    external_aliases: dict[str, str] = field(default_factory=dict)
    annotated_shardable: bool = False
    calls: list[CallRecord] = field(default_factory=list)
    #: Program functions referenced by bare name without being called
    #: (callbacks registered with set_defaults(func=...), key=..., etc.);
    #: used for reachability, not effect propagation.
    references: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """Per-module symbol tables used during call resolution."""

    name: str
    ctx: ModuleContext
    import_aliases: dict[str, str] = field(default_factory=dict)
    member_imports: dict[str, str] = field(default_factory=dict)
    global_names: frozenset[str] = frozenset()
    contextvars: frozenset[str] = frozenset()
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, dict[str, str]] = field(default_factory=dict)


def module_name_for(relpath: str) -> str:
    """Dotted module name for *relpath*, rooted at the ``repro`` package
    when the file lives inside it (``src/repro/core/upper.py`` →
    ``repro.core.upper``); bare stem otherwise (fixture-friendly)."""
    parts = [*Path(relpath).parts]
    if not parts:
        return "<module>"
    parts[-1] = Path(parts[-1]).stem
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    elif parts:
        parts = parts[-1:]
    return ".".join(parts) or "<module>"


def _collect_locals(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[frozenset[str], frozenset[str]]:
    """(assigned-or-bound local names, nested def names) of *fn*."""
    names: set[str] = set()
    nested: set[str] = set()
    for sub in ast.walk(fn):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
        elif (
            isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not fn
        ):
            nested.add(sub.name)
            names.add(sub.name)
        elif isinstance(sub, ast.ClassDef):
            names.add(sub.name)
    return frozenset(names), frozenset(nested)


def _param_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[tuple[str, ...], frozenset[str], frozenset[str]]:
    """(all param names in order, keyword-only names, keyword-only
    names whose default is the literal ``None``)."""
    args = node.args
    ordered = [a.arg for a in (*args.posonlyargs, *args.args)]
    if args.vararg is not None:
        ordered.append(args.vararg.arg)
    kwonly = [a.arg for a in args.kwonlyargs]
    ordered.extend(kwonly)
    if args.kwarg is not None:
        ordered.append(args.kwarg.arg)
    kwonly_none = {
        arg.arg
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
        if isinstance(default, ast.Constant) and default.value is None
    }
    return tuple(ordered), frozenset(kwonly), frozenset(kwonly_none)


def _budget_aliases(node: ast.FunctionDef | ast.AsyncFunctionDef) -> frozenset[str]:
    """Local names bound to budget-protocol bound methods
    (``tick, charge = budget.tick, budget.charge``); calling one is the
    governed charging protocol, not a dynamic call."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
            continue
        target = sub.targets[0]
        pairs: list[tuple[ast.expr, ast.expr]]
        if isinstance(target, ast.Name):
            pairs = [(target, sub.value)]
        elif (
            isinstance(target, ast.Tuple)
            and isinstance(sub.value, ast.Tuple)
            and len(target.elts) == len(sub.value.elts)
        ):
            pairs = list(zip(target.elts, sub.value.elts))
        else:
            continue
        for tgt, val in pairs:
            if (
                isinstance(tgt, ast.Name)
                and isinstance(val, ast.Attribute)
                and val.attr in BUDGET_METHODS
                and isinstance(val.value, ast.Name)
                and "budget" in val.value.id
            ):
                out.add(tgt.id)
    return frozenset(out)


def _expr_root(expr: ast.expr) -> str | None:
    """Base ``Name`` under an attribute/subscript/starred chain, if any."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript, ast.Starred)):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None


def _is_contextvar_ctor(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id == "ContextVar"
    if isinstance(func, ast.Attribute):
        return func.attr == "ContextVar"
    return False


def is_annotated_shardable(
    ctx: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> bool:
    """True iff *node* carries ``# repro-par: shardable`` on its ``def``
    line or the line directly above it."""
    for lineno in (node.lineno, node.lineno - 1):
        if lineno >= 1 and SHARDABLE_RE.search(ctx.comment_text(lineno)):
            return True
    return False


class Program:
    """The whole analyzed program: functions, symbol tables, call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.methods_by_name: dict[str, tuple[str, ...]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def from_contexts(cls, ctxs: Sequence[ModuleContext]) -> "Program":
        program = cls()
        for ctx in ctxs:
            program._add_module(ctx)
        program._index_methods()
        for node in program.functions.values():
            program._resolve_function(node)
        return program

    def _add_module(self, ctx: ModuleContext) -> None:
        name = module_name_for(ctx.relpath)
        info = ModuleInfo(name=name, ctx=ctx)
        globals_: set[str] = set()
        contextvars: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            globals_.add(leaf.id)
                            if _is_contextvar_ctor(stmt.value):
                                contextvars.add(leaf.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                globals_.add(stmt.target.id)
                if stmt.value is not None and _is_contextvar_ctor(stmt.value):
                    contextvars.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{name}.{stmt.name}"
                info.functions[stmt.name] = qualname
                self._add_function(info, ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                methods = info.classes.setdefault(stmt.name, {})
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{name}.{stmt.name}.{member.name}"
                        methods[member.name] = qualname
                        self._add_function(
                            info, ctx, member, class_name=stmt.name
                        )
        # Imports anywhere in the module (function-level imports included).
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    dotted = alias.name if alias.asname else bound
                    info.import_aliases[bound] = dotted
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    info.member_imports[bound] = f"{node.module}.{alias.name}"
        info.global_names = frozenset(globals_)
        info.contextvars = frozenset(contextvars)
        self.modules[name] = info

    def _add_function(
        self,
        info: ModuleInfo,
        ctx: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        class_name: str | None,
    ) -> None:
        qualname = (
            f"{info.name}.{class_name}.{node.name}"
            if class_name
            else f"{info.name}.{node.name}"
        )
        params, kwonly, kwonly_none = _param_info(node)
        locals_, nested = _collect_locals(node)
        self.functions[qualname] = FunctionNode(
            qualname=qualname,
            module=info.name,
            relpath=ctx.relpath,
            ctx=ctx,
            node=node,
            class_name=class_name,
            params=params,
            param_set=frozenset(params),
            keyword_only=kwonly,
            keyword_only_none=kwonly_none,
            param_types=_param_annotation_map(node),
            locals=locals_,
            nested_defs=nested,
            budget_aliases=_budget_aliases(node),
            annotated_shardable=is_annotated_shardable(ctx, node),
        )

    def _index_methods(self) -> None:
        by_name: dict[str, list[str]] = {}
        for qualname, node in self.functions.items():
            if node.class_name is not None:
                by_name.setdefault(node.name, []).append(qualname)
        self.methods_by_name = {
            name: tuple(sorted(quals)) for name, quals in by_name.items()
        }

    # -- call resolution -----------------------------------------------

    def _function_by_dotted(self, dotted: str) -> str | None:
        return dotted if dotted in self.functions else None

    def _constructor_targets(self, dotted: str) -> tuple[str, ...] | None:
        """If *dotted* names a known class, its ``__init__``-edge targets
        (possibly empty for auto-generated inits); None otherwise."""
        module, _, cls_name = dotted.rpartition(".")
        info = self.modules.get(module)
        if info is None or cls_name not in info.classes:
            return None
        init = info.classes[cls_name].get("__init__")
        return (init,) if init else ()

    def _class_methods(self, info: ModuleInfo, simple: str) -> dict[str, str] | None:
        """Method table of the program class *simple* names in *info*'s
        namespace (own class or ``from``-imported); None when unknown."""
        if simple in info.classes:
            return info.classes[simple]
        dotted = info.member_imports.get(simple)
        if dotted:
            module, _, cls_name = dotted.rpartition(".")
            other = self.modules.get(module)
            if other is not None and cls_name in other.classes:
                return other.classes[cls_name]
        return None

    def _narrowed_methods(
        self, info: ModuleInfo, class_names: tuple[str, ...], attr: str
    ) -> tuple[str, ...] | None:
        """Targets for a ``.attr`` call whose receiver is known to be an
        instance of one of *class_names*; None when any named class is
        outside the program (no narrowing) or lacks *attr* (it may be
        inherited — stay with the conservative by-name union)."""
        if not class_names:
            return None
        out: set[str] = set()
        for simple in class_names:
            if simple in BUILTIN_TYPE_NAMES:
                continue
            methods = self._class_methods(info, simple)
            if methods is None:
                return None
            target = methods.get(attr)
            if target is None:
                return None
            out.add(target)
        return tuple(sorted(out))

    def _constructed_class(self, info: ModuleInfo, func: ast.expr) -> str | None:
        simple: str | None = None
        if isinstance(func, ast.Name):
            simple = func.id
        elif isinstance(func, ast.Attribute):
            simple = func.attr
        if simple is None or self._class_methods(info, simple) is None:
            return None
        return simple

    def _infer_local_types(self, info: ModuleInfo, fn: FunctionNode) -> None:
        """Record locals whose every binding is a constructor call of a
        known program class (``ctx = _PairContext(...)``)."""
        candidates: dict[str, set[str]] = {}
        constructor_stores: set[int] = set()
        for sub in ast.walk(fn.node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                cls_name = self._constructed_class(info, sub.value.func)
                if cls_name is not None:
                    candidates.setdefault(sub.targets[0].id, set()).add(cls_name)
                    constructor_stores.add(id(sub.targets[0]))
        if not candidates:
            return
        tainted: set[str] = set()
        for sub in ast.walk(fn.node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Store)
                and id(sub) not in constructor_stores
            ):
                tainted.add(sub.id)
        fn.local_types = {
            name: tuple(sorted(classes))
            for name, classes in candidates.items()
            if name not in tainted and name not in fn.param_set
        }

    def _infer_external_aliases(self, info: ModuleInfo, fn: FunctionNode) -> None:
        """Record locals whose every binding aliases an imported-module
        attribute (``int64 = _np.int64`` hot-loop localizations)."""
        candidates: dict[str, set[str]] = {}
        alias_stores: set[int] = set()
        for sub in ast.walk(fn.node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            pairs: list[tuple[ast.expr, ast.expr]]
            if isinstance(target, ast.Name):
                pairs = [(target, sub.value)]
            elif (
                isinstance(target, ast.Tuple)
                and isinstance(sub.value, ast.Tuple)
                and len(target.elts) == len(sub.value.elts)
            ):
                pairs = list(zip(target.elts, sub.value.elts))
            else:
                continue
            for tgt, val in pairs:
                if not (isinstance(tgt, ast.Name) and isinstance(val, ast.Attribute)):
                    continue
                chain: list[str] = [val.attr]
                base: ast.expr = val.value
                while isinstance(base, ast.Attribute):
                    chain.append(base.attr)
                    base = base.value
                if not isinstance(base, ast.Name):
                    continue
                dotted_root = info.import_aliases.get(base.id)
                if dotted_root is None:
                    continue
                dotted = ".".join([dotted_root, *reversed(chain)])
                candidates.setdefault(tgt.id, set()).add(dotted)
                alias_stores.add(id(tgt))
        if not candidates:
            return
        for sub in ast.walk(fn.node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Store)
                and id(sub) not in alias_stores
            ):
                candidates.pop(sub.id, None)
        fn.external_aliases = {
            name: next(iter(dotted_set))
            for name, dotted_set in candidates.items()
            if len(dotted_set) == 1 and name not in fn.param_set
        }

    def _resolve_function(self, fn: FunctionNode) -> None:
        info = self.modules[fn.module]
        self._infer_local_types(info, fn)
        self._infer_external_aliases(info, fn)
        call_funcs: set[int] = set()
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Call):
                call_funcs.add(id(sub.func))
                fn.calls.append(self._resolve_call(info, fn, sub))
        refs: set[str] = set()
        for sub in ast.walk(fn.node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and id(sub) not in call_funcs
            ):
                target = info.functions.get(sub.id)
                if target is None and sub.id in info.member_imports:
                    target = self._function_by_dotted(info.member_imports[sub.id])
                if target is not None:
                    refs.add(target)
        fn.references = tuple(sorted(refs))

    def _resolve_call(
        self, info: ModuleInfo, fn: FunctionNode, call: ast.Call
    ) -> CallRecord:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(info, fn, call, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attr_call(info, fn, call, func)
        return CallRecord(node=call, kind="dynamic", display="<expr>()")

    def _resolve_name_call(
        self, info: ModuleInfo, fn: FunctionNode, call: ast.Call, name: str
    ) -> CallRecord:
        if name in fn.nested_defs:
            return CallRecord(node=call, kind="nested", display=name)
        if name in info.functions:
            return CallRecord(
                node=call,
                kind="function",
                display=name,
                targets=(info.functions[name],),
            )
        if name in info.classes:
            init = info.classes[name].get("__init__")
            return CallRecord(
                node=call,
                kind="constructor",
                display=name,
                targets=(init,) if init else (),
            )
        if name in info.member_imports:
            dotted = info.member_imports[name]
            target = self._function_by_dotted(dotted)
            if target is not None:
                return CallRecord(
                    node=call, kind="function", display=name, targets=(target,)
                )
            ctor = self._constructor_targets(dotted)
            if ctor is not None:
                return CallRecord(
                    node=call, kind="constructor", display=name, targets=ctor
                )
            return CallRecord(
                node=call, kind="module-attr", display=name, external=dotted
            )
        if name in info.import_aliases:
            return CallRecord(
                node=call,
                kind="module-attr",
                display=name,
                external=info.import_aliases[name],
            )
        if (
            name in PURE_BUILTINS
            or name in IO_BUILTINS
            or name in BUILTIN_EXCEPTIONS
        ):
            return CallRecord(node=call, kind="builtin", display=name, attr=name)
        if name in fn.external_aliases:
            return CallRecord(
                node=call,
                kind="module-attr",
                display=name,
                external=fn.external_aliases[name],
            )
        if name in fn.budget_aliases:
            # ``tick = budget.tick; ... tick(n)``: the governed charging
            # protocol through a hot-loop local alias.
            return CallRecord(
                node=call,
                kind="method",
                display=f"budget.{name}",
                attr=name,
                receiver="local",
                receiver_name="budget",
            )
        if name in fn.param_set and name not in fn.locals:
            # Calling a callable parameter: the effect belongs to whatever
            # each caller passes in (resolved during effect propagation).
            return CallRecord(
                node=call, kind="param-call", display=f"{name}()", attr=name
            )
        # A local callable value (comprehension variable, assigned lambda)
        # or an unrecognized global: effect-unknown.
        return CallRecord(node=call, kind="dynamic", display=name)

    def _resolve_attr_call(
        self,
        info: ModuleInfo,
        fn: FunctionNode,
        call: ast.Call,
        func: ast.Attribute,
    ) -> CallRecord:
        attr = func.attr
        chain: list[str] = []
        base: ast.expr = func.value
        while isinstance(base, ast.Attribute):
            chain.append(base.attr)
            base = base.value
        if isinstance(base, ast.Name):
            root = base.id
            dotted_root = info.import_aliases.get(root) or info.member_imports.get(
                root
            )
            if dotted_root is not None:
                dotted = ".".join([dotted_root, *reversed(chain), attr])
                target = self._function_by_dotted(dotted)
                if target is not None:
                    return CallRecord(
                        node=call,
                        kind="function",
                        display=f"{root}.{attr}",
                        targets=(target,),
                        attr=attr,
                    )
                ctor = self._constructor_targets(dotted)
                if ctor is not None:
                    return CallRecord(
                        node=call,
                        kind="constructor",
                        display=f"{root}.{attr}",
                        targets=ctor,
                        attr=attr,
                    )
                return CallRecord(
                    node=call,
                    kind="module-attr",
                    display=f"{root}.{attr}",
                    external=dotted,
                    attr=attr,
                )
            if not chain:
                if (
                    root in BUILTIN_TYPE_NAMES
                    and root not in fn.param_set
                    and root not in fn.locals
                    and root not in info.global_names
                ):
                    # ``object.__new__(cls)`` and friends: a method on a
                    # builtin type, never a program method.
                    return CallRecord(
                        node=call,
                        kind="method",
                        display=f"{root}.{attr}",
                        targets=(),
                        receiver="expr",
                        attr=attr,
                        receiver_name=root,
                    )
                if (
                    fn.class_name is not None
                    and fn.params
                    and root == fn.params[0]
                ):
                    own = info.classes.get(fn.class_name, {}).get(attr)
                    targets = (
                        (own,) if own else self.methods_by_name.get(attr, ())
                    )
                    return CallRecord(
                        node=call,
                        kind="method",
                        display=f"self.{attr}",
                        targets=targets,
                        receiver="self",
                        attr=attr,
                        receiver_name=root,
                    )
                class_names: tuple[str, ...] = ()
                if root in fn.param_set:
                    receiver = "param"
                    class_names = fn.param_types.get(root, ())
                elif root in fn.locals:
                    receiver = "local"
                    class_names = fn.local_types.get(root, ())
                elif root in info.global_names:
                    receiver = "global"
                else:
                    receiver = "expr"
                targets = self._narrowed_methods(info, class_names, attr)
                if targets is None:
                    targets = self.methods_by_name.get(attr, ())
                return CallRecord(
                    node=call,
                    kind="method",
                    display=f"{root}.{attr}",
                    targets=targets,
                    receiver=receiver,
                    attr=attr,
                    receiver_name=root,
                )
        # Method on a deeper expression (attribute chain, subscript, call
        # result, ...).  Classify by the root name when one exists: a
        # mutator on ``self.rows`` or ``edtd.rules[tau]`` still hits
        # caller-visible state.
        root_name = _expr_root(func.value)
        if (
            fn.class_name is not None
            and fn.params
            and root_name == fn.params[0]
        ):
            receiver = "self"
        elif root_name is not None and root_name in fn.param_set:
            receiver = "param"
        elif root_name is not None and root_name in fn.locals:
            receiver = "local"
        elif root_name is not None and root_name in info.global_names:
            receiver = "global"
        else:
            receiver = "expr"
        display = (
            f"<expr>.{attr}" if root_name is None else f"{root_name}.(...).{attr}"
        )
        return CallRecord(
            node=call,
            kind="method",
            display=display,
            targets=self.methods_by_name.get(attr, ()),
            receiver=receiver,
            attr=attr,
            receiver_name=root_name,
        )

    # -- queries -------------------------------------------------------

    def callees(self, qualname: str) -> frozenset[str]:
        """Program functions *qualname* may call (no references)."""
        fn = self.functions.get(qualname)
        if fn is None:
            return frozenset()
        out: set[str] = set()
        for record in fn.calls:
            out.update(record.targets)
        return frozenset(out)

    def edges_from(self, qualname: str) -> frozenset[str]:
        """Call targets plus address-taken references (for reachability)."""
        fn = self.functions.get(qualname)
        if fn is None:
            return frozenset()
        return self.callees(qualname) | set(fn.references)

    def reachable_from(self, seeds: Iterable[str]) -> frozenset[str]:
        """Transitive closure of :meth:`edges_from` over *seeds*."""
        seen: set[str] = set()
        stack = [q for q in seeds if q in self.functions]
        while stack:  # ungoverned: each program function is visited once
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges_from(current) - seen)
        return frozenset(seen)

    def entry_points(self) -> frozenset[str]:
        """Public functions of ``api``/``cli`` modules (the governed
        surface R008 protects), plus any ``main``."""
        out: set[str] = set()
        for info in self.modules.values():
            basename = Path(info.ctx.relpath).name
            if basename not in {"api.py", "cli.py", "__main__.py"}:
                continue
            for name, qualname in info.functions.items():
                if not name.startswith("_") or name == "main":
                    out.add(qualname)
        return frozenset(out)

    def iter_functions(self) -> Iterator[FunctionNode]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]
