"""AST lint engine: file collection, per-module context, pragma handling.

The engine parses each file once into a :class:`ModuleContext` (AST +
parent links + pragma index + lightweight scope information) and hands it
to every registered :class:`Rule`.  Rules are pure visitors: they never
mutate the context and report violations as :class:`~repro.analysis.findings.Finding`
values.

Suppression pragmas
-------------------
Two comment forms suppress findings on the line where the flagged
statement starts:

* ``# repro-lint: disable=R001,R004 -- reason`` — generic, any rule.
* ``# ungoverned: reason`` — shorthand for ``disable=R001,R008``; this is
  the canonical way to mark a worklist loop as *intentionally* outside
  the PR-1 budget regime (the reason is mandatory).

The ``-- reason`` clause is mandatory for both forms: a disable pragma
without a reason is **rejected** (it suppresses nothing, so the finding
it meant to hide still fires and the gate stays honest).

Grandfathered findings that should not carry an in-source pragma go in
the baseline file instead (:mod:`repro.analysis.baseline`).

Whole-program rules
-------------------
Rules that need to see *every* module at once (call-graph reachability,
effect inference — R008–R011) subclass :class:`ProgramRule` and receive a
:class:`repro.analysis.callgraph.Program` built from all parsed module
contexts.  Their findings still honor per-line pragmas in the module that
owns the flagged line.
"""

from __future__ import annotations

import ast
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

from repro.analysis.findings import Finding, Severity

_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>R\d{3}(?:\s*,\s*R\d{3})*)"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)
_UNGOVERNED_RE = re.compile(r"#\s*ungoverned:\s*(?P<reason>\S.*)")

#: Rules an ``# ungoverned:`` pragma silences.  R001 is the in-package
#: governed-loop rule; R008 is its interprocedural twin (governance
#: escape), and a loop declared intentionally ungoverned is outside both.
UNGOVERNED_RULES = frozenset({"R001", "R008"})


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings.  ``finding()`` is a convenience constructor that
    fills in location/context/snippet from the context and node.
    """

    rule_id: str = "R000"
    title: str = ""
    severity: Severity = Severity.ERROR
    hint: str = ""

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: "ModuleContext",
        node: ast.AST,
        message: str,
        *,
        hint: str | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=ctx.relpath,
            line=line,
            col=col,
            message=message,
            hint=self.hint if hint is None else hint,
            context=ctx.qualname(node),
            snippet=ctx.line_at(line),
        )


class ProgramRule(Rule):
    """Base class for whole-program rules (R008–R011).

    A :class:`ProgramRule` is checked once per analysis run against a
    :class:`repro.analysis.callgraph.Program` built from every parsed
    module, instead of once per module.  The per-module :meth:`check`
    hook is a no-op so program rules compose transparently with the
    module-rule pipeline.
    """

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        return iter(())

    def check_program(self, program: object) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(
        self,
        ctx: "ModuleContext",
        node: ast.AST,
        message: str,
        *,
        hint: str | None = None,
    ) -> Finding:
        """Alias of :meth:`Rule.finding` for readability at call sites."""
        return self.finding(ctx, node, message, hint=hint)


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str]
    disabled: dict[int, set[str] | None] = field(default_factory=dict)
    comments: dict[int, list[str]] = field(default_factory=dict)
    rejected_pragmas: list[tuple[int, str]] = field(default_factory=list)
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: Path, root: Path | None = None) -> "ModuleContext":
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            relpath=_relpath(path, root),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        ctx._index_parents()
        ctx._index_pragmas()
        return ctx

    @classmethod
    def from_file(cls, path: Path, root: Path | None = None) -> "ModuleContext":
        return cls.from_source(path.read_text(encoding="utf-8"), path, root)

    # -- structure -----------------------------------------------------

    def _index_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of the scopes enclosing *node* (``"<module>"`` at top)."""
        parts: list[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                parts.append(ancestor.name)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            parts.insert(0, node.name)
        if not parts:
            return "<module>"
        return ".".join(reversed(parts))

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def in_dirs(self, names: Iterable[str]) -> bool:
        """True iff any path component of the file matches a name in *names*."""
        wanted = set(names)
        return any(part in wanted for part in Path(self.relpath).parts)

    # -- pragmas -------------------------------------------------------

    def _index_pragmas(self) -> None:
        try:
            tokens = tokenize.generate_tokens(StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                self._record_pragma(token.start[0], token.string)
        except tokenize.TokenError:
            # Fall back to a line scan on pathological input; comments
            # inside strings may then be misread, which only ever
            # *suppresses* findings on weird files, never invents them.
            for lineno, text in enumerate(self.lines, start=1):
                if "#" in text:
                    self._record_pragma(lineno, text[text.index("#"):])

    def _record_pragma(self, lineno: int, comment: str) -> None:
        self.comments.setdefault(lineno, []).append(comment)
        match = _DISABLE_RE.search(comment)
        if match is not None:
            if match.group("reason") is None:
                # Reasonless disable pragmas are rejected: they suppress
                # nothing, so the finding they meant to hide still fires.
                self.rejected_pragmas.append((lineno, comment.strip()))
                return
            rules = {r.strip() for r in match.group("rules").split(",")}
            existing = self.disabled.get(lineno)
            if existing is None and lineno in self.disabled:
                return  # already disabled for all rules
            self.disabled[lineno] = (existing or set()) | rules
        if _UNGOVERNED_RE.search(comment) is not None:
            existing = self.disabled.get(lineno)
            if lineno in self.disabled and existing is None:
                return
            self.disabled[lineno] = (existing or set()) | set(UNGOVERNED_RULES)

    def comment_text(self, lineno: int) -> str:
        """All comment text recorded on *lineno* (empty string if none)."""
        return " ".join(self.comments.get(lineno, ()))

    def is_disabled(self, rule_id: str, lineno: int) -> bool:
        if lineno not in self.disabled:
            return False
        rules = self.disabled[lineno]
        return rules is None or rule_id in rules


def _relpath(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        rel = path.resolve().relative_to(base.resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


# ----------------------------------------------------------------------
# Running rules
# ----------------------------------------------------------------------

def default_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in rule-id order."""
    from repro.analysis.interproc import PROGRAM_RULES
    from repro.analysis.rules import ALL_RULES

    return [rule_cls() for rule_cls in (*ALL_RULES, *PROGRAM_RULES)]


def analyze_context(ctx: ModuleContext, rules: Sequence[Rule]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.is_disabled(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_contexts(
    ctxs: Sequence[ModuleContext], rules: Sequence[Rule]
) -> list[Finding]:
    """Run module rules per context, then program rules over all contexts."""
    findings: list[Finding] = []
    program_rules = [rule for rule in rules if isinstance(rule, ProgramRule)]
    for ctx in ctxs:
        findings.extend(analyze_context(ctx, rules))
    if program_rules:
        from repro.analysis.callgraph import Program

        program = Program.from_contexts(ctxs)
        by_path = {ctx.relpath: ctx for ctx in ctxs}
        for rule in program_rules:
            for finding in rule.check_program(program):
                owner = by_path.get(finding.path)
                if owner is None or not owner.is_disabled(finding.rule, finding.line):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_source(
    source: str,
    path: Path | str,
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Analyze a source string as if it lived at *path* (test entry point)."""
    ctx = ModuleContext.from_source(source, Path(path), root)
    return analyze_contexts([ctx], rules if rules is not None else default_rules())


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand *paths* (files or directories) into a sorted list of .py files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" in candidate.parts:
                    continue
                seen.add(candidate)
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)


def load_contexts(
    paths: Iterable[Path | str], root: Path | None = None
) -> tuple[list[ModuleContext], list[Finding]]:
    """Parse every .py file under *paths* into contexts.

    Files that fail to parse yield a single parse-error finding (rule
    ``R000``) instead of aborting the run; those findings are returned
    alongside the successfully parsed contexts.
    """
    ctxs: list[ModuleContext] = []
    parse_findings: list[Finding] = []
    for path in collect_files(Path(p) for p in paths):
        try:
            ctxs.append(ModuleContext.from_file(path, root))
        except (SyntaxError, UnicodeDecodeError) as exc:
            parse_findings.append(
                Finding(
                    rule="R000",
                    severity=Severity.ERROR,
                    path=_relpath(path, root),
                    line=getattr(exc, "lineno", 1) or 1,
                    col=0,
                    message=f"file does not parse: {exc}",
                    hint="fix the syntax error",
                    context="<module>",
                    snippet="",
                )
            )
    return ctxs, parse_findings


def analyze_paths(
    paths: Iterable[Path | str],
    rules: Sequence[Rule] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Analyze every .py file under *paths*; returns sorted findings.

    Files that fail to parse yield a single parse-error finding (rule
    ``R000``) instead of aborting the run.
    """
    active = rules if rules is not None else default_rules()
    ctxs, findings = load_contexts(paths, root)
    findings.extend(analyze_contexts(ctxs, active))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
