"""Findings model for the repro-lint static analysis pass.

A :class:`Finding` is one rule violation at one source location.  Findings
are value objects: they carry everything a reviewer (or CI) needs — the
rule id, severity, location, message, and a fix hint — plus a *fingerprint*
that identifies the finding across unrelated line-number drift, which is
what the baseline mechanism (:mod:`repro.analysis.baseline`) keys on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings gate CI; ``WARNING`` findings gate CI too but mark
    rules whose static approximation is coarser (reviewers should expect
    the occasional justified baseline entry).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule id (``"R001"`` .. ``"R005"``).
    severity:
        :class:`Severity` of the owning rule.
    path:
        Path of the offending file, normalized to ``/`` separators and
        relative to the analysis root when possible.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        One-sentence statement of the violation.
    hint:
        How to fix it (or how to mark it as intentional).
    context:
        Dotted qualified name of the enclosing class/function scope
        (``"<module>"`` at top level).  Part of the fingerprint.
    snippet:
        The stripped source line.  Part of the fingerprint.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str
    context: str
    snippet: str

    @property
    def fingerprint(self) -> tuple[str, str, str, str]:
        """Line-number-independent identity used for baseline matching."""
        return (self.rule, self.path, self.context, self.snippet)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (machine-readable CI output)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "context": self.context,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        """One-line human-readable rendering (``path:line:col: Rxxx ...``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity}] {self.message} ({self.context})"
        )
