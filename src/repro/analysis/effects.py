"""Flow-insensitive effect inference over the call graph.

Every function gets a set of *effect flags* from the lattice

    pure  ⊑  {mutates-args, mutates-global, reads-contextvar,
              performs-io, unknown}

computed in two steps: an **intrinsic** pass reads effects directly off
the function body (``global`` statements, attribute/subscript stores,
mutator-method calls, ContextVar reads, I/O builtins), then a fixpoint
**propagation** pass unions callee effects into callers over the
:class:`repro.analysis.callgraph.Program` edges until nothing changes.

Calls into the *sanctioned* runtime plumbing — the budget governor,
observability spans/metrics, the artifact cache, fault injection, the
error taxonomy, and the kernel memo-cache helpers — are masked during
propagation: charging a budget or opening a span is the governed way for
an otherwise-pure kernel to talk to ambient state, so it must not
disqualify a function from the ``shardable`` certificate R009 checks.
``mutates-args`` only propagates across a call when the caller actually
passes its own parameters (or ``self``) into the callee; mutating a
freshly built local is invisible to the caller.

Anything unresolvable is ``unknown``, which is contagious: a function is
only certified shardable when its masked effect set is *empty*.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.callgraph import (
    BUDGET_METHODS as BUDGET_METHODS_,
    IO_BUILTINS,
    PURE_BUILTINS,
    CallRecord,
    FunctionNode,
    ModuleInfo,
    Program,
)

MUTATES_GLOBAL = "mutates-global"
MUTATES_ARGS = "mutates-args"
READS_CONTEXTVAR = "reads-contextvar"
PERFORMS_IO = "performs-io"
UNKNOWN = "unknown"

ALL_EFFECTS = frozenset(
    {MUTATES_GLOBAL, MUTATES_ARGS, READS_CONTEXTVAR, PERFORMS_IO, UNKNOWN}
)

#: Internal flag prefix for "calls one of its callable parameters";
#: resolved per call site during propagation (the bound argument's own
#: effects are substituted), and any residue collapses to ``unknown``
#: in the final report.
CALLS_PARAM = "calls-param:"

#: Internal flag prefix for "mutates this specific parameter"; resolved
#: per call site during propagation (a fresh local bound to the mutated
#: parameter is invisible to the caller), residue collapses to
#: ``mutates-args`` in the final report.
MUTATES_PARAM = "mutates-param:"

#: Budget-method names on a ``*budget*``-named receiver are the governed
#: charging protocol — never an effect.
BUDGET_METHODS = BUDGET_METHODS_  # re-exported from callgraph

#: The governed keyword trio: passing these into a callee is the
#: sanctioned channel, not caller-state leakage.
GOVERNED_PARAMS = frozenset({"budget", "checkpoint", "trace"})

#: Qualname prefixes whose functions are sanctioned ambient-state
#: plumbing; calls into them are masked during propagation.
SANCTIONED_PREFIXES = (
    "repro.runtime.",
    "repro.observability.",
    "repro.cache.",
    "repro.faults.",
    "repro.errors.",
)

#: Kernel memo-cache plumbing sanctioned by suffix (lives inside the
#: governed kernel modules themselves).
SANCTIONED_SUFFIXES = (
    "._memoized",
    "._recharge",
    ".cache_stats",
    ".clear_caches",
    "._kernel_cache_totals",
)

#: External module roots that are effect-free to call into.
EXTERNAL_PURE = frozenset(
    {
        "abc", "bisect", "collections", "copy", "dataclasses", "enum",
        "functools", "hashlib", "heapq", "itertools", "json", "math",
        "numpy", "operator", "pathlib", "re", "string", "struct",
        "typing", "unicodedata",
    }
)

#: External module roots whose state is process-local and restored by the
#: callers that touch it (the kernels pause the cyclic GC around
#: allocation bursts); harmless under *process*-parallel sharding, so
#: masked like the sanctioned runtime plumbing.
EXTERNAL_SANCTIONED = frozenset({"gc"})

#: External module roots whose calls count as I/O (or ambient
#: nondeterminism, which parallel sharding must treat the same way).
EXTERNAL_IO = frozenset(
    {
        "io", "logging", "os", "pickle", "random", "secrets", "shutil",
        "signal", "socket", "subprocess", "sys", "tempfile", "time",
        "xml",
    }
)

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "add", "append", "appendleft", "clear", "discard", "extend",
        "extendleft", "insert", "pop", "popitem", "popleft", "remove",
        "reverse", "setdefault", "sort", "update", "write",
    }
)

#: Method names that are pure on every receiver type this codebase uses.
PURE_METHODS = frozenset(
    {
        "as_posix", "bit_count", "bit_length", "capitalize", "casefold",
        "copy", "count", "decode", "difference", "encode", "end",
        "endswith", "find", "findall", "finditer", "format", "fullmatch",
        "get", "group", "groupdict", "groups", "hexdigest", "index",
        "intersection",
        "isalnum", "isalpha", "isdigit", "isdisjoint", "isidentifier",
        "issubset", "issuperset", "items", "join", "keys", "lower",
        "lstrip", "match", "most_common", "partition", "removeprefix",
        "removesuffix", "replace", "rfind", "rpartition", "rsplit",
        "rstrip", "search", "span", "split", "splitlines", "start",
        "startswith", "strip", "sub", "subn", "symmetric_difference",
        "title", "to_bytes", "tolist", "union", "upper", "values",
        "zfill", "__new__",
    }
)

#: Method names that perform filesystem / stream I/O.
IO_METHODS = frozenset(
    {
        "fsync", "flush", "mkdir", "open", "read", "read_bytes",
        "read_text", "readline", "readlines", "rename", "rmdir",
        "touch", "unlink", "write_bytes", "write_text",
    }
)


def is_sanctioned(qualname: str) -> bool:
    """True iff calls into *qualname* are masked during propagation."""
    if qualname.startswith(SANCTIONED_PREFIXES):
        return True
    if qualname.endswith(SANCTIONED_SUFFIXES):
        return True
    return "._KernelCache." in qualname


@dataclass(frozen=True)
class FunctionEffects:
    """Inferred effects of one function."""

    qualname: str
    intrinsic: frozenset[str]
    effects: frozenset[str]
    annotated: bool
    certified: bool
    origins: Mapping[str, str]

    @property
    def pure(self) -> bool:
        return not self.effects


#: Sentinel for "the argument bound to this parameter is unknowable"
#: (splats, varargs, missing defaults).
_MISSING = object()


def _default_expr(callee: FunctionNode, pname: str) -> object:
    """The declared default expression for *pname*, or ``_MISSING``."""
    args = callee.node.args
    positional = [*args.posonlyargs, *args.args]
    defaulted = positional[len(positional) - len(args.defaults):]
    for arg, default in zip(defaulted, args.defaults):
        if arg.arg == pname:
            return default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == pname and default is not None:
            return default
    return _MISSING


def _bound_argument(
    record: CallRecord, callee: FunctionNode, pname: str
) -> object:
    """The caller expression bound to *callee*'s parameter *pname* at
    this call site — an ``ast.expr``, or ``_MISSING`` when splats /
    varargs make the binding undecidable."""
    call = record.node
    for kw in call.keywords:
        if kw.arg is None:
            return _MISSING  # **splat could rebind anything
        if kw.arg == pname:
            return kw.value
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return _MISSING
    args = callee.node.args
    if args.vararg is not None and pname == args.vararg.arg:
        return _MISSING
    positional = [arg.arg for arg in (*args.posonlyargs, *args.args)]
    if (
        callee.class_name is not None
        and positional
        and positional[0] in ("self", "cls")
        and record.kind in ("method", "constructor")
    ):
        positional = positional[1:]
    if pname in positional:
        index = positional.index(pname)
        if index < len(call.args):
            return call.args[index]
    return _default_expr(callee, pname)


def _root_name(expr: ast.expr) -> str | None:
    """Base ``Name`` of an attribute/subscript chain, if any."""
    current = expr
    while isinstance(current, (ast.Attribute, ast.Subscript, ast.Starred)):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None


def _is_budget_protocol(record: CallRecord) -> bool:
    return (
        record.attr in BUDGET_METHODS
        and record.receiver_name is not None
        and "budget" in record.receiver_name
    )


def _passes_caller_state(fn: FunctionNode, record: CallRecord) -> bool:
    """Does this call hand the callee any of *fn*'s own parameters
    (ignoring the governed trio, which is the sanctioned channel)?"""
    if record.receiver in ("param", "self"):
        return True
    interesting = fn.param_set - GOVERNED_PARAMS
    call = record.node
    values = [*call.args, *(kw.value for kw in call.keywords)]
    for value in values:
        root = _root_name(value)
        if root is not None and root in interesting:
            return True
    return False


class _Inference:
    """Shared state of one inference run."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.intrinsic: dict[str, set[str]] = {}
        self.origins: dict[str, dict[str, str]] = {}

    def _record(self, fn: FunctionNode, effect: str, origin: str) -> None:
        self.intrinsic[fn.qualname].add(effect)
        self.origins[fn.qualname].setdefault(effect, origin)

    # -- intrinsic pass ------------------------------------------------

    def infer_intrinsic(self, fn: FunctionNode) -> None:
        self.intrinsic[fn.qualname] = set()
        self.origins[fn.qualname] = {}
        info = self.program.modules[fn.module]
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                self._record(
                    fn,
                    MUTATES_GLOBAL,
                    f"global statement at line {node.lineno}",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._classify_store(fn, target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._classify_store(fn, target)
        for record in fn.calls:
            self._classify_call(fn, info, record)

    def _classify_store(self, fn: FunctionNode, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._classify_store(fn, element)
            return
        if isinstance(target, ast.Name):
            return  # plain local rebinding
        if not isinstance(target, (ast.Attribute, ast.Subscript, ast.Starred)):
            return
        root = _root_name(target)
        if root is None:
            return  # store into a fresh expression result
        line = getattr(target, "lineno", fn.node.lineno)
        if root in fn.param_set:
            self._record(
                fn,
                f"{MUTATES_PARAM}{root}",
                f"store into argument {root!r} at line {line}",
            )
        elif root in fn.locals:
            return
        else:
            # Module global or imported name — either way shared state.
            self._record(
                fn,
                MUTATES_GLOBAL,
                f"store into module state {root!r} at line {line}",
            )

    def _classify_call(
        self, fn: FunctionNode, info: ModuleInfo, record: CallRecord
    ) -> None:
        line = record.node.lineno
        if _is_budget_protocol(record):
            return
        if record.kind in ("nested", "function", "constructor"):
            if record.kind == "function" and not record.targets:
                self._record(
                    fn, UNKNOWN, f"unresolved call {record.display}() at line {line}"
                )
            return
        if record.kind == "builtin":
            if record.attr in IO_BUILTINS:
                self._record(
                    fn, PERFORMS_IO, f"{record.display}() at line {line}"
                )
            return
        if record.kind == "module-attr":
            dotted = record.external or ""
            if dotted.startswith(SANCTIONED_PREFIXES) or dotted in {
                prefix.rstrip(".") for prefix in SANCTIONED_PREFIXES
            }:
                return
            root = dotted.split(".", 1)[0]
            if root in EXTERNAL_SANCTIONED:
                return
            if root == "repro":
                # Unresolved repro-internal attr (module outside the
                # analyzed set): conservative unknown.
                self._record(
                    fn,
                    UNKNOWN,
                    f"unresolved repro call {record.display}() at line {line}",
                )
            elif root in EXTERNAL_PURE:
                return
            elif root in EXTERNAL_IO:
                self._record(
                    fn, PERFORMS_IO, f"{record.display}() at line {line}"
                )
            else:
                self._record(
                    fn,
                    UNKNOWN,
                    f"call into external module {root!r} at line {line}",
                )
            return
        if record.kind == "method":
            attr = record.attr or ""
            if (
                record.receiver == "global"
                and record.receiver_name in info.contextvars
            ):
                if attr == "get":
                    self._record(
                        fn,
                        READS_CONTEXTVAR,
                        f"ContextVar read {record.display}() at line {line}",
                    )
                    return
                if attr in {"set", "reset"}:
                    self._record(
                        fn,
                        MUTATES_GLOBAL,
                        f"ContextVar write {record.display}() at line {line}",
                    )
                    return
            if attr in MUTATOR_METHODS:
                if record.receiver in ("param", "self"):
                    root = record.receiver_name or "self"
                    self._record(
                        fn,
                        f"{MUTATES_PARAM}{root}",
                        f"mutator {record.display}() at line {line}",
                    )
                elif record.receiver == "global":
                    self._record(
                        fn,
                        MUTATES_GLOBAL,
                        f"mutator {record.display}() at line {line}",
                    )
                return
            if attr in IO_METHODS:
                self._record(
                    fn, PERFORMS_IO, f"{record.display}() at line {line}"
                )
                return
            if record.targets or attr in PURE_METHODS or attr in BUDGET_METHODS:
                return
            self._record(
                fn,
                UNKNOWN,
                f"unresolved method {record.display}() at line {line}",
            )
            return
        if record.kind == "param-call":
            self._record(
                fn,
                f"{CALLS_PARAM}{record.attr}",
                f"call to parameter {record.attr!r} at line {line}",
            )
            return
        # kind == "dynamic"
        self._record(
            fn, UNKNOWN, f"dynamic call {record.display}() at line {line}"
        )

    # -- propagation ---------------------------------------------------

    def _callable_flags(
        self, fn: FunctionNode, expr: object, effects: Mapping[str, set[str]]
    ) -> set[str]:
        """Effect flags of *calling* the argument expression *expr* from
        inside *fn* (the caller of a function that applies a callable
        parameter)."""
        if not isinstance(expr, ast.AST):
            return {UNKNOWN}  # _MISSING: binding undecidable
        if isinstance(expr, ast.Constant) and expr.value is None:
            return set()  # a None default is guarded before being called
        if isinstance(expr, ast.Lambda):
            flags: set[str] = set()
            for sub in ast.walk(expr.body):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    if isinstance(func, ast.Name) and func.id in PURE_BUILTINS:
                        continue
                    flags.add(UNKNOWN)
            return flags
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in fn.param_set and name not in fn.locals:
                # Passing one's own parameter through: the obligation
                # moves up to *fn*'s callers.
                return {f"{CALLS_PARAM}{name}"}
            info = self.program.modules[fn.module]
            qual = info.functions.get(name)
            if qual is None:
                dotted = info.member_imports.get(name)
                if dotted is not None and dotted in self.program.functions:
                    qual = dotted
            if qual is not None:
                inherited = effects.get(qual, {UNKNOWN})
                return {
                    UNKNOWN if flag.startswith(CALLS_PARAM) else flag
                    for flag in inherited
                }
            if name in PURE_BUILTINS:
                return set()
            if name in IO_BUILTINS:
                return {PERFORMS_IO}
        return {UNKNOWN}

    def _mutation_flags(
        self, fn: FunctionNode, record: CallRecord, target: str, pname: str
    ) -> set[str]:
        """Caller-side flags for a callee that mutates its parameter
        *pname*: locate what the caller bound there and keep the
        mutation only when it lands on caller-visible state."""
        callee = self.program.functions.get(target)
        if callee is None:
            return {MUTATES_ARGS}
        if (
            callee.class_name is not None
            and callee.params
            and pname == callee.params[0]
        ):
            # The mutated parameter is the receiver itself.
            if record.kind == "constructor":
                return set()  # mutating a freshly constructed object
            if record.receiver == "self":
                return {f"{MUTATES_PARAM}{record.receiver_name or 'self'}"}
            if record.receiver == "param" and record.receiver_name:
                return {f"{MUTATES_PARAM}{record.receiver_name}"}
            if record.receiver == "global":
                return {MUTATES_GLOBAL}
            # local/expr receivers: fresh-value policy, invisible upward.
            return set()
        bound = _bound_argument(record, callee, pname)
        if not isinstance(bound, ast.AST):
            return {MUTATES_ARGS}  # binding undecidable: stay conservative
        root = _root_name(bound)
        if root is None:
            return set()  # literal / call result: fresh value
        if root in fn.param_set:
            return {f"{MUTATES_PARAM}{root}"}
        if root in fn.locals:
            return set()
        info = self.program.modules[fn.module]
        if root in info.global_names:
            return {MUTATES_GLOBAL}
        return {MUTATES_ARGS}

    def propagate(self) -> dict[str, set[str]]:
        effects = {q: set(flags) for q, flags in self.intrinsic.items()}
        changed = True
        while changed:  # ungoverned: monotone fixpoint over a finite effect lattice
            changed = False
            for fn in self.program.iter_functions():
                accumulated = effects[fn.qualname]
                before = len(accumulated)
                for record in fn.calls:
                    for target in record.targets:
                        if is_sanctioned(target):
                            continue
                        inherited: set[str] = set()
                        for flag in effects.get(target, ()):
                            if flag.startswith(CALLS_PARAM):
                                callee = self.program.functions.get(target)
                                if callee is None:
                                    inherited.add(UNKNOWN)
                                    continue
                                bound = _bound_argument(
                                    record, callee, flag[len(CALLS_PARAM):]
                                )
                                inherited |= self._callable_flags(
                                    fn, bound, effects
                                )
                            elif flag.startswith(MUTATES_PARAM):
                                inherited |= self._mutation_flags(
                                    fn, record, target, flag[len(MUTATES_PARAM):]
                                )
                            else:
                                inherited.add(flag)
                        if MUTATES_ARGS in inherited and (
                            record.kind == "constructor"
                            or not _passes_caller_state(fn, record)
                        ):
                            inherited.discard(MUTATES_ARGS)
                        new = inherited - accumulated
                        if new:
                            accumulated |= new
                            for effect in new:
                                self.origins[fn.qualname].setdefault(
                                    effect,
                                    f"via call to {target} at line "
                                    f"{record.node.lineno}",
                                )
                if len(accumulated) != before:
                    changed = True
        return effects


def _normalized(flags: set[str]) -> frozenset[str]:
    """Collapse the internal parameterized flags to their public
    counterparts: residual ``calls-param:`` becomes ``unknown`` (effects
    depend on a callable argument) and ``mutates-param:`` becomes
    ``mutates-args``."""
    out: set[str] = set()
    for flag in flags:
        if flag.startswith(CALLS_PARAM):
            out.add(UNKNOWN)
        elif flag.startswith(MUTATES_PARAM):
            out.add(MUTATES_ARGS)
        else:
            out.add(flag)
    return frozenset(out)


def infer_effects(program: Program) -> dict[str, FunctionEffects]:
    """Intrinsic + fixpoint-propagated effects for every program function."""
    inference = _Inference(program)
    for fn in program.iter_functions():
        inference.infer_intrinsic(fn)
    propagated = inference.propagate()
    out: dict[str, FunctionEffects] = {}
    for fn in program.iter_functions():
        effects = _normalized(propagated[fn.qualname])
        origins = dict(inference.origins[fn.qualname])
        for flag in [f for f in origins if f.startswith(CALLS_PARAM)]:
            origins.setdefault(UNKNOWN, origins.pop(flag))
        for flag in [f for f in origins if f.startswith(MUTATES_PARAM)]:
            origins.setdefault(MUTATES_ARGS, origins.pop(flag))
        annotated = fn.annotated_shardable
        out[fn.qualname] = FunctionEffects(
            qualname=fn.qualname,
            intrinsic=_normalized(inference.intrinsic[fn.qualname]),
            effects=effects,
            annotated=annotated,
            certified=annotated and not effects,
            origins=origins,
        )
    return out


#: The checked-in schema every emitted effect report must satisfy
#: (validated with :func:`repro.observability.schema.trace_schema_errors`,
#: which interprets the same JSON Schema subset).
EFFECTS_SCHEMA_PATH = Path(__file__).with_name("effects_schema.json")


def load_effects_schema() -> dict[str, object]:
    with EFFECTS_SCHEMA_PATH.open(encoding="utf-8") as handle:
        schema: dict[str, object] = json.load(handle)
    return schema


def effect_report(program: Program, *, root: str = "src/repro") -> dict[str, object]:
    """JSON-able whole-program effect report (the sharding allowlist).

    Validated against ``src/repro/analysis/effects_schema.json`` by the
    test suite; the future parallel executor consumes
    ``summary.certified_shardable`` as its allowlist.
    """
    results = infer_effects(program)
    functions: list[dict[str, object]] = []
    for fn in program.iter_functions():
        inferred = results[fn.qualname]
        functions.append(
            {
                "qualname": fn.qualname,
                "module": fn.module,
                "path": fn.relpath,
                "line": fn.node.lineno,
                "effects": sorted(inferred.effects),
                "intrinsic": sorted(inferred.intrinsic),
                "annotated_shardable": inferred.annotated,
                "certified_shardable": inferred.certified,
                "sanctioned": is_sanctioned(fn.qualname),
            }
        )
    certified = sorted(
        inferred.qualname for inferred in results.values() if inferred.certified
    )
    annotated = sorted(
        inferred.qualname for inferred in results.values() if inferred.annotated
    )
    return {
        "version": 1,
        "root": root,
        "functions": functions,
        "summary": {
            "functions": len(functions),
            "pure": sum(1 for f in results.values() if f.pure),
            "annotated_shardable": annotated,
            "certified_shardable": certified,
        },
    }
