"""Command-line entry point: ``python -m repro.analysis [paths]``.

Exit codes: 0 — clean (modulo baseline); 1 — new findings; 2 — usage
error.  ``--format json`` emits a machine-readable report for CI.
"""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
