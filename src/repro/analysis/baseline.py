"""Checked-in baseline of grandfathered findings.

A baseline entry acknowledges one existing finding *with a one-line
justification* so the analysis can gate CI on the invariant "no new
violations" without forcing a flag-day cleanup.  Matching is by
:attr:`~repro.analysis.findings.Finding.fingerprint` — (rule, path,
enclosing scope, stripped source line) — so unrelated edits that shift
line numbers do not invalidate entries, while edits to the flagged line
itself do (the finding then resurfaces as *new* and must be re-justified
or fixed).

Baseline entries are consumed multiset-style: two identical findings need
two entries.  Entries that no longer match anything are reported as
*stale* so the baseline shrinks as the code heals.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

Fingerprint = tuple[str, str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    context: str
    snippet: str
    justification: str

    @property
    def fingerprint(self) -> Fingerprint:
        return (self.rule, self.path, self.context, self.snippet)

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "snippet": self.snippet,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        entries = [
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                context=item["context"],
                snippet=item["snippet"],
                justification=item.get("justification", ""),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls, findings: list[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        return cls(
            entries=[
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    context=f.context,
                    snippet=f.snippet,
                    justification=justification,
                )
                for f in findings
            ]
        )


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    new: list[Finding]
    suppressed: list[Finding]
    stale: list[BaselineEntry]


def apply_baseline(findings: list[Finding], baseline: Baseline | None) -> BaselineResult:
    """Split *findings* into new vs. baseline-suppressed; report stale entries."""
    if baseline is None:
        return BaselineResult(new=list(findings), suppressed=[], stale=[])
    budget = Counter(entry.fingerprint for entry in baseline.entries)
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        if budget.get(finding.fingerprint, 0) > 0:
            budget[finding.fingerprint] -= 1
            suppressed.append(finding)
        else:
            new.append(finding)
    stale = [entry for entry in baseline.entries if budget.get(entry.fingerprint, 0) > 0]
    for entry in stale:
        budget[entry.fingerprint] -= 1
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)
