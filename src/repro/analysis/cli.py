"""argparse front end for the repro-lint analysis pass."""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import Baseline, apply_baseline
from repro.analysis.engine import analyze_paths, default_rules, load_contexts

DEFAULT_BASELINE = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: AST- and call-graph-based checker for the "
            "repository's governor, kernel, determinism, and effect "
            "invariants (rules R001-R011)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            f"baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE} if it exists in the current directory)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding as new)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (e.g. R001,R004)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--effects-json",
        metavar="FILE",
        default=None,
        help=(
            "write the machine-readable whole-program effect report (the "
            "parallel-sharding allowlist) to FILE ('-' for stdout) and exit"
        ),
    )
    return parser


def _write_effects_report(paths: list[Path], destination: str) -> int:
    """Build the call graph over *paths* and emit the effect report."""
    from repro.analysis.callgraph import Program
    from repro.analysis.effects import effect_report

    ctxs, parse_errors = load_contexts(paths)
    if parse_errors:
        for finding in parse_errors:
            print(finding.render(), file=sys.stderr)
        return 1
    report = effect_report(
        Program.from_contexts(ctxs),
        root=", ".join(str(p) for p in paths),
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        functions = report["functions"]
        count = len(functions) if isinstance(functions, list) else 0
        Path(destination).write_text(text + "\n", encoding="utf-8")
        print(f"wrote effect report for {count} functions to {destination}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title:28s} [{rule.severity}] {rule.hint}")
        return 0

    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.rule_id in wanted]

    targets = [Path(p) for p in args.paths]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        parser.error(f"no such file or directory: {', '.join(missing)}")

    if args.effects_json is not None:
        return _write_effects_report(targets, args.effects_json)

    findings = analyze_paths(targets, rules=rules)

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline: Baseline | None = None
    if not args.no_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {len(findings)} baseline entries to {baseline_path}")
        return 0

    result = apply_baseline(findings, baseline)

    if args.format == "json":
        report = {
            "version": 1,
            "findings": [f.to_dict() for f in result.new],
            "suppressed": [f.to_dict() for f in result.suppressed],
            "stale_baseline": [e.to_dict() for e in result.stale],
            "summary": {
                "new": len(result.new),
                "suppressed": len(result.suppressed),
                "stale_baseline": len(result.stale),
            },
        }
        print(json.dumps(report, indent=2))
    else:
        for finding in result.new:
            print(finding.render())
            if finding.hint:
                print(f"    hint: {finding.hint}")
        if result.stale:
            print(
                f"error: {len(result.stale)} stale baseline entr"
                f"{'y matches' if len(result.stale) == 1 else 'ies match'} "
                f"nothing anymore — prune {baseline_path} "
                f"(or rerun with --update-baseline)",
                file=sys.stderr,
            )
        summary = (
            f"{len(result.new)} new finding{'s' if len(result.new) != 1 else ''}"
        )
        if result.suppressed:
            summary += f", {len(result.suppressed)} suppressed by baseline"
        print(summary)

    # Stale baseline entries fail the run too: a rotted suppression list
    # hides real findings behind fingerprints that no longer exist.
    return 1 if (result.new or result.stale) else 0
