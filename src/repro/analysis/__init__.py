"""repro-lint: AST-based invariant checking for this repository.

The paper's constructions are worst-case exponential, which is why PR 1
threaded :class:`repro.runtime.Budget` through every closure / determinize
/ inclusion loop and PR 2 split the hot paths into integer-coded kernels
with ``*_reference`` differential oracles.  This package makes those
contracts — plus the determinism and error-taxonomy conventions the
regression suite pins — mechanically checkable on every commit:

========  =========================  ==========================================
Rule      Name                       Invariant
========  =========================  ==========================================
``R001``  governed-loop              worklist/fixpoint loops in governed
                                     packages charge the Budget (or carry an
                                     explicit ``# ungoverned:`` marker)
``R002``  deterministic-iteration    no hash-order iteration where state
                                     numbers are assigned or output is emitted
``R003``  kernel-boundary            frozenset-of-frozensets hot loops stay
                                     inside ``kernels.py`` / ``*_reference``
``R004``  error-taxonomy             no bare/broad excepts; only the
                                     ``repro.errors`` taxonomy crosses the API
``R005``  frozen-mutation            no attribute assignment on frozen
                                     dataclass instances outside sanctioned
                                     factories
========  =========================  ==========================================

Run it as ``python -m repro.analysis [paths]`` (see ``--help``) or use the
pytest-importable API: :func:`analyze_paths` / :func:`analyze_source` plus
:func:`~repro.analysis.baseline.apply_baseline`.  ``docs/ANALYSIS.md`` has
the full catalog, pragma syntax, and baseline workflow.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineResult,
    apply_baseline,
)
from repro.analysis.engine import (
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
    collect_files,
    default_rules,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    ALL_RULES,
    DeterministicIterationRule,
    ErrorTaxonomyRule,
    FrozenMutationRule,
    GovernedLoopRule,
    KernelBoundaryRule,
)

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "DeterministicIterationRule",
    "ErrorTaxonomyRule",
    "Finding",
    "FrozenMutationRule",
    "GovernedLoopRule",
    "KernelBoundaryRule",
    "ModuleContext",
    "Rule",
    "Severity",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "collect_files",
    "default_rules",
]
