"""repro-lint: AST- and call-graph-based invariant checking for this repo.

The paper's constructions are worst-case exponential, which is why PR 1
threaded :class:`repro.runtime.Budget` through every closure / determinize
/ inclusion loop and PR 2 split the hot paths into integer-coded kernels
with ``*_reference`` differential oracles.  This package makes those
contracts — plus the determinism and error-taxonomy conventions the
regression suite pins — mechanically checkable on every commit.

Rules R001–R007 are per-file AST checks.  Rules R008–R011 are
*whole-program*: they run on a call graph built over every analyzed
module (:mod:`repro.analysis.callgraph`) with a flow-insensitive effect
lattice propagated to fixpoint (:mod:`repro.analysis.effects`).

========  =========================  ==========================================
Rule      Name                       Invariant
========  =========================  ==========================================
``R001``  governed-loop              worklist/fixpoint loops in governed
                                     packages charge the Budget (or carry an
                                     explicit ``# ungoverned:`` marker)
``R002``  deterministic-iteration    no hash-order iteration where state
                                     numbers are assigned or output is emitted
``R003``  kernel-boundary            frozenset-of-frozensets hot loops stay
                                     inside ``kernels.py`` / ``*_reference``
``R004``  error-taxonomy             no bare/broad excepts; only the
                                     ``repro.errors`` taxonomy crosses the API
``R005``  frozen-mutation            no attribute assignment on frozen
                                     dataclass instances outside sanctioned
                                     factories
``R006``  api-signature              public construction entry points declare
                                     the governed trio as trailing
                                     keyword-only parameters
``R007``  fault-swallowing           no silently discarded failures; map,
                                     record, or quarantine them
``R008``  governance-escape          no path from a public ``repro.api``/CLI
                                     entry point to an unbudgeted worklist
                                     loop, wherever the loop lives
``R009``  parallel-safety            ``# repro-par: shardable`` functions must
                                     *infer* pure-modulo-budget through the
                                     whole call graph
``R010``  cache-key-completeness     memo-cache entry points key on every
                                     behavior-affecting parameter
``R011``  twin-drift                 ``*_reference`` oracles keep the same
                                     keyword-only governed surface as their
                                     kernel twins
========  =========================  ==========================================

Run it as ``python -m repro.analysis [paths]`` (see ``--help``); pass
``--effects-json FILE`` to emit the machine-readable whole-program effect
report (the parallel-sharding allowlist, validated against
``effects_schema.json``).  The pytest-importable API is
:func:`analyze_paths` / :func:`analyze_source` plus
:func:`~repro.analysis.baseline.apply_baseline`, and the program-level
surface is :class:`~repro.analysis.callgraph.Program` /
:func:`~repro.analysis.effects.infer_effects` /
:func:`~repro.analysis.effects.effect_report`.  ``docs/ANALYSIS.md`` has
the full catalog, pragma syntax, and baseline workflow.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineResult,
    apply_baseline,
)
from repro.analysis.callgraph import FunctionNode, ModuleInfo, Program
from repro.analysis.effects import (
    FunctionEffects,
    effect_report,
    infer_effects,
    load_effects_schema,
)
from repro.analysis.engine import (
    ModuleContext,
    ProgramRule,
    Rule,
    analyze_contexts,
    analyze_paths,
    analyze_source,
    collect_files,
    default_rules,
    load_contexts,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.interproc import (
    PROGRAM_RULES,
    CacheKeyCompletenessRule,
    GovernanceEscapeRule,
    ParallelSafetyRule,
    TwinDriftRule,
)
from repro.analysis.rules import (
    ALL_RULES,
    ApiSignatureRule,
    DeterministicIterationRule,
    ErrorTaxonomyRule,
    FaultSwallowRule,
    FrozenMutationRule,
    GovernedLoopRule,
    KernelBoundaryRule,
)

__all__ = [
    "ALL_RULES",
    "ApiSignatureRule",
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "CacheKeyCompletenessRule",
    "DeterministicIterationRule",
    "ErrorTaxonomyRule",
    "FaultSwallowRule",
    "Finding",
    "FrozenMutationRule",
    "FunctionEffects",
    "FunctionNode",
    "GovernanceEscapeRule",
    "GovernedLoopRule",
    "KernelBoundaryRule",
    "ModuleContext",
    "ModuleInfo",
    "PROGRAM_RULES",
    "ParallelSafetyRule",
    "Program",
    "ProgramRule",
    "Rule",
    "Severity",
    "TwinDriftRule",
    "analyze_contexts",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "collect_files",
    "default_rules",
    "effect_report",
    "infer_effects",
    "load_contexts",
    "load_effects_schema",
]
