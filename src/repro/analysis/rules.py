"""The repro-lint rule catalog (R001–R007).

Each rule encodes one repo-specific invariant that otherwise lives only in
reviewers' heads — see ``docs/ANALYSIS.md`` for the catalog with examples
and the rationale tying each rule back to the PR-1 governor and PR-2
kernel contracts.
"""

from __future__ import annotations

import ast
import builtins
from collections.abc import Iterator

from repro.analysis.engine import ModuleContext, Rule
from repro.analysis.findings import Finding, Severity

#: Packages whose loops run the paper's worst-case-exponential
#: constructions and therefore fall under the PR-1 budget regime.
GOVERNED_DIRS = frozenset({"strings", "tree_automata", "closure", "core"})

#: Budget methods whose presence in a loop body counts as governance.
BUDGET_METHODS = frozenset({"tick", "charge_states", "charge", "check"})

#: Attribute names that are set-typed throughout this codebase (automata
#: and schema state containers).
SET_ATTRS = frozenset({"states", "alphabet", "initials", "finals", "starts", "types"})

#: dict view methods — unordered only insofar as the dict's own insertion
#: order is; flagged in emission contexts where output must be canonical.
DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Consumers whose result is independent of iteration order; comprehensions
#: feeding these directly are exempt from R002's emission-path check.
ORDER_INDEPENDENT_REDUCERS = frozenset(
    {"all", "any", "sum", "min", "max", "len", "set", "frozenset", "sorted", "Counter"}
)

#: Module basenames whose job is emitting canonical output.
EMISSION_MODULES = frozenset({"pretty.py", "text_format.py", "xsd_export.py", "report.py"})

#: Function-name prefixes that mark output-emitting or numbering code.
EMISSION_PREFIXES = (
    "format",
    "render",
    "emit",
    "pretty",
    "write",
    "dump",
    "describe",
    "report",
    "to_",
)

#: Order-insensitive wrappers: iterating a set inside these is fine.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "any", "all", "min", "max"}
)

#: Builtin exceptions that conventionally signal programmer errors and are
#: allowed to cross the public API alongside the repro.errors taxonomy.
ALLOWED_BUILTIN_RAISES = frozenset(
    {
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "NotImplementedError",
        "AssertionError",
        "StopIteration",
        "StopAsyncIteration",
        "SystemExit",
        "KeyboardInterrupt",
    }
)

_BUILTIN_EXCEPTION_NAMES = frozenset(
    name
    for name, value in vars(builtins).items()
    if isinstance(value, type) and issubclass(value, BaseException)
)


def _loop_ancestor(ctx: ModuleContext, node: ast.AST) -> ast.AST | None:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.While, ast.For, ast.AsyncFor)):
            return ancestor
    return None


def _while_ancestor(ctx: ModuleContext, node: ast.AST) -> ast.While | None:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.While):
            return ancestor
    return None


# ----------------------------------------------------------------------
# R001 — governed worklist loops
# ----------------------------------------------------------------------

class GovernedLoopRule(Rule):
    """Worklist/fixpoint ``while`` loops in governed packages must charge
    the ambient :class:`repro.runtime.Budget` (or be marked ungoverned).

    A loop is considered a worklist/fixpoint loop when its test is a bare
    name (``while queue:``, ``while changed:``), an attribute
    (``while frontier.size:``), ``while True:``, a negation, or a boolean
    combination starting with one of those — i.e. when nothing in the test
    syntactically bounds the trip count by the input size.  Bounded scans
    (``while pos < len(text):``) are exempt, as is any loop nested inside
    another loop (the outermost loop carries the charging obligation; inner
    loops amortize into its per-iteration charge).

    Governance is satisfied by a budget method call (``tick`` /
    ``charge_states`` / ``charge`` / ``check``, also via locally-bound
    method names) anywhere in the loop body, or by delegating to a callee
    that accepts a ``budget=`` keyword.
    """

    rule_id = "R001"
    title = "governed-loop"
    severity = Severity.ERROR
    hint = (
        "charge the Budget every iteration (budget.tick()/charge_states()), "
        "delegate to a governed callee with budget=..., or mark the loop "
        "with `# ungoverned: <reason>`"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # type: ignore[override]
        if not ctx.in_dirs(GOVERNED_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not self._is_worklist_test(node.test):
                continue
            if _loop_ancestor(ctx, node) is not None:
                continue  # inner loops amortize into the outer loop's charge
            if self._is_governed(node):
                continue
            yield self.finding(
                ctx,
                node,
                "worklist loop runs without charging the resource budget",
            )

    @staticmethod
    def _is_worklist_test(test: ast.expr) -> bool:
        if isinstance(test, ast.Name):
            return True
        if isinstance(test, ast.Attribute):
            return True
        if isinstance(test, ast.Constant) and test.value is True:
            return True
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return GovernedLoopRule._is_worklist_test(test.operand)
        if isinstance(test, ast.BoolOp) and test.values:
            return GovernedLoopRule._is_worklist_test(test.values[0])
        return False

    @staticmethod
    def _is_governed(loop: ast.While) -> bool:
        for child in ast.walk(loop):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            if isinstance(func, ast.Attribute) and func.attr in BUDGET_METHODS:
                return True
            if isinstance(func, ast.Name) and func.id in BUDGET_METHODS:
                return True
            if any(kw.arg == "budget" for kw in child.keywords):
                return True
        return False


# ----------------------------------------------------------------------
# R002 — deterministic iteration in numbering/output code
# ----------------------------------------------------------------------

class DeterministicIterationRule(Rule):
    """Code that assigns state numbers or emits output must not iterate
    sets in hash order.

    Two patterns are flagged:

    * ``enumerate(<set-like>)`` anywhere — enumeration indices become
      state numbers, and hash order silently varies across runs and
      Python versions, breaking the regression-pinned numberings.
    * iteration over a set-like value (or a dict view) in *emission*
      code — ``for``/list- and generator-comprehensions and
      ``str.join`` arguments inside output-formatting functions — unless
      wrapped in ``sorted(...)``.

    "Set-like" covers set/frozenset literals, comprehensions and calls,
    unions/intersections of those, names locally bound to them, and the
    codebase's set-typed attributes (``.states``, ``.finals``, ...).
    Set/dict comprehensions *producing* unordered containers are
    order-insensitive consumers and stay exempt.
    """

    rule_id = "R002"
    title = "deterministic-iteration"
    severity = Severity.ERROR
    hint = "wrap the iterable in sorted(..., key=repr) or iterate a deterministically ordered container"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # type: ignore[override]
        set_bindings = self._collect_set_bindings(ctx)
        for node in ast.walk(ctx.tree):
            # Pattern 1: enumerate over a set-like value, anywhere.
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "enumerate"
                and node.args
                and self._is_set_like(node.args[0], set_bindings)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "enumerate() over a set assigns nondeterministic indices",
                )
                continue
            # Pattern 2: unsorted iteration in emission code.
            if not self._in_emission_context(ctx, node):
                continue
            if self._feeds_order_independent_reducer(ctx, node):
                continue
            for iterable in self._ordered_iteration_sites(node):
                if self._is_set_like(iterable, set_bindings) or self._is_dict_view(
                    iterable
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "output path iterates an unordered container without sorted()",
                    )

    # -- emission context ----------------------------------------------

    @staticmethod
    def _in_emission_context(ctx: ModuleContext, node: ast.AST) -> bool:
        if _basename(ctx.relpath) in EMISSION_MODULES:
            return True
        func = ctx.enclosing_function(node)
        if func is None:
            return False
        name = func.name
        return (
            name in ("__str__", "__repr__", "__format__")
            or name.startswith(EMISSION_PREFIXES)
            or name.lstrip("_").startswith(EMISSION_PREFIXES)
        )

    @staticmethod
    def _feeds_order_independent_reducer(ctx: ModuleContext, node: ast.AST) -> bool:
        """True when *node* is a comprehension consumed by a reducer whose
        result does not depend on iteration order (``all``, ``sum``, ...) or
        by a ``sorted()`` that restores determinism."""
        if not isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return False
        parent = ctx.parent(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INDEPENDENT_REDUCERS
            and parent.args
            and parent.args[0] is node
        )

    # -- iteration sites ------------------------------------------------

    @staticmethod
    def _ordered_iteration_sites(node: ast.AST) -> list[ast.expr]:
        """Expressions *node* iterates in a way where order reaches output."""
        sites: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            sites.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            sites.extend(gen.iter for gen in node.generators)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
        ):
            sites.append(node.args[0])
        return sites

    # -- set-likeness ---------------------------------------------------

    @classmethod
    def _collect_set_bindings(cls, ctx: ModuleContext) -> set[str]:
        """Names assigned from an obviously set-valued expression."""
        bindings: set[str] = set()
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            if cls._is_set_like(value, bindings):
                for target in targets:
                    if isinstance(target, ast.Name):
                        bindings.add(target.id)
        return bindings

    @classmethod
    def _is_set_like(cls, expr: ast.expr, bindings: set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in bindings
        if isinstance(expr, ast.Attribute):
            return expr.attr in SET_ATTRS
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return cls._is_set_like(func.value, bindings)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return cls._is_set_like(expr.left, bindings) or cls._is_set_like(
                expr.right, bindings
            )
        return False

    @staticmethod
    def _is_dict_view(expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in DICT_VIEW_METHODS
            and not expr.args
        )


def _basename(relpath: str) -> str:
    """Basename of a ``/``-separated relative path."""
    return relpath.rsplit("/", 1)[-1]


# ----------------------------------------------------------------------
# R003 — kernel boundary
# ----------------------------------------------------------------------

class KernelBoundaryRule(Rule):
    """Hot worklist loops must not allocate frozensets per iteration.

    PR 2 moved the library's hot loops onto integer-coded bitmask kernels
    precisely because frozenset-of-frozensets state makes every membership
    test re-hash whole subsets.  Inside the governed packages, a
    ``frozenset(...)`` allocation lexically inside a ``while`` loop body is
    therefore forbidden outside ``kernels.py``, ``*_reference``
    differential oracles, and checkpoint ``*_snapshot`` helpers (which
    exist to decode kernel state back to frozensets at trip time).
    """

    rule_id = "R003"
    title = "kernel-boundary"
    severity = Severity.WARNING
    hint = (
        "integer-code the loop state (move the hot path into "
        "repro.strings.kernels) or rename the function to *_reference if "
        "it is a differential-testing oracle"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # type: ignore[override]
        if not ctx.in_dirs(GOVERNED_DIRS):
            return
        if _basename(ctx.relpath) == "kernels.py":
            return
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "frozenset"
                and node.args
            ):
                continue
            if _while_ancestor(ctx, node) is None:
                continue
            func = ctx.enclosing_function(node)
            if func is not None and (
                func.name.endswith("_reference")
                or func.name.endswith("_snapshot")
                or func.name.lstrip("_").startswith("snapshot")
            ):
                continue
            yield self.finding(
                ctx,
                node,
                "frozenset allocation inside a worklist loop outside the kernel boundary",
            )


# ----------------------------------------------------------------------
# R004 — error taxonomy
# ----------------------------------------------------------------------

class ErrorTaxonomyRule(Rule):
    """Only the :mod:`repro.errors` taxonomy (plus conventional builtin
    programmer-error types) crosses the public API.

    Flags bare ``except:``, ``except Exception``/``BaseException`` (single
    or inside a tuple), and ``raise`` of builtin exceptions outside the
    allowlist (``Exception``, ``RuntimeError``, ``OSError``, ... must be
    wrapped in a :class:`repro.errors.ReproError` subclass instead).
    Raising names the rule cannot resolve statically (locally defined
    classes, helper factories, imported repro errors) is allowed — mypy
    owns those.
    """

    rule_id = "R004"
    title = "error-taxonomy"
    severity = Severity.ERROR
    hint = (
        "catch the narrowest matching repro.errors type (or the specific "
        "stdlib error) and raise only repro.errors subclasses across the API"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # type: ignore[override]
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)

    def _check_handler(
        self, ctx: ModuleContext, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(ctx, node, "bare except: swallows every error")
            return
        names: list[ast.expr] = (
            list(node.type.elts) if isinstance(node.type, ast.Tuple) else [node.type]
        )
        for expr in names:
            name = _terminal_name(expr)
            if name in ("Exception", "BaseException"):
                yield self.finding(
                    ctx,
                    node,
                    f"broad `except {name}` hides unrelated failures",
                )

    def _check_raise(self, ctx: ModuleContext, node: ast.Raise) -> Iterator[Finding]:
        if node.exc is None:
            return  # bare re-raise
        expr = node.exc
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = _terminal_name(expr)
        if name is None:
            return
        if name in ALLOWED_BUILTIN_RAISES:
            return
        if name in _BUILTIN_EXCEPTION_NAMES:
            yield self.finding(
                ctx,
                node,
                f"raises builtin {name}; wrap it in a repro.errors type",
            )


def _terminal_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


# ----------------------------------------------------------------------
# R005 — frozen dataclass mutation
# ----------------------------------------------------------------------

class FrozenMutationRule(Rule):
    """No attribute assignment on frozen dataclass instances.

    Frozen dataclasses are this library's value objects (checkpoints,
    progress snapshots, regex nodes); mutating one corrupts hashes that
    memo caches and interning tables already hold.  The rule flags:

    * ``self.attr = ...`` inside methods of a frozen dataclass (even in
      ``__post_init__`` this raises at runtime — use
      ``object.__setattr__``);
    * ``object.__setattr__(...)`` outside ``__post_init__`` / ``__new__``
      (the only sanctioned factory contexts);
    * ``name.attr = ...`` where *name* is locally bound to a frozen
      dataclass constructor call in the same function.
    """

    rule_id = "R005"
    title = "frozen-mutation"
    severity = Severity.ERROR
    hint = (
        "build a new instance (dataclasses.replace) instead of mutating; "
        "factories belong in __post_init__ via object.__setattr__"
    )

    _FACTORY_METHODS = frozenset({"__post_init__", "__new__"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # type: ignore[override]
        frozen_classes = self._frozen_class_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name in frozen_classes:
                yield from self._check_frozen_methods(ctx, node)
            elif isinstance(node, ast.Call) and _is_object_setattr(node):
                func = ctx.enclosing_function(node)
                if func is None or func.name not in self._FACTORY_METHODS:
                    yield self.finding(
                        ctx,
                        node,
                        "object.__setattr__ outside a __post_init__/__new__ factory",
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_local_instances(ctx, node, frozen_classes)

    @staticmethod
    def _frozen_class_names(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if not isinstance(decorator, ast.Call):
                    continue
                dec_name = _terminal_name(decorator.func)
                if dec_name != "dataclass":
                    continue
                for kw in decorator.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        names.add(node.name)
        return names

    def _check_frozen_methods(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                for target in _assignment_targets(node):
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"direct attribute assignment in frozen dataclass "
                            f"{cls.name}.{method.name}",
                        )

    def _check_local_instances(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        frozen_classes: set[str],
    ) -> Iterator[Finding]:
        if not frozen_classes:
            return
        instances: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = _terminal_name(node.value.func)
                if callee in frozen_classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            instances.add(target.id)
        if not instances:
            return
        for node in ast.walk(func):
            for target in _assignment_targets(node):
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in instances
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"attribute assignment on frozen dataclass instance "
                        f"{target.value.id!r}",
                    )


# ----------------------------------------------------------------------
# R006 — uniform governed keyword surface
# ----------------------------------------------------------------------

#: Directories whose public functions form the governed API surface
#: normalized by R006 (plus the ``repro/api.py`` facade).
API_SURFACE_DIRS = frozenset({"core", "service"})


class ApiSignatureRule(Rule):
    """Governed public entry points expose a uniform keyword surface.

    Every public function in :mod:`repro.core` and :mod:`repro.service`
    (and the :mod:`repro.api` facade) that participates in governance —
    i.e. declares a ``budget`` parameter — must accept the full trailing
    trio ``*, budget=None, checkpoint=None, trace=None``, all
    keyword-only and all defaulting to ``None``.  Callers then never
    need to know which construction happens to support resumption or
    tracing: the keywords are always legal, and ``None`` always means
    "resolve the ambient context default".

    The surface covers module-level functions *and* public methods of
    public module-level classes — handle/service objects like
    ``CompiledSchema`` and ``ValidationService`` carry the governed
    surface on their methods.  Nested helpers, underscore-prefixed
    functions and methods, and methods of private classes manage their
    own (private) surface and are exempt.
    """

    rule_id = "R006"
    title = "api-signature"
    severity = Severity.ERROR
    hint = (
        "declare the governed trio as trailing keyword-only parameters: "
        "`*, budget=None, checkpoint=None, trace=None`"
    )

    _REQUIRED = ("budget", "checkpoint", "trace")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # type: ignore[override]
        if not (
            ctx.in_dirs(API_SURFACE_DIRS) or _basename(ctx.relpath) == "api.py"
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            parent = ctx.parent(node)
            if isinstance(parent, ast.ClassDef):
                if parent.name.startswith("_") or not isinstance(
                    ctx.parent(parent), ast.Module
                ):
                    continue  # private or nested class: private surface
            elif not isinstance(parent, ast.Module):
                continue  # nested helpers: private surface
            positional = {
                arg.arg for arg in node.args.posonlyargs + node.args.args
            }
            keyword_only = {
                arg.arg: default
                for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
            }
            if "budget" not in positional and "budget" not in keyword_only:
                continue  # ungoverned entry point: surface is its own business
            for name in self._REQUIRED:
                if name in positional:
                    yield self.finding(
                        ctx,
                        node,
                        f"governed parameter {name!r} of {node.name}() must be "
                        "keyword-only",
                    )
                    continue
                if name not in keyword_only:
                    yield self.finding(
                        ctx,
                        node,
                        f"governed entry point {node.name}() is missing "
                        f"keyword-only parameter {name!r}",
                    )
                    continue
                default = keyword_only[name]
                if not (
                    isinstance(default, ast.Constant) and default.value is None
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"governed parameter {name!r} of {node.name}() must "
                        "default to None",
                    )


# ----------------------------------------------------------------------
# R007 — fault swallowing
# ----------------------------------------------------------------------

#: Exception types that may be silently discarded: optional-dependency
#: gating and iteration-protocol plumbing, where the exception *is* the
#: signal and there is nothing to record.
SWALLOW_ALLOWED = frozenset(
    {
        "ImportError",
        "ModuleNotFoundError",
        "StopIteration",
        "StopAsyncIteration",
        "GeneratorExit",
        "CancelledError",
    }
)

#: Statement types that leave no trace of the caught exception.
_TRIVIAL_STMTS = (ast.Pass, ast.Continue, ast.Break)


class FaultSwallowRule(Rule):
    """Except handlers must not silently discard non-taxonomy failures.

    The chaos harness's core invariant — a fault either surfaces as a
    taxonomy error or the run degrades *visibly* (counted, quarantined,
    recomputed) — dies quietly at any ``except SomeError: pass``.  The
    rule flags a handler when **both** hold:

    * it catches at least one type outside the :mod:`repro.errors`
      taxonomy (including local subclasses of it) and outside the
      optional-dependency/iteration-protocol allowlist
      (:data:`SWALLOW_ALLOWED`); catching a taxonomy error to degrade
      is a sanctioned pattern and stays exempt;
    * its body leaves no trace of the failure: nothing but ``pass`` /
      ``continue`` / ``break`` / bare constants — no re-raise, no
      counter bump, no logging, no mapping to a result value.

    Bare ``except:`` and broad ``except Exception`` are R004's business
    and are not double-reported here.  The finding anchors on the
    swallowing statement, so a justified site suppresses with
    ``# repro-lint: disable=R007 -- <reason>`` on that line (see the
    best-effort cleanup paths in ``repro/cache/store.py``).
    """

    rule_id = "R007"
    title = "fault-swallowing"
    severity = Severity.ERROR
    hint = (
        "record the failure (counter, quarantine, log) or map it to a "
        "result value; silent discard hides real faults — suppress a "
        "justified best-effort site with `# repro-lint: disable=R007 -- reason`"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:  # type: ignore[override]
        taxonomy = _taxonomy_names() | self._local_taxonomy_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                continue  # bare except: R004 owns it
            swallowed = self._swallowed_names(node, taxonomy)
            if not swallowed:
                continue
            if not self._body_is_trivial(node.body):
                continue
            anchor = node.body[0] if node.body else node
            yield self.finding(
                ctx,
                anchor,
                f"handler swallows {', '.join(swallowed)} without recording "
                "the failure",
            )

    @staticmethod
    def _swallowed_names(node: ast.ExceptHandler, taxonomy: frozenset[str] | set[str]) -> list[str]:
        exprs: list[ast.expr] = (
            list(node.type.elts) if isinstance(node.type, ast.Tuple) else [node.type]  # type: ignore[union-attr]
        )
        names: list[str] = []
        for expr in exprs:
            name = _terminal_name(expr)
            if name is None:
                continue
            if name in ("Exception", "BaseException"):
                continue  # R004 owns broad handlers
            if name in taxonomy or name in SWALLOW_ALLOWED:
                continue
            names.append(name)
        return names

    @staticmethod
    def _body_is_trivial(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, _TRIVIAL_STMTS):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True

    @staticmethod
    def _local_taxonomy_names(ctx: ModuleContext) -> set[str]:
        """Classes defined in this module that subclass the taxonomy."""
        taxonomy = set(_taxonomy_names())
        grew = True
        while grew:  # ungoverned: grows monotonically, bounded by module classes
            grew = False
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.ClassDef) or node.name in taxonomy:
                    continue
                if any(_terminal_name(base) in taxonomy for base in node.bases):
                    taxonomy.add(node.name)
                    grew = True
        return taxonomy


def _taxonomy_names() -> frozenset[str]:
    """Names of every :class:`repro.errors.ReproError` subclass (cached)."""
    global _TAXONOMY_CACHE
    if _TAXONOMY_CACHE is None:
        from repro import errors

        _TAXONOMY_CACHE = frozenset(
            name
            for name, value in vars(errors).items()
            if isinstance(value, type) and issubclass(value, errors.ReproError)
        )
    return _TAXONOMY_CACHE


_TAXONOMY_CACHE: frozenset[str] | None = None


def _assignment_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, ast.AugAssign):
        return [node.target]
    if isinstance(node, ast.AnnAssign):
        return [node.target]
    return []


def _is_object_setattr(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
    )


#: Registry consumed by :func:`repro.analysis.engine.default_rules`.
ALL_RULES: tuple[type[Rule], ...] = (
    GovernedLoopRule,
    DeterministicIterationRule,
    KernelBoundaryRule,
    ErrorTaxonomyRule,
    FrozenMutationRule,
    ApiSignatureRule,
    FaultSwallowRule,
)
