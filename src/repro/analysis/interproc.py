"""Interprocedural rules R008–R011 (whole-program pass).

These rules run over the :class:`repro.analysis.callgraph.Program` built
from every analyzed module, closing the gaps the per-file rules
structurally cannot see:

========  =======================  =======================================
Rule      Name                     Invariant
========  =======================  =======================================
``R008``  governance-escape        no path from a public ``repro.api`` /
                                   CLI entry point reaches an ungoverned
                                   worklist loop outside the R001 dirs
``R009``  parallel-safety          ``# repro-par: shardable`` functions
                                   transitively infer pure-modulo-budget
``R010``  cache-key-completeness   every memo-cache entry point's key
                                   reaches all behavior-affecting params
``R011``  twin-drift               ``*_reference`` oracles keep the same
                                   governed keyword surface as their twin
========  =======================  =======================================
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.callgraph import FunctionNode, Program
from repro.analysis.effects import infer_effects
from repro.analysis.engine import ProgramRule
from repro.analysis.findings import Finding
from repro.analysis.rules import (
    GOVERNED_DIRS,
    GovernedLoopRule,
    _basename,
    _loop_ancestor,
)

#: Parameters that are governed plumbing, never part of a cache key.
GOVERNED_TRIO = ("budget", "checkpoint", "trace")

#: Module basenames whose ``_memoized`` call sites R010 audits.
CACHE_MODULE_BASENAMES = frozenset({"kernels.py", "schema_guided.py"})


# ----------------------------------------------------------------------
# R008 — governance escape
# ----------------------------------------------------------------------

class GovernanceEscapeRule(ProgramRule):
    """A public entry point must not reach an ungoverned worklist loop.

    R001 already forces loops *inside* the governed packages
    (strings/tree_automata/closure/core) to charge the budget.  This rule
    covers everywhere else: starting from the public functions of
    ``api.py`` / ``cli.py`` modules it walks the call graph (including
    address-taken callbacks) and flags any reachable worklist loop that
    neither charges a budget nor delegates with ``budget=``.  Loops that
    are intentionally outside the governor carry the usual
    ``# ungoverned: reason`` pragma, which silences R008 exactly like
    R001.
    """

    rule_id = "R008"
    title = "governance-escape"
    hint = (
        "thread budget= through the call chain, charge inside the loop, "
        "or mark it '# ungoverned: reason'"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        entries = program.entry_points()
        if not entries:
            return
        reaching: dict[str, set[str]] = {}
        for entry in sorted(entries):
            for qualname in program.reachable_from([entry]):
                reaching.setdefault(qualname, set()).add(entry)
        for qualname in sorted(reaching):
            fn = program.functions[qualname]
            if fn.ctx.in_dirs(GOVERNED_DIRS):
                continue  # R001's jurisdiction
            for loop in ast.walk(fn.node):
                if not isinstance(loop, ast.While):
                    continue
                if not GovernedLoopRule._is_worklist_test(loop.test):
                    continue
                if _loop_ancestor(fn.ctx, loop) is not None:
                    continue  # inner loops amortize into the outer charge
                if GovernedLoopRule._is_governed(loop):
                    continue
                entry_names = ", ".join(
                    sorted(e.rsplit(".", 1)[-1] for e in reaching[qualname])
                )
                yield self.finding(
                    fn.ctx,
                    loop,
                    "worklist loop is reachable from public entry point(s) "
                    f"{entry_names} but runs without budget governance",
                )


# ----------------------------------------------------------------------
# R009 — parallel safety
# ----------------------------------------------------------------------

class ParallelSafetyRule(ProgramRule):
    """``# repro-par: shardable`` functions must infer pure-modulo-budget.

    The annotation is a *claim* the future process-parallel executor
    will rely on: the function may charge budgets, open spans, and go
    through the sanctioned cache accessors, but must not write module
    globals, read unkeyed ContextVars, mutate its arguments, perform
    I/O, or call anything the analysis cannot resolve.  The effect
    report (``--effects-json``) certifies exactly the annotated
    functions whose inferred effect set is empty.
    """

    rule_id = "R009"
    title = "parallel-safety"
    hint = (
        "remove the effect (or the '# repro-par: shardable' annotation); "
        "see the origins listed in the message"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        results = infer_effects(program)
        for fn in program.iter_functions():
            if not fn.annotated_shardable:
                continue
            inferred = results[fn.qualname]
            if not inferred.effects:
                continue
            details = "; ".join(
                f"{effect} [{inferred.origins.get(effect, 'propagated')}]"
                for effect in sorted(inferred.effects)
            )
            yield self.finding(
                fn.ctx,
                fn.node,
                "function is annotated '# repro-par: shardable' but infers "
                f"effects: {details}",
            )


# ----------------------------------------------------------------------
# R010 — cache-key completeness
# ----------------------------------------------------------------------

class CacheKeyCompletenessRule(ProgramRule):
    """Every memo-cache entry point's key must cover its parameters.

    A ``_memoized(cache, key, build, budget)`` call site whose *key*
    expression does not (transitively, through local assignments) depend
    on some behavior-affecting parameter of the enclosing function will
    serve stale results when exactly that parameter changes.  The
    governed trio (budget/checkpoint/trace) never belongs in a key —
    caching is behavior-transparent with respect to governance by
    design.
    """

    rule_id = "R010"
    title = "cache-key-completeness"
    hint = (
        "derive the key from every behavior-affecting parameter, or make "
        "the parameter's irrelevance explicit with "
        "'# repro-lint: disable=R010 -- reason'"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        for fn in program.iter_functions():
            if _basename(fn.relpath) not in CACHE_MODULE_BASENAMES:
                continue
            for record in fn.calls:
                key_expr = self._memoized_key(record.node)
                if key_expr is None:
                    continue
                missing = self._missing_params(fn, key_expr)
                if missing:
                    yield self.finding(
                        fn.ctx,
                        record.node,
                        "memo-cache key never reads parameter(s) "
                        f"{', '.join(sorted(missing))} — entries would be "
                        "shared across calls that differ in them",
                    )

    @staticmethod
    def _memoized_key(call: ast.Call) -> ast.expr | None:
        func = call.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "_memoized":
            return None
        if len(call.args) >= 2:
            return call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "key":
                return keyword.value
        return None

    @staticmethod
    def _missing_params(fn: FunctionNode, key_expr: ast.expr) -> set[str]:
        required = {
            name
            for name in fn.param_set
            if name not in GOVERNED_TRIO and name != "self"
        }
        if not required:
            return set()
        flows: dict[str, set[str]] = {}

        def feed(target: ast.expr, source: ast.expr | None) -> None:
            if source is None:
                return
            names = {
                leaf.id
                for leaf in ast.walk(source)
                if isinstance(leaf, ast.Name)
            }
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    flows.setdefault(leaf.id, set()).update(names)

        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    feed(target, sub.value)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                feed(sub.target, sub.value)
            elif isinstance(sub, ast.NamedExpr):
                feed(sub.target, sub.value)
            elif isinstance(sub, ast.comprehension):
                feed(sub.target, sub.iter)
            elif isinstance(sub, ast.For):
                feed(sub.target, sub.iter)
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                feed(sub.optional_vars, sub.context_expr)
        reached = {
            leaf.id for leaf in ast.walk(key_expr) if isinstance(leaf, ast.Name)
        }
        queue = list(reached)
        while queue:  # ungoverned: linear closure over local assignments
            name = queue.pop()
            for source in flows.get(name, ()):
                if source not in reached:
                    reached.add(source)
                    queue.append(source)
        return required - reached


# ----------------------------------------------------------------------
# R011 — twin drift
# ----------------------------------------------------------------------

class TwinDriftRule(ProgramRule):
    """``*_reference`` oracles must keep their twin's governed surface.

    The differential test harness calls kernel and reference with the
    same governed keywords (``budget`` / ``checkpoint`` / ``trace``); a
    reference that silently drops one stops exercising the same
    contract and the comparison goes stale.  Both twins must expose the
    same subset of the trio, each keyword-only defaulting to ``None``.
    """

    rule_id = "R011"
    title = "twin-drift"
    hint = (
        "give the reference the same keyword-only governed parameters "
        "(budget/checkpoint/trace, default None) as its kernel twin"
    )

    def check_program(self, program: Program) -> Iterator[Finding]:
        suffix = "_reference"
        for fn in program.iter_functions():
            if not fn.name.endswith(suffix) or fn.name == suffix:
                continue
            base = self._twin(program, fn, fn.name[: -len(suffix)])
            if base is None:
                continue
            problems: list[str] = []
            governed = frozenset(GOVERNED_TRIO)
            ref_surface = fn.param_set & governed
            base_surface = base.param_set & governed
            for name in sorted(base_surface - ref_surface):
                problems.append(f"missing {name}= (its twin {base.name} has it)")
            for name in sorted(ref_surface - base_surface):
                problems.append(f"has {name}= its twin {base.name} lacks")
            for twin, label in ((fn, "reference"), (base, "kernel")):
                for name in sorted(twin.param_set & governed):
                    if name not in twin.keyword_only_none:
                        problems.append(
                            f"{label} parameter {name}= must be keyword-only "
                            "with default None"
                        )
            if problems:
                yield self.finding(
                    fn.ctx,
                    fn.node,
                    f"governed surface drifted from twin {base.name}: "
                    + "; ".join(problems),
                )

    @staticmethod
    def _twin(
        program: Program, fn: FunctionNode, base_name: str
    ) -> FunctionNode | None:
        info = program.modules[fn.module]
        if fn.class_name is not None:
            qualname = info.classes.get(fn.class_name, {}).get(base_name)
        else:
            qualname = info.functions.get(base_name)
        return program.functions.get(qualname) if qualname else None


PROGRAM_RULES: tuple[type[ProgramRule], ...] = (
    GovernanceEscapeRule,
    ParallelSafetyRule,
    CacheKeyCompletenessRule,
    TwinDriftRule,
)
