"""The single monotonic clock source for all deadline math.

Every deadline in the governor (``Budget.started_at``, ``Budget.deadline``,
``remaining_time``) must be computed against *one* clock, and that clock
must be monotonic: mixing ``time.time()`` (wall clock, steppable by NTP or
an operator) with ``time.monotonic()`` silently corrupts deadline
arithmetic — a backwards wall-clock step would extend a deadline, a
forwards step would trip it early.  This module is the audit point: the
governor imports :func:`now` from here and nowhere else, so a grep for
``time.time``/``time.monotonic`` inside :mod:`repro.runtime` stays empty.

Tests exercise skew scenarios through :func:`install` /
:func:`uninstall`, which swap the underlying callable for a fake —
``tests/runtime/test_clock.py`` pins the regression: wall-clock jumps
must never move a deadline, and a monotonic fake must trip deadlines
deterministically without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["install", "now", "uninstall"]

#: The active clock callable.  Production: :func:`time.monotonic`.  Never
#: read this directly — call :func:`now` so fakes installed mid-flight are
#: honored.
_SOURCE: Callable[[], float] = time.monotonic


def now() -> float:
    """Seconds on the repro monotonic clock (arbitrary epoch).

    Values are only meaningful as differences against other :func:`now`
    readings; they are never comparable to ``time.time()`` timestamps.
    """
    return _SOURCE()


def install(source: Callable[[], float]) -> Callable[[], float]:
    """Swap the clock source (tests only); returns the previous source.

    The replacement must be monotonic over the lifetime of every
    outstanding :class:`~repro.runtime.budget.Budget` — deadlines captured
    under the old source stay live.
    """
    global _SOURCE
    previous = _SOURCE
    _SOURCE = source
    return previous


def uninstall(previous: Callable[[], float] | None = None) -> None:
    """Restore *previous* (or the real monotonic clock) as the source."""
    global _SOURCE
    _SOURCE = previous if previous is not None else time.monotonic
