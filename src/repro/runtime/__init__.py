"""Resource governance for worst-case-exponential constructions.

See :mod:`repro.runtime.budget` for the model and
``docs/ROBUSTNESS.md`` for the degradation ladder.  Typical use::

    from repro.runtime import Budget
    from repro import minimal_upper_approximation

    with Budget(timeout=1.0, max_states=10_000):
        xsd = minimal_upper_approximation(hostile_edtd)

or explicitly::

    xsd = minimal_upper_approximation(hostile_edtd, budget=Budget(timeout=1.0))
"""

from repro.errors import BudgetExceededError
from repro.runtime.budget import (
    Budget,
    BudgetProgress,
    CancellationToken,
    budget_phase,
    current_budget,
    resolve_budget,
)

__all__ = [
    "Budget",
    "BudgetExceededError",
    "BudgetProgress",
    "CancellationToken",
    "budget_phase",
    "current_budget",
    "resolve_budget",
]
