"""Resource governor for the worst-case-exponential constructions.

The paper's central algorithms are *deliberately* exponential in the worst
case — Construction 3.1 is a subset construction, and
:func:`repro.families.hard.theorem_3_2_family` triggers the ``2^n`` blow-up
on purpose.  A service accepting untrusted schemas therefore needs every
hot loop to answer three questions continuously:

1. *Am I still allowed to run?* (wall-clock deadline, cooperative
   cancellation, optional memory watermark)
2. *Am I still within my size budget?* (max states materialized, max
   abstract steps executed)
3. *If not — how far did I get?* (partial progress for error reports and
   resumable checkpoints)

:class:`Budget` answers all three.  It is threaded through the library in
two complementary ways:

* **explicit parameter** — every governed entry point accepts
  ``budget=...``;
* **context-manager default** — ``with Budget(timeout=1.0):`` installs the
  budget for every governed call in the dynamic extent (via a
  :class:`contextvars.ContextVar`, so it composes with threads and asyncio
  tasks).

Exhaustion raises :class:`BudgetExceededError` carrying a
:class:`BudgetProgress` snapshot (states explored, steps, frontier size,
elapsed time, phase) and — where the interrupted construction supports it —
a resumable checkpoint.

Overhead discipline: ungoverned code paths pay a single ``is None`` test
per loop iteration (callers resolve the budget once and guard each call
site with ``if budget is not None``); governed paths pay an integer
compare per tick, with the expensive checks (``time.monotonic``,
cancellation, memory) amortized to every ``check_interval`` ticks.
"""

from __future__ import annotations

import threading
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Any

from repro import faults as _faults
from repro import observability as _obs
from repro.errors import BudgetExceededError, ReproError
from repro.runtime import clock as _clock

_ACTIVE: ContextVar["Budget | None"] = ContextVar("repro_budget", default=None)


@dataclass(frozen=True)
class BudgetProgress:
    """Snapshot of how far a governed construction got.

    Attached to every :class:`BudgetExceededError` so callers can report
    *why* the budget tripped and *how far* the computation progressed.
    """

    states_explored: int
    steps: int
    frontier_size: int
    elapsed_seconds: float
    phase: str | None = None

    def describe(self) -> str:
        parts = [
            f"{self.states_explored} states explored",
            f"{self.steps} steps",
            f"frontier {self.frontier_size}",
            f"{self.elapsed_seconds:.3f}s elapsed",
        ]
        if self.phase:
            parts.append(f"phase {self.phase!r}")
        return ", ".join(parts)


class CancellationToken:
    """Cooperative cancellation: thread-safe, cancel-once, never un-cancel.

    Share one token between the thread running a governed construction and
    a controller (signal handler, request-timeout watchdog, user pressing
    Ctrl-C in a server UI); the construction stops at its next budget
    check.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<CancellationToken {state}>"


def _max_rss_bytes() -> int | None:
    """Current high-watermark RSS in bytes, or ``None`` if unavailable."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes; normalize the common case.
    import sys

    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return usage
    return usage * 1024


class Budget:
    """Resource budget for worst-case-exponential constructions.

    Parameters
    ----------
    max_states:
        Maximum number of *states* (subset states, product pairs, closure
        trees, ...) any single governed construction may materialize.
    max_steps:
        Maximum number of abstract steps (transitions computed, exchanges
        attempted, refinement comparisons) across the budget's lifetime.
    timeout:
        Wall-clock allowance in seconds, measured from construction of the
        budget (equivalently: ``deadline = now + timeout``).
    deadline:
        Absolute deadline on the repro monotonic clock
        (:func:`repro.runtime.clock.now` — same epoch as
        :func:`time.monotonic`); overrides *timeout* when both are given.
        Wall-clock (``time.time``) values are meaningless here.
    cancel:
        A :class:`CancellationToken` checked cooperatively.
    max_memory_bytes:
        Optional high-watermark on the process RSS.  This is a *watermark*,
        not an allocator limit — it trips once the process as a whole has
        grown past the value.
    check_interval:
        How many ticks elapse between expensive checks (clock /
        cancellation / memory).  Must be a power of two.

    A budget with no limits at all is legal and never trips; it still
    counts, which makes it useful for metering.
    """

    __slots__ = (
        "max_states",
        "max_steps",
        "deadline",
        "cancel",
        "max_memory_bytes",
        "states",
        "steps",
        "started_at",
        "phase",
        "_mask",
        "_token",
    )

    def __init__(
        self,
        *,
        max_states: int | None = None,
        max_steps: int | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
        cancel: CancellationToken | None = None,
        max_memory_bytes: int | None = None,
        check_interval: int = 1024,
    ) -> None:
        if check_interval < 1 or check_interval & (check_interval - 1):
            raise ValueError("check_interval must be a positive power of two")
        for name, value in (
            ("max_states", max_states),
            ("max_steps", max_steps),
            ("max_memory_bytes", max_memory_bytes),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be non-negative")
        if timeout is not None and timeout < 0:
            raise ValueError("timeout must be non-negative")
        self.max_states = max_states
        self.max_steps = max_steps
        # All deadline math runs on the single monotonic source in
        # repro.runtime.clock — never time.time(), never a mix.
        self.started_at = _clock.now()
        if deadline is not None:
            self.deadline = deadline
        elif timeout is not None:
            self.deadline = self.started_at + timeout
        else:
            self.deadline = None
        self.cancel = cancel
        self.max_memory_bytes = max_memory_bytes
        self.states = 0
        self.steps = 0
        self.phase: str | None = None
        self._mask = check_interval - 1
        self._token: Token[Budget | None] | None = None

    # -- context-manager default ---------------------------------------

    def __enter__(self) -> "Budget":
        if self._token is not None:
            raise ReproError("Budget context manager is not re-entrant")
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._token is not None
        _ACTIVE.reset(self._token)
        self._token = None

    # -- introspection --------------------------------------------------

    @property
    def elapsed(self) -> float:
        return _clock.now() - self.started_at

    def remaining_time(self) -> float | None:
        """Seconds until the deadline, or ``None`` when undeadlined."""
        if self.deadline is None:
            return None
        return self.deadline - _clock.now()

    def progress(self, frontier: int = 0) -> BudgetProgress:
        return BudgetProgress(
            states_explored=self.states,
            steps=self.steps,
            frontier_size=frontier,
            elapsed_seconds=self.elapsed,
            phase=self.phase,
        )

    # -- charging -------------------------------------------------------

    def _trip(
        self, reason: str, limit: int | float | None, frontier: int, checkpoint: Any = None
    ) -> "BudgetExceededError":
        # Checkpoints are expensive to materialize, so call sites pass a
        # zero-arg factory that only runs here, at trip time.
        if callable(checkpoint):
            if _faults.ACTIVE:
                _faults.fire("checkpoint.materialize")
            checkpoint = checkpoint()
        if _obs.ENABLED:
            _obs.METRICS.counter(f"budget.trips.{reason}").inc()
        return BudgetExceededError(
            reason=reason,
            limit=limit,
            progress=self.progress(frontier),
            checkpoint=checkpoint,
        )

    def check(self, frontier: int = 0, checkpoint: Any = None) -> None:
        """Run the expensive checks unconditionally: cancellation, clock,
        memory watermark."""
        if _faults.ACTIVE:
            _faults.fire("budget.check")
        if self.cancel is not None and self.cancel.cancelled:
            raise self._trip("cancelled", None, frontier, checkpoint)
        if self.deadline is not None and _clock.now() > self.deadline:
            raise self._trip(
                "deadline", self.deadline - self.started_at, frontier, checkpoint
            )
        if self.max_memory_bytes is not None:
            rss = _max_rss_bytes()
            if rss is not None and rss > self.max_memory_bytes:
                raise self._trip("memory", self.max_memory_bytes, frontier, checkpoint)

    def tick(self, n: int = 1, frontier: int = 0, checkpoint: Any = None) -> None:
        """Charge *n* abstract steps; periodically run the expensive checks."""
        if _faults.ACTIVE:
            _faults.fire("budget.tick")
        steps = self.steps + n
        self.steps = steps
        # Observability report site — one global load + branch when off
        # (hot loops already batch ticks, so the enabled cost amortizes).
        if _obs.ENABLED:
            _obs.METRICS.counter("budget.steps").inc(n)
        if self.max_steps is not None and steps > self.max_steps:
            raise self._trip("max-steps", self.max_steps, frontier, checkpoint)
        if steps & self._mask < n:
            self.check(frontier, checkpoint)

    def charge_states(self, n: int = 1, frontier: int = 0, checkpoint: Any = None) -> None:
        """Charge *n* materialized states (and one step each).

        Both counters are incremented *before* any limit check raises, so
        interrupted runs account identically to uninterrupted ones — trip
        cost plus resume cost always sums to the uninterrupted cost
        (``tests/runtime/test_checkpoint_resume.py`` pins this).
        """
        states = self.states + n
        self.states = states
        # Step accounting inlined (not delegated to tick()) — this runs
        # once per materialized state in every governed hot loop.
        steps = self.steps + n
        self.steps = steps
        if _obs.ENABLED:
            _obs.METRICS.counter("budget.states").inc(n)
            _obs.METRICS.counter("budget.steps").inc(n)
        if self.max_states is not None and states > self.max_states:
            raise self._trip("max-states", self.max_states, frontier, checkpoint)
        if self.max_steps is not None and steps > self.max_steps:
            raise self._trip("max-steps", self.max_steps, frontier, checkpoint)
        if steps & self._mask < n:
            self.check(frontier, checkpoint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limits = []
        if self.max_states is not None:
            limits.append(f"max_states={self.max_states}")
        if self.max_steps is not None:
            limits.append(f"max_steps={self.max_steps}")
        if self.deadline is not None:
            limits.append(f"deadline_in={self.remaining_time():.3f}s")
        if self.cancel is not None:
            limits.append(f"cancel={self.cancel!r}")
        if self.max_memory_bytes is not None:
            limits.append(f"max_memory_bytes={self.max_memory_bytes}")
        spent = f"states={self.states}, steps={self.steps}"
        return f"<Budget {' '.join(limits) or 'unlimited'}; {spent}>"


def current_budget() -> Budget | None:
    """The budget installed by the innermost ``with Budget(...):`` block,
    or ``None`` when running ungoverned."""
    return _ACTIVE.get()


def resolve_budget(budget: Budget | None = None) -> Budget | None:
    """Resolve the effective budget for a governed entry point.

    An explicit argument wins; otherwise the context-manager default
    applies; otherwise ``None`` (ungoverned — hot loops skip all
    accounting via a single ``is None`` test).
    """
    if budget is not None:
        return budget
    return _ACTIVE.get()


class budget_phase:
    """Label the current phase of a governed computation.

    ``with budget_phase(budget, "determinize"):`` — purely diagnostic; the
    phase lands in :class:`BudgetProgress` so error reports say *which*
    stage of a multi-stage construction tripped.  No-op when *budget* is
    ``None``.
    """

    __slots__ = ("_budget", "_phase", "_previous")

    def __init__(self, budget: Budget | None, phase: str) -> None:
        self._budget = budget
        self._phase = phase
        self._previous: str | None = None

    def __enter__(self) -> None:
        if self._budget is not None:
            self._previous = self._budget.phase
            self._budget.phase = self._phase

    def __exit__(self, *exc_info: object) -> None:
        if self._budget is not None:
            self._budget.phase = self._previous
