"""Export single-type EDTDs as W3C XML Schema documents.

The single-type restriction *is* XML Schema's Element Declarations
Consistent rule, so every :class:`SingleTypeEDTD` corresponds to a real
XSD: one named ``xs:complexType`` per type, one global ``xs:element`` per
start symbol, and local element declarations wiring children to their
(ancestor-determined) types.

Content models are converted DFA -> regex -> ``xs:sequence`` /
``xs:choice`` particles.  Two caveats, both inherent and flagged rather
than hidden:

* XML Schema additionally requires *deterministic* content models (the
  UPA constraint).  That repair is the orthogonal companion problem the
  paper delegates to its reference [4]; :func:`export_xsd` reports the
  offending types in a leading comment (``check_upa=True``) so downstream
  tooling knows what still needs repair.
* Multiple start symbols become multiple global elements — standard XSD.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schemas.pretty import dfa_to_regex, simplify_display
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.glushkov import is_deterministic_expression
from repro.strings.regex import (
    Concat,
    Empty,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
)

_INDENT = "  "


def export_xsd(schema: SingleTypeEDTD, *, check_upa: bool = True) -> str:
    """Render *schema* as an ``xs:schema`` document string.

    Raises :class:`SchemaError` on empty languages (no XSD accepts
    nothing).  With ``check_upa=True`` a leading comment lists the types
    whose content models are not deterministic expressions (UPA repairs —
    the paper's companion problem — are out of scope here).
    """
    reduced = schema.reduced()
    if not reduced.types:
        raise SchemaError("cannot export an empty language as an XSD")
    named = reduced.relabel_types("T")

    regexes = {
        type_: simplify_display(dfa_to_regex(named.rules[type_]))
        for type_ in sorted(named.types, key=str)
    }
    lines: list[str] = ['<?xml version="1.0"?>']
    if check_upa:
        violations = sorted(
            type_
            for type_, expr in regexes.items()
            if not is_deterministic_expression(expr)
        )
        if violations:
            lines.append(
                "<!-- UPA warning: non-deterministic content models on "
                f"types {', '.join(violations)}; repair per Gelade et al. "
                "[4] before schema-validating with strict processors -->"
            )
    lines.append('<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">')

    for start in sorted(named.starts, key=str):
        lines.append(
            f'{_INDENT}<xs:element name="{named.mu[start]}" type="{start}"/>'
        )

    for type_ in sorted(named.types, key=str):
        lines.append(f'{_INDENT}<xs:complexType name="{type_}">')
        # Content regexes are over *types*; each type renders as a local
        # element named by its label and typed by itself.
        lines.extend(_particle(regexes[type_], named.mu, depth=2))
        lines.append(f"{_INDENT}</xs:complexType>")
    lines.append("</xs:schema>")
    return "\n".join(lines)


def _particle(expr: Regex, mu: dict, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(expr, Epsilon):
        return [f"{pad}<xs:sequence/>"]
    if isinstance(expr, Empty):
        raise SchemaError("empty content language cannot be exported")
    return _render(expr, mu, depth, min_occurs=1, max_occurs=1)


def _render(
    expr: Regex,
    mu: dict,
    depth: int,
    min_occurs: int,
    max_occurs,
) -> list[str]:
    pad = _INDENT * depth
    occurs = _occurs_attrs(min_occurs, max_occurs)
    if isinstance(expr, Sym):
        return [
            f'{pad}<xs:element name="{mu[expr.symbol]}" type="{expr.symbol}"{occurs}/>'
        ]
    if isinstance(expr, Star):
        return _render(expr.child, mu, depth, 0, "unbounded")
    if isinstance(expr, Plus):
        return _render(expr.child, mu, depth, 1, "unbounded")
    if isinstance(expr, Opt):
        return _render(expr.child, mu, depth, 0, max_occurs)
    if isinstance(expr, Union):
        lines = [f"{pad}<xs:choice{occurs}>"]
        for part in _flatten(expr, Union):
            if isinstance(part, Epsilon):
                # epsilon branch: make the whole choice optional instead.
                lines[0] = f"{pad}<xs:choice{_occurs_attrs(0, max_occurs)}>"
                continue
            lines.extend(_render(part, mu, depth + 1, 1, 1))
        lines.append(f"{pad}</xs:choice>")
        return lines
    if isinstance(expr, Concat):
        lines = [f"{pad}<xs:sequence{occurs}>"]
        for part in _flatten(expr, Concat):
            lines.extend(_render(part, mu, depth + 1, 1, 1))
        lines.append(f"{pad}</xs:sequence>")
        return lines
    if isinstance(expr, Epsilon):
        return [f"{pad}<xs:sequence{occurs}/>"]
    raise SchemaError(f"cannot render {expr!r} as an XSD particle")


def _flatten(expr: Regex, kind) -> list[Regex]:
    if isinstance(expr, kind):
        return _flatten(expr.left, kind) + _flatten(expr.right, kind)
    return [expr]


def _occurs_attrs(min_occurs: int, max_occurs) -> str:
    parts = []
    if min_occurs != 1:
        parts.append(f' minOccurs="{min_occurs}"')
    if max_occurs != 1:
        parts.append(f' maxOccurs="{max_occurs}"')
    return "".join(parts)
