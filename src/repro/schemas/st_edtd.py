"""Single-type EDTDs (Definition 2.4) — the paper's abstraction of XSDs.

A single-type EDTD forbids two distinct types with the same label from
competing for the same position (the Element Declarations Consistent rule).
The payoff, implemented here, is deterministic **one-pass top-down
validation** (:meth:`SingleTypeEDTD.validate_top_down`): the type of every
node is determined by its ancestor string alone, so validation runs in a
single traversal without backtracking — contrast with the bottom-up subset
simulation that general EDTDs require (:meth:`~repro.schemas.edtd.EDTD.accepts`).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import NotSingleTypeError
from repro.schemas.edtd import EDTD
from repro.schemas.type_automaton import is_single_type
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.regex import Regex
from repro.trees.tree import Tree

Symbol = Hashable
Type = Hashable


class SingleTypeEDTD(EDTD):
    """An EDTD verified to satisfy the single-type restriction.

    Construction raises :class:`NotSingleTypeError` when the input violates
    Definition 2.4, so holding a ``SingleTypeEDTD`` instance *is* the proof
    of the EDC property.
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        types: Iterable[Type],
        rules: Mapping[Type, DFA | NFA | Regex | str],
        starts: Iterable[Type],
        mu: Mapping[Type, Symbol],
    ) -> None:
        super().__init__(alphabet, types, rules, starts, mu)
        if not is_single_type(self):
            raise NotSingleTypeError(
                "two types with the same label compete for the same position"
            )
        self._start_by_label: dict[Symbol, Type] = {
            self.mu[t]: t for t in self.starts
        }
        # (parent type, child label) -> child type; well-defined by EDC.
        self._child_type: dict[tuple[Type, Symbol], Type] = {}
        for type_ in self.types:
            for occurring in self.occurring_types(type_):
                self._child_type[(type_, self.mu[occurring])] = occurring

    @classmethod
    def from_edtd(cls, edtd: EDTD) -> "SingleTypeEDTD":
        """Upgrade an :class:`EDTD` after checking the single-type property."""
        return cls(edtd.alphabet, edtd.types, edtd.rules, edtd.starts, edtd.mu)

    # ------------------------------------------------------------------
    # One-pass top-down validation (the EDC benefit)
    # ------------------------------------------------------------------

    def type_of(self, ancestor_string: tuple) -> Type | None:
        """The unique type of a node with the given ancestor string, or None.

        Runs the (deterministic) type automaton in O(len(ancestor_string)).
        """
        if not ancestor_string:
            return None
        current = self._start_by_label.get(ancestor_string[0])
        for label in ancestor_string[1:]:
            if current is None:
                return None
            current = self._child_type.get((current, label))
        return current

    def validate_top_down(self, tree: Tree) -> bool:
        """Deterministic one-pass top-down validation.

        Every node's type is computed from its parent's type and its label;
        each node is visited once and its child string is run through one
        content DFA.  Total time: O(|tree|) automaton steps.
        """
        root_type = self._start_by_label.get(tree.label)
        if root_type is None:
            return False
        stack: list[tuple[Tree, Type]] = [(tree, root_type)]
        while stack:  # ungoverned: one content-DFA run per document node
            node, type_ = stack.pop()
            dfa = self.rules[type_]
            state = dfa.initial
            child_types: list[Type] = []
            for child in node.children:
                child_type = self._child_type.get((type_, child.label))
                if child_type is None:
                    return False
                next_state = dfa.successor(state, child_type)
                if next_state is None:
                    return False
                state = next_state
                child_types.append(child_type)
            if state not in dfa.finals:
                return False
            stack.extend(zip(node.children, child_types))
        return True

    def accepts(self, tree: Tree) -> bool:
        """Membership — overridden to use the fast top-down algorithm."""
        return self.validate_top_down(tree)

    def reduced(self) -> "SingleTypeEDTD":
        """Reduction preserves the single-type property."""
        return SingleTypeEDTD.from_edtd(super().reduced())

    def relabel_types(self, prefix: str = "t") -> "SingleTypeEDTD":
        return SingleTypeEDTD.from_edtd(super().relabel_types(prefix))

    def __repr__(self) -> str:
        return (
            f"SingleTypeEDTD(alphabet={sorted(map(str, self.alphabet))}, "
            f"types={len(self.types)}, starts={len(self.starts)})"
        )
