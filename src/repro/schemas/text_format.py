"""A plain-text schema format with parser and serializer.

The format mirrors the paper's rule notation and round-trips through
:func:`loads` / :func:`dumps`:

    # comments start with '#'
    alphabet: store item price
    start: s
    s [store] -> i*
    i [item]  -> p
    p [price] -> ~

One line per type: ``<type> [<label>] -> <content regex>`` using the
library's regex dialect (``|`` union, ``,`` concatenation, ``* + ?``
postfix, ``~`` epsilon, ``#`` is unavailable here since it starts a
comment — write ``empty`` via an unsatisfiable rule instead, which no
schema needs in practice).  ``alphabet:`` may be omitted (inferred from
the labels); ``start:`` is mandatory.

:func:`loads` returns a :class:`SingleTypeEDTD` when the schema satisfies
EDC and a plain :class:`EDTD` otherwise (or raises with ``strict=True``).
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schemas.edtd import EDTD
from repro.schemas.pretty import dfa_to_regex, simplify_display
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type

_ARROW = "->"


def loads(text: str, *, strict: bool = False) -> EDTD:
    """Parse the text format into an EDTD (upgraded to
    :class:`SingleTypeEDTD` when it satisfies EDC).

    With ``strict=True`` a non-single-type schema raises
    :class:`SchemaError` instead of degrading to a plain EDTD.
    """
    alphabet: set = set()
    starts: set = set()
    rules: dict = {}
    mu: dict = {}
    saw_start = False
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("alphabet:"):
            alphabet.update(line[len("alphabet:"):].split())
            continue
        if line.startswith("start:"):
            starts.update(line[len("start:"):].split())
            saw_start = True
            continue
        if _ARROW not in line:
            raise SchemaError(f"cannot parse schema line: {raw_line!r}")
        head, content = line.split(_ARROW, 1)
        head = head.strip()
        if "[" not in head or not head.endswith("]"):
            raise SchemaError(
                f"rule head must look like 'type [label]': {raw_line!r}"
            )
        type_name, label = head[:-1].split("[", 1)
        type_name = type_name.strip()
        label = label.strip()
        if not type_name or not label:
            raise SchemaError(f"empty type or label in: {raw_line!r}")
        if type_name in rules:
            raise SchemaError(f"duplicate rule for type {type_name!r}")
        rules[type_name] = content.strip()
        mu[type_name] = label
        alphabet.add(label)
    if not saw_start:
        raise SchemaError("missing 'start:' line")
    unknown_starts = starts - set(rules)
    if unknown_starts:
        raise SchemaError(f"start types without rules: {sorted(unknown_starts)}")
    edtd = EDTD(
        alphabet=alphabet,
        types=set(rules),
        rules=rules,
        starts=starts,
        mu=mu,
    )
    if is_single_type(edtd):
        return SingleTypeEDTD.from_edtd(edtd)
    if strict:
        raise SchemaError("schema violates the single-type (EDC) restriction")
    return edtd


def dumps(edtd: EDTD) -> str:
    """Serialize an EDTD to the text format (inverse of :func:`loads` up to
    regex presentation).

    Types are renamed to identifiers when they are not already plain
    strings (the constructions produce tuple-typed schemas).
    """
    named = edtd if all(isinstance(t, str) for t in edtd.types) else edtd.relabel_types()
    lines = [
        "alphabet: " + " ".join(sorted(map(str, named.alphabet))),
        "start: " + " ".join(sorted(map(str, named.starts))),
    ]
    for type_name in sorted(named.types):
        content = simplify_display(dfa_to_regex(named.rules[type_name]))
        lines.append(f"{type_name} [{named.mu[type_name]}] -> {content}")
    return "\n".join(lines) + "\n"


def load_file(path: str, *, strict: bool = False) -> EDTD:
    """Read a schema file in the text format."""
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read(), strict=strict)


def dump_file(edtd: EDTD, path: str) -> None:
    """Write *edtd* to *path* in the text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(edtd))
