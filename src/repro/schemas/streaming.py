"""Streaming (SAX-style) one-pass validation against single-type EDTDs.

The paper's introduction motivates the EDC constraint with "a simple
one-pass top-down validation algorithm".  This module is that algorithm in
its natural habitat: a push-based validator consuming start/end element
events with **O(depth) memory** — no document tree is ever built.  The
type of every element is determined the moment its start tag arrives
(single-typedness), and content models are run incrementally.

    validator = StreamingValidator(schema)
    for event in events:          # ("start", label) / ("end",)
        validator.feed(event)
    validator.finish()            # raises ValidationError on bad docs

:func:`validate_events` and :func:`events_of_tree` are the functional
conveniences; :func:`validate_xml_stream` plugs in the XML fragment reader.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.errors import ValidationError
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.tree import Tree

Symbol = Hashable

Event = tuple  # ("start", label) or ("end",)

START = "start"
END = "end"


class StreamingValidator:
    """Push-based one-pass validator for a single-type EDTD.

    Raises :class:`ValidationError` eagerly, at the earliest event that
    dooms the document; :meth:`finish` performs the end-of-document check.
    Memory use is proportional to the maximal open-element depth.
    """

    def __init__(self, schema: SingleTypeEDTD) -> None:
        self._schema = schema
        self._start_by_label = {schema.mu[t]: t for t in schema.starts}
        self._child_type: dict = {}
        for type_ in schema.types:
            for occurring in schema.occurring_types(type_):
                self._child_type[(type_, schema.mu[occurring])] = occurring
        # Stack frames: (type, content DFA, current DFA state).
        self._stack: list[list] = []
        self._seen_root = False
        self._done = False

    def reset(self) -> None:
        """Prepare the validator for a new document (tables are reused)."""
        self._stack.clear()
        self._seen_root = False
        self._done = False

    # ------------------------------------------------------------------

    def feed(self, event: Event) -> None:
        """Consume one event (``("start", label)`` or ``("end",)``)."""
        if self._done:
            raise ValidationError("content after the root element closed")
        if event[0] == START:
            self._feed_start(event[1])
        elif event[0] == END:
            self._feed_end()
        else:
            raise ValidationError(f"unknown event kind {event[0]!r}")

    def _feed_start(self, label: Symbol) -> None:
        if not self._stack:
            if self._seen_root:
                raise ValidationError("second root element")
            self._seen_root = True
            type_ = self._start_by_label.get(label)
            if type_ is None:
                raise ValidationError(f"root element {label!r} not allowed")
        else:
            parent = self._stack[-1]
            parent_type, parent_dfa, parent_state = parent
            type_ = self._child_type.get((parent_type, label))
            if type_ is None:
                raise ValidationError(
                    f"element {label!r} not allowed under "
                    f"{self._schema.mu[parent_type]!r}"
                )
            next_state = parent_dfa.successor(parent_state, type_)
            if next_state is None:
                raise ValidationError(
                    f"element {label!r} violates the content model of "
                    f"{self._schema.mu[parent_type]!r} at this position"
                )
            parent[2] = next_state
        dfa = self._schema.rules[type_]
        self._stack.append([type_, dfa, dfa.initial])

    def _feed_end(self) -> None:
        if not self._stack:
            raise ValidationError("unmatched end event")
        type_, dfa, state = self._stack.pop()
        if state not in dfa.finals:
            raise ValidationError(
                f"element {self._schema.mu[type_]!r} closed with an "
                "incomplete content model"
            )
        if not self._stack:
            self._done = True

    def finish(self) -> None:
        """End-of-stream check."""
        if self._stack:
            raise ValidationError(
                f"{len(self._stack)} element(s) still open at end of stream"
            )
        if not self._done:
            raise ValidationError("empty document")

    @property
    def depth(self) -> int:
        """Number of currently open elements (the memory footprint)."""
        return len(self._stack)


def events_of_tree(tree: Tree) -> Iterator[Event]:
    """The event stream of a document tree (depth-first)."""
    yield (START, tree.label)
    for child in tree.children:
        yield from events_of_tree(child)
    yield (END,)


def validate_events(
    schema: SingleTypeEDTD,
    events: Iterable[Event],
    validator: StreamingValidator | None = None,
) -> bool:
    """One-pass validation of an event stream; returns a boolean.

    Pass a prebuilt *validator* (it is reset first) to amortize the
    schema-table construction over many documents.
    """
    if validator is None:
        validator = StreamingValidator(schema)
    else:
        validator.reset()
    try:
        for event in events:
            validator.feed(event)
        validator.finish()
    except ValidationError:
        return False
    return True


def validate_xml_stream(schema: SingleTypeEDTD, text: str) -> bool:
    """Validate an XML fragment without materializing the tree."""
    import re as _re

    token = _re.compile(
        r"\s*(?:<(?P<open>[A-Za-z_][\w.\-]*)\s*>"
        r"|<(?P<selfclose>[A-Za-z_][\w.\-]*)\s*/\s*>"
        r"|</(?P<close>[A-Za-z_][\w.\-]*)\s*>)"
    )
    validator = StreamingValidator(schema)
    open_labels: list[str] = []
    pos = 0
    try:
        while pos < len(text):
            if text[pos:].strip() == "":
                break
            match = token.match(text, pos)
            if match is None:
                return False
            pos = match.end()
            if match.group("open"):
                open_labels.append(match.group("open"))
                validator.feed((START, match.group("open")))
            elif match.group("selfclose"):
                validator.feed((START, match.group("selfclose")))
                validator.feed((END,))
            else:
                if not open_labels or open_labels.pop() != match.group("close"):
                    return False  # not well-formed
                validator.feed((END,))
        validator.finish()
    except ValidationError:
        return False
    return True
