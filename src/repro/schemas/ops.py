"""Schema-level operations: union and intersection products of EDTDs, and
the complement/difference EDTD constructions of Theorems 3.9 and 3.10.

* :func:`edtd_union` — disjoint-union EDTD for ``L(D1) | L(D2)``.
* :func:`edtd_intersection` — pairing-product EDTD for ``L(D1) & L(D2)``;
  the product of two single-type EDTDs is again single-type
  (Proposition 3.7/Lemma 2.15) and :func:`st_intersection` returns it as
  such.
* :func:`complement_edtd` — the EDTD ``D_c`` for ``T_Sigma - L(D)`` built in
  the proof of Theorem 3.9 (guess the path to an offending node).
* :func:`difference_edtd` — the EDTD for ``L(D1) - L(D2)`` built in the
  proof of Theorem 3.10 (validate against ``D1`` while guessing the path to
  a ``D2``-offending node).

The tags ``("u1", .)/("u2", .)``, ``("t", .)/("sym", .)`` and
``("o", .)/("p", ., .)`` keep the constructed type sets disjoint, mirroring
the paper's disjoint unions.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.errors import SchemaError
from repro.runtime.budget import budget_phase, resolve_budget
from repro.schemas.edtd import EDTD
from repro.schemas.dfa_xsd import from_single_type
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import Q_INIT, type_automaton
from repro.strings.builders import sigma_star
from repro.strings.dfa import DFA
from repro.strings.kernels import cached_min_dfa

Symbol = Hashable
Type = Hashable


# ----------------------------------------------------------------------
# Union and intersection products
# ----------------------------------------------------------------------

def edtd_union(left: EDTD, right: EDTD) -> EDTD:
    """EDTD for ``L(left) | L(right)`` by disjoint union of type sets.

    The result is generally *not* single-type even when both inputs are —
    that failure is precisely what Section 3.2 approximates away.
    """
    def tag1(t: Type) -> tuple:
        return ("u1", t)

    def tag2(t: Type) -> tuple:
        return ("u2", t)

    rules: dict[tuple, DFA] = {}
    mu: dict[tuple, Symbol] = {}
    for type_ in left.types:
        rules[tag1(type_)] = _retag_content(left.rules[type_], tag1)
        mu[tag1(type_)] = left.mu[type_]
    for type_ in right.types:
        rules[tag2(type_)] = _retag_content(right.rules[type_], tag2)
        mu[tag2(type_)] = right.mu[type_]
    return EDTD(
        alphabet=left.alphabet | right.alphabet,
        types=set(mu),
        rules=rules,
        starts={tag1(t) for t in left.starts} | {tag2(t) for t in right.starts},
        mu=mu,
    )


def _retag_content(dfa: DFA, tag) -> DFA:
    transitions = {
        (src, tag(sym)): dst for (src, sym), dst in dfa.transitions.items()
    }
    return DFA(
        dfa.states,
        {tag(sym) for sym in dfa.alphabet},
        transitions,
        dfa.initial,
        dfa.finals,
    )


def edtd_intersection(left: EDTD, right: EDTD, *, budget=None) -> EDTD:
    """EDTD for ``L(left) & L(right)`` via the pairing product.

    Types are label-compatible pairs ``(tau1, tau2)``; a content model pairs
    words of ``d1(tau1)`` and ``d2(tau2)`` position-wise.  Only pairs
    reachable from the start pairs are materialized.  The product BFS
    charges one state per pair type and governs the per-pair content
    products.
    """
    budget = resolve_budget(budget)
    alphabet = left.alphabet | right.alphabet
    start_pairs = {
        (t1, t2)
        for t1 in left.starts
        for t2 in right.starts
        if left.mu[t1] == right.mu[t2]
    }
    rules: dict[tuple, DFA] = {}
    mu: dict[tuple, Symbol] = {}
    pending: deque[tuple] = deque(start_pairs)
    seen: set[tuple] = set(start_pairs)
    with budget_phase(budget, "intersection-product"):
        if budget is not None:
            budget.charge_states(len(seen), frontier=len(pending))
        while pending:
            pair = pending.popleft()
            t1, t2 = pair
            mu[pair] = left.mu[t1]
            content = _paired_content(
                left.rules[t1], right.rules[t2], left.mu, right.mu, budget=budget
            )
            rules[pair] = content
            for symbol in content.alphabet:
                if symbol not in seen:
                    seen.add(symbol)
                    pending.append(symbol)
                    if budget is not None:
                        budget.charge_states(1, frontier=len(pending))
    return EDTD(
        alphabet=alphabet,
        types=seen,
        rules=rules,
        starts=start_pairs,
        mu=mu,
    )


def _paired_content(d1: DFA, d2: DFA, mu1: dict, mu2: dict, *, budget=None) -> DFA:
    """DFA over pairs accepting ``{(s1,r1)...(sn,rn) : s in L(d1), r in L(d2),
    mu1(si) == mu2(ri)}`` — restricted to its useful part."""
    pairs = [
        (s, r)
        for s in d1.alphabet
        for r in d2.alphabet
        if mu1[s] == mu2[r]
    ]
    initial = (d1.initial, d2.initial)
    states: set[tuple] = {initial}
    transitions: dict[tuple[tuple, tuple], tuple] = {}
    queue: deque[tuple] = deque([initial])
    while queue:
        q1, q2 = queue.popleft()
        for (s, r) in pairs:
            if budget is not None:
                budget.tick(1, frontier=len(queue))
            n1 = d1.successor(q1, s)
            n2 = d2.successor(q2, r)
            if n1 is None or n2 is None:
                continue
            transitions[((q1, q2), (s, r))] = (n1, n2)
            if (n1, n2) not in states:
                states.add((n1, n2))
                queue.append((n1, n2))
                if budget is not None:
                    budget.charge_states(1, frontier=len(queue))
    finals = {(q1, q2) for (q1, q2) in states if q1 in d1.finals and q2 in d2.finals}
    dfa = DFA(states, set(pairs), transitions, initial, finals).trim()
    # Restrict the alphabet to symbols actually used, so the enclosing EDTD
    # only needs the reachable pair types.
    used = {sym for (_, sym) in dfa.transitions}
    return DFA(dfa.states, used, dfa.transitions, dfa.initial, dfa.finals)


def st_intersection(
    left: SingleTypeEDTD, right: SingleTypeEDTD, *, budget=None
) -> SingleTypeEDTD:
    """Single-type EDTD for ``L(left) & L(right)`` (Proposition 3.7).

    ST-REG is closed under intersection; the pairing product of two
    single-type EDTDs is single-type, so this is exact (and is also the
    minimal upper XSD-approximation, Theorem 3.8).
    """
    product = edtd_intersection(left, right, budget=budget).reduced()
    return SingleTypeEDTD.from_edtd(product)


# ----------------------------------------------------------------------
# Complement (Theorem 3.9 construction)
# ----------------------------------------------------------------------

def complement_edtd(schema: SingleTypeEDTD, *, budget=None) -> EDTD:
    """EDTD ``D_c`` with ``L(D_c) = T_Sigma - L(schema)`` (Theorem 3.9).

    Types are ``Delta + Sigma``: the ``Delta``-types guess the path from the
    root to a node whose child string violates its content model; the
    ``Sigma``-types accept arbitrary trees below/off that path.  Size is
    ``O(|Sigma| * |schema|)``.
    """
    budget = resolve_budget(budget)
    reduced = schema.reduced()
    alphabet = schema.alphabet
    sym_types = {("sym", a) for a in alphabet}

    if not reduced.types:
        # Empty language: the complement is all of T_Sigma.
        rules = {("sym", a): _retag_sigma_star(alphabet) for a in alphabet}
        return EDTD(
            alphabet=alphabet,
            types=sym_types,
            rules=rules,
            starts=sym_types,
            mu={("sym", a): a for a in alphabet},
        )

    xsd = from_single_type(reduced)
    automaton = xsd.automaton  # type automaton: states Delta + {Q_INIT}

    types: set = {("t", tau) for tau in reduced.types} | sym_types
    mu: dict = {("t", tau): reduced.mu[tau] for tau in reduced.types}
    mu.update({("sym", a): a for a in alphabet})

    rules: dict = {}
    for a in alphabet:
        rules[("sym", a)] = _retag_sigma_star(alphabet)

    for tau in reduced.types:
        if budget is not None:
            budget.charge_states(1)
        content = xsd.rules[tau]  # f(tau), a DFA over Sigma
        # Part 1: child strings over Sigma-types whose word is NOT in f(tau).
        violating = content.complement(alphabet)
        part1 = _retag_content(violating, lambda s: ("sym", s))
        # Part 2: child strings with exactly one Delta-typed child
        # (continuing the guessed path); all other children are Sigma-typed.
        part2 = _one_marked_child(alphabet, automaton, tau)
        rules[("t", tau)] = cached_min_dfa(part1.union(part2), budget=budget)

    starts = {("t", tau) for tau in reduced.starts}
    starts |= {("sym", a) for a in alphabet - reduced.start_symbols()}
    return EDTD(
        alphabet=alphabet,
        types=types,
        rules=rules,
        starts=starts,
        mu=mu,
    )


def _dfa_union(left: DFA, right: DFA) -> DFA:
    return left.union(right)


#: ``Sigma* -> ("sym", .)*`` retags are identical for every type of a
#: complement construction (and across constructions over the same
#: alphabet), so intern them per alphabet.
_SIGMA_STAR_CACHE: dict[frozenset, DFA] = {}


def _retag_sigma_star(alphabet: frozenset) -> DFA:
    dfa = _SIGMA_STAR_CACHE.get(alphabet)
    if dfa is None:
        dfa = _retag_content(sigma_star(alphabet), lambda a: ("sym", a))
        if len(_SIGMA_STAR_CACHE) >= 256:
            _SIGMA_STAR_CACHE.pop(next(iter(_SIGMA_STAR_CACHE)))
        _SIGMA_STAR_CACHE[alphabet] = dfa
    return dfa


def _one_marked_child(alphabet: frozenset, automaton: DFA, tau: Type) -> DFA:
    """DFA over ``{("sym",a)} + {("t",tau')}`` for words with exactly one
    ``("t", delta(tau, a))`` position and arbitrary ``("sym", .)`` elsewhere."""
    transitions: dict = {}
    symbols: set = set()
    for a in alphabet:
        sym_a = ("sym", a)
        symbols.add(sym_a)
        transitions[(0, sym_a)] = 0
        transitions[(1, sym_a)] = 1
        successor = automaton.successor(tau, a)
        if successor is not None:
            marked = ("t", successor)
            symbols.add(marked)
            transitions[(0, marked)] = 1
    return DFA({0, 1}, symbols, transitions, 0, {1})


# ----------------------------------------------------------------------
# Difference (Theorem 3.10 construction)
# ----------------------------------------------------------------------

def difference_edtd(
    left: SingleTypeEDTD, right: SingleTypeEDTD, *, budget=None
) -> EDTD:
    """EDTD for ``L(left) - L(right)`` of polynomial size (Theorem 3.10).

    Types are ``Delta1 + P`` with ``P`` the label-compatible type pairs:
    ``P``-types guess the path to a node whose child string violates
    ``right`` while simultaneously validating against ``left``;
    ``("o", tau1)``-types validate the remaining subtrees against ``left``
    only.
    """
    budget = resolve_budget(budget)
    d1 = left.reduced()
    d2 = right.reduced()
    alphabet = left.alphabet | right.alphabet

    if not d1.types:
        return EDTD(alphabet=alphabet, types=set(), rules={}, starts=set(), mu={})
    if not d2.types:
        # Nothing to subtract: the difference is L(left) itself.
        return _retag_edtd(d1, "o", alphabet)

    xsd2 = from_single_type(d2)
    a2 = xsd2.automaton
    a1 = _deterministic_type_transitions(d1)

    plain = {("o", tau): tau for tau in d1.types}
    mu: dict = {("o", tau): d1.mu[tau] for tau in d1.types}
    rules: dict = {
        ("o", tau): _retag_content(d1.rules[tau], lambda t: ("o", t))
        for tau in d1.types
    }

    # Reachable label-compatible pairs (tau1, tau2).
    start_pairs = {
        (t1, t2)
        for t1 in d1.starts
        for t2 in d2.starts
        if d1.mu[t1] == d2.mu[t2]
    }
    pairs: set[tuple] = set()
    queue: deque[tuple] = deque(start_pairs)
    while queue:
        pair = queue.popleft()
        if pair in pairs:
            continue
        pairs.add(pair)
        if budget is not None:
            budget.charge_states(1, frontier=len(queue))
        t1, t2 = pair
        for a in alphabet:
            n1 = a1.get((t1, a))
            n2 = a2.successor(t2, a)
            if n1 is not None and n2 is not None and (n1, n2) not in pairs:
                queue.append((n1, n2))

    for (t1, t2) in pairs:
        mu[("p", t1, t2)] = d1.mu[t1]
        rules[("p", t1, t2)] = _difference_pair_content(
            d1, xsd2, a1, a2, t1, t2, alphabet, budget=budget
        )

    starts = {("p", t1, t2) for (t1, t2) in start_pairs}
    starts |= {
        ("o", t1)
        for t1 in d1.starts
        if d1.mu[t1] not in d2.start_symbols()
    }
    types = set(mu)
    return EDTD(alphabet=alphabet, types=types, rules=rules, starts=starts, mu=mu)


def _retag_edtd(edtd: EDTD, tag: str, alphabet: frozenset) -> EDTD:
    rules = {
        (tag, t): _retag_content(edtd.rules[t], lambda s: (tag, s))
        for t in edtd.types
    }
    return EDTD(
        alphabet=alphabet,
        types={(tag, t) for t in edtd.types},
        rules=rules,
        starts={(tag, t) for t in edtd.starts},
        mu={(tag, t): edtd.mu[t] for t in edtd.types},
    )


def _deterministic_type_transitions(st_edtd: SingleTypeEDTD) -> dict:
    """The (partial) deterministic transition map of the type automaton,
    as a dict ``(type, label) -> type``."""
    result: dict[tuple[Type, Symbol], Type] = {}
    for type_ in st_edtd.types:
        for occurring in st_edtd.occurring_types(type_):
            result[(type_, st_edtd.mu[occurring])] = occurring
    return result


def _difference_pair_content(
    d1: SingleTypeEDTD,
    xsd2,
    a1: dict,
    a2: DFA,
    t1: Type,
    t2: Type,
    alphabet: frozenset,
    *,
    budget=None,
) -> DFA:
    """Content model of the pair type ``("p", t1, t2)`` (Theorem 3.10).

    A DFA over ``{("o", sigma)} + {("p", sigma, rho)}`` accepting

    * words of ``d1(t1)`` (all children ``("o", .)``-typed) whose
      ``mu``-image is **not** in ``f2(t2)`` — the violation happens here; or
    * words of ``d1(t1)`` with exactly one ``("p", .)``-typed child whose
      ``mu``-image **is** in ``f2(t2)`` — the violation is guessed deeper.

    States are triples ``(q1, q2, flag)``: ``q1`` runs ``d1(t1)`` over
    ``Delta1``, ``q2`` runs the completed ``f2(t2)`` over ``Sigma``, and
    ``flag`` records whether the marked child has been seen.
    """
    content1 = d1.rules[t1]
    content2 = xsd2.rules[t2].completed(alphabet)

    initial = (content1.initial, content2.initial, 0)
    states: set[tuple] = {initial}
    transitions: dict = {}
    symbols: set = set()
    queue: deque[tuple] = deque([initial])
    while queue:
        state = queue.popleft()
        q1, q2, flag = state
        for sigma in content1.alphabet:
            if budget is not None:
                budget.tick(1, frontier=len(queue))
            n1 = content1.successor(q1, sigma)
            if n1 is None:
                continue
            label = d1.mu[sigma]
            n2 = content2.transitions[(q2, label)]
            plain_symbol = ("o", sigma)
            symbols.add(plain_symbol)
            nxt = (n1, n2, flag)
            transitions[(state, plain_symbol)] = nxt
            if nxt not in states:
                states.add(nxt)
                queue.append(nxt)
            if flag == 0:
                rho = a2.successor(t2, label)
                if rho is not None and a1.get((t1, label)) == sigma:
                    marked_symbol = ("p", sigma, rho)
                    symbols.add(marked_symbol)
                    nxt_marked = (n1, n2, 1)
                    transitions[(state, marked_symbol)] = nxt_marked
                    if nxt_marked not in states:
                        states.add(nxt_marked)
                        queue.append(nxt_marked)
    finals = set()
    for (q1, q2, flag) in states:
        if q1 not in content1.finals:
            continue
        in_f2 = q2 in content2.finals
        if (flag == 1 and in_f2) or (flag == 0 and not in_f2):
            finals.add((q1, q2, flag))
    dfa = DFA(states, symbols, transitions, initial, finals)
    return cached_min_dfa(dfa, budget=budget)
