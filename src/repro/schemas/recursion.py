"""Non-recursive EDTDs and depth bounds (Observation 4.14).

An EDTD is *non-recursive* when its type graph (edges from a type to the
types occurring in its content model) is acyclic; the paper observes this
is equivalent to its language being depth-bounded, with ``|F|`` always a
valid bound.  Section 4.4's decidability results apply exactly to this
class, and :func:`repro.core.decision.is_maximal_lower_approximation`'s
verdict is conclusive for it once the search bound covers the witness
sizes.
"""

from __future__ import annotations

from repro.schemas.edtd import EDTD


def type_graph(edtd: EDTD) -> dict:
    """The edge relation ``{tau: occurring types of d(tau)}``."""
    return {tau: edtd.occurring_types(tau) for tau in edtd.types}


def is_non_recursive(edtd: EDTD) -> bool:
    """Observation 4.14(1): is the type graph acyclic?

    Checked on the reduced schema (useless types cannot witness recursion
    in any derivation).
    """
    reduced = edtd.reduced()
    graph = type_graph(reduced)
    state: dict = {}

    def has_cycle(node) -> bool:
        state[node] = "visiting"
        for successor in graph[node]:
            mark = state.get(successor)
            if mark == "visiting":
                return True
            if mark is None and has_cycle(successor):
                return True
        state[node] = "done"
        return False

    return not any(
        state.get(node) is None and has_cycle(node) for node in graph
    )


def depth_bound(edtd: EDTD) -> int | None:
    """Observation 4.14(2-3): a depth bound for ``L(edtd)``, or None when
    the language is unbounded (recursive schema).

    Returns the *exact* maximal depth (longest path in the acyclic type
    graph from a start type, plus one), which is at most ``|F|`` as the
    paper notes.
    """
    reduced = edtd.reduced()
    if not reduced.types:
        return 0
    if not is_non_recursive(reduced):
        return None
    graph = type_graph(reduced)
    memo: dict = {}

    def height(node) -> int:
        if node in memo:
            return memo[node]
        successors = graph[node]
        value = 1 + max((height(s) for s in successors), default=0)
        memo[node] = value
        return value

    return max(height(start) for start in reduced.starts)


def is_depth_bounded_by(edtd: EDTD, k: int) -> bool:
    """Is every tree of ``L(edtd)`` of depth at most ``k``?"""
    bound = depth_bound(edtd)
    return bound is not None and bound <= k
