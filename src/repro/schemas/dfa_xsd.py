"""DFA-based XSDs (Definition 2.8) and the translations of Proposition 2.9.

A DFA-based XSD is a pair of (i) a state-labeled DFA ``A`` (the *ancestor
automaton*) that deterministically maps every ancestor string to a state,
and (ii) a content model per state.  It is the operational form of a
single-type EDTD: the paper's Construction 3.1 naturally produces DFA-based
XSDs, and Proposition 2.9 provides linear-time translations in both
directions (implemented here as :meth:`DFAXSD.to_single_type` and
:func:`from_single_type`).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import SchemaError
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import Q_INIT, type_automaton
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.ops import as_min_dfa
from repro.strings.regex import Regex
from repro.trees.tree import Tree

Symbol = Hashable
State = Hashable


class DFAXSD:
    """A DFA-based XSD ``(Sigma, A, d, S_d)``.

    Parameters
    ----------
    alphabet:
        The label alphabet ``Sigma``.
    automaton:
        The ancestor automaton: a DFA over ``Sigma`` whose initial state has
        no incoming transitions and which is state-labeled (all transitions
        into a state carry the same symbol).  Final states are ignored.
    rules:
        Content models for the non-initial states (language-like values over
        ``Sigma``).  Every symbol occurring in a state's content model must
        have an outgoing transition from that state — this keeps the
        Proposition 2.9 translations exact.
    starts:
        The allowed root symbols ``S_d``.
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        automaton: DFA,
        rules: Mapping[State, DFA | NFA | Regex | str],
        starts: Iterable[Symbol],
    ) -> None:
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.automaton = automaton
        self.starts: frozenset[Symbol] = frozenset(starts)
        if not self.starts <= self.alphabet:
            raise SchemaError("start symbols must belong to the alphabet")
        if not automaton.alphabet <= self.alphabet:
            raise SchemaError("ancestor automaton reads symbols outside the alphabet")
        if any(dst == automaton.initial for dst in automaton.transitions.values()):
            raise SchemaError("the initial ancestor state must have no incoming transitions")
        if not automaton.to_nfa().is_state_labeled():
            raise SchemaError("the ancestor automaton must be state-labeled")
        for symbol in self.starts:
            if automaton.successor(automaton.initial, symbol) is None:
                raise SchemaError(f"start symbol {symbol!r} has no initial transition")
        self.rules: dict[State, DFA] = {}
        content_states = automaton.reachable_states() - {automaton.initial}
        for state in content_states:
            content = rules.get(state, "~")
            dfa = as_min_dfa(content)
            if not dfa.alphabet <= self.alphabet:
                raise SchemaError(
                    f"content model of state {state!r} uses unknown symbols"
                )
            occurring = _occurring_symbols(dfa)
            for symbol in occurring:
                if automaton.successor(state, symbol) is None:
                    raise SchemaError(
                        f"state {state!r} allows child label {symbol!r} but the "
                        "ancestor automaton has no matching transition"
                    )
            self.rules[state] = dfa.completed(self.alphabet).trim()

    # ------------------------------------------------------------------

    def state_of(self, ancestor_string: tuple) -> State | None:
        """``A(anc-str)`` — the state after reading an ancestor string."""
        return self.automaton.read(ancestor_string)

    def accepts(self, tree: Tree) -> bool:
        """Definition 2.8 semantics, one deterministic top-down pass."""
        if tree.label not in self.starts:
            return False
        root_state = self.automaton.successor(self.automaton.initial, tree.label)
        stack: list[tuple[Tree, State]] = [(tree, root_state)]
        while stack:  # ungoverned: one automaton step per document node
            node, state = stack.pop()
            child_word = tuple(child.label for child in node.children)
            if not self.rules[state].accepts(child_word):
                return False
            for child in node.children:
                child_state = self.automaton.successor(state, child.label)
                if child_state is None:
                    # Unreachable: content acceptance guarantees a transition.
                    return False
                stack.append((child, child_state))
        return True

    def type_size(self) -> int:
        """Number of non-initial reachable states (the implied type count)."""
        return len(self.automaton.reachable_states()) - 1

    def size(self) -> int:
        """|Sigma| + |A| + |S_d| + content sizes (mirrors the EDTD measure)."""
        return (
            len(self.alphabet)
            + self.automaton.size()
            + len(self.starts)
            + sum(dfa.size() for dfa in self.rules.values())
        )

    # ------------------------------------------------------------------
    # Proposition 2.9 translations
    # ------------------------------------------------------------------

    def to_single_type(self) -> SingleTypeEDTD:
        """Linear-time translation to an equivalent single-type EDTD.

        Types are the pairs ``(a, q)`` with some transition ``p --a--> q``;
        since the ancestor automaton is state-labeled, ``q`` determines
        ``a``, so types are in bijection with non-initial reachable states.
        Content DFAs are isomorphic to the originals (only relabeled).
        """
        automaton = self.automaton
        reachable = automaton.reachable_states()
        label_of: dict[State, Symbol] = {}
        for (_, symbol), dst in sorted(automaton.transitions.items(), key=repr):
            if dst in reachable:
                label_of[dst] = symbol
        types = {(label_of[q], q) for q in reachable if q in label_of}

        rules: dict[tuple, DFA] = {}
        mu: dict[tuple, Symbol] = {}
        for (a, q) in sorted(types, key=repr):
            mu[(a, q)] = a
            content = self.rules[q]
            transitions = {}
            for (src, symbol), dst in sorted(content.transitions.items(), key=repr):
                target = automaton.successor(q, symbol)
                if target is None:
                    # Content acceptance never uses this edge (constructor
                    # invariant); drop it.
                    continue
                transitions[(src, (symbol, target))] = dst
            rules[(a, q)] = DFA(
                content.states,
                types,
                transitions,
                content.initial,
                content.finals,
            )
        starts = set()
        for symbol in sorted(self.starts, key=repr):
            target = automaton.successor(automaton.initial, symbol)
            starts.add((symbol, target))
        return SingleTypeEDTD(
            alphabet=self.alphabet,
            types=types,
            rules=rules,
            starts=starts,
            mu=mu,
        )

    def __repr__(self) -> str:
        return (
            f"DFAXSD(alphabet={sorted(map(str, self.alphabet))}, "
            f"states={len(self.automaton.states)}, starts={len(self.starts)})"
        )


def _occurring_symbols(dfa: DFA) -> frozenset:
    """Symbols on useful transitions of *dfa* (symbols occurring in words)."""
    trimmed = dfa.trim()
    useful = trimmed.reachable_states() & trimmed.to_nfa().coreachable_states()
    return frozenset(
        sym
        for (src, sym), dst in trimmed.transitions.items()
        if src in useful and dst in useful
    )


def from_single_type(st_edtd: SingleTypeEDTD) -> DFAXSD:
    """Linear-time translation stEDTD -> DFA-based XSD (Proposition 2.9).

    The ancestor automaton is the (deterministic) type automaton; the
    content model of a type-state is ``mu(d(tau))``.  The input should be
    reduced for the translation to be exact; call ``st_edtd.reduced()``
    first if unsure.
    """
    n = type_automaton(st_edtd)
    # Deterministic by Observation 2.7(3); convert to a DFA directly.
    transitions: dict[tuple[object, object], object] = {}
    for (src, symbol), dsts in n.transitions.items():
        if len(dsts) != 1:
            raise SchemaError("type automaton of a single-type EDTD must be deterministic")
        (dst,) = dsts
        transitions[(src, symbol)] = dst
    automaton = DFA(n.states, st_edtd.alphabet, transitions, Q_INIT, frozenset())
    rules = {
        type_: st_edtd.content_over_sigma(type_)
        for type_ in st_edtd.types
    }
    return DFAXSD(
        alphabet=st_edtd.alphabet,
        automaton=automaton,
        rules=rules,
        starts=st_edtd.start_symbols(),
    )
