"""Import (a structural subset of) W3C XML Schema documents.

Parses ``xs:schema`` documents built from the element-only core —
``xs:element`` (global and local, with ``type``/``minOccurs``/
``maxOccurs``), named ``xs:complexType``, ``xs:sequence`` and
``xs:choice`` — into :class:`SingleTypeEDTD`.  This covers everything
:func:`repro.schemas.xsd_export.export_xsd` emits, so export/import
round-trips, plus hand-written schemas in the same subset.

Out of structural scope (rejected, not ignored): attributes on documents'
elements, simple types/text content, ``xs:all``, ``xs:any``, anonymous
complex types, references (``ref=``), imports/includes, namespaces other
than the ``xs`` prefix.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass, field

from repro.errors import SchemaError
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.regex import (
    EPSILON,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    concat,
    union,
)

_TAG = _re.compile(
    r"\s*(?:"
    r"(?P<decl><\?[^>]*\?>)"
    r"|<!--(?P<comment>.*?)-->"
    r"|<(?P<name>xs:[A-Za-z]+)(?P<attrs>(?:\"[^\"]*\"|[^>])*?)(?P<selfslash>/?)\s*>"
    r"|</(?P<close>xs:[A-Za-z]+)\s*>"
    r")",
    _re.DOTALL,
)
_ATTR = _re.compile(r'([A-Za-z:][\w:.\-]*)\s*=\s*"([^"]*)"')


@dataclass
class _Node:
    tag: str
    attrs: dict
    children: list = field(default_factory=list)


def _parse_xml(text: str) -> _Node:
    stack: list[_Node] = []
    root: _Node | None = None
    pos = 0

    def attach(node: _Node) -> None:
        nonlocal root
        if stack:
            stack[-1].children.append(node)
        elif root is None:
            root = node
        else:
            raise SchemaError("multiple root elements in XSD document")

    while pos < len(text):
        if text[pos:].strip() == "":
            break
        match = _TAG.match(text, pos)
        if match is None:
            snippet = text[pos:pos + 30].strip()
            raise SchemaError(f"unsupported XSD content near: {snippet!r}")
        pos = match.end()
        if match.group("comment") is not None or match.group("decl") is not None:
            continue
        if match.group("name"):
            node = _Node(match.group("name"), dict(_ATTR.findall(match.group("attrs"))))
            if match.group("selfslash"):
                attach(node)
            else:
                attach(node)
                stack.append(node)
        else:
            if not stack or stack[-1].tag != match.group("close"):
                raise SchemaError(f"mismatched tag </{match.group('close')}>")
            stack.pop()
    if stack or root is None:
        raise SchemaError("truncated XSD document")
    return root


def _occurs(attrs: dict) -> tuple[int, object]:
    min_occurs = int(attrs.get("minOccurs", "1"))
    max_raw = attrs.get("maxOccurs", "1")
    max_occurs: object = "unbounded" if max_raw == "unbounded" else int(max_raw)
    return min_occurs, max_occurs


def _apply_occurs(expr: Regex, min_occurs: int, max_occurs) -> Regex:
    if (min_occurs, max_occurs) == (1, 1):
        return expr
    if (min_occurs, max_occurs) == (0, 1):
        return Opt(expr)
    if min_occurs == 0 and max_occurs == "unbounded":
        return Star(expr)
    if min_occurs == 1 and max_occurs == "unbounded":
        return Plus(expr)
    if max_occurs == "unbounded":
        repeated = [expr] * min_occurs
        return concat(*repeated[:-1], Plus(expr))
    parts = [expr] * min_occurs + [Opt(expr)] * (int(max_occurs) - min_occurs)
    return concat(*parts) if parts else EPSILON


def _particle_to_regex(node: _Node, element_types: dict) -> Regex:
    min_occurs, max_occurs = _occurs(node.attrs)
    if node.tag == "xs:element":
        name = node.attrs.get("name")
        type_name = node.attrs.get("type")
        if not name or not type_name:
            raise SchemaError("local xs:element needs name and type attributes")
        if element_types.get(type_name, name) != name:
            raise SchemaError(
                f"type {type_name!r} declared with two element names "
                f"({element_types[type_name]!r} and {name!r})"
            )
        element_types[type_name] = name
        base: Regex = Sym(type_name)
    elif node.tag == "xs:sequence":
        base = concat(
            *(_particle_to_regex(child, element_types) for child in node.children)
        )
    elif node.tag == "xs:choice":
        if not node.children:
            raise SchemaError("empty xs:choice")
        base = union(
            *(_particle_to_regex(child, element_types) for child in node.children)
        )
    else:
        raise SchemaError(f"unsupported particle <{node.tag}>")
    return _apply_occurs(base, min_occurs, max_occurs)


def import_xsd(text: str) -> SingleTypeEDTD:
    """Parse an ``xs:schema`` document (see module docstring for the
    supported subset) into a :class:`SingleTypeEDTD`.

    Raises :class:`SchemaError` on anything outside the subset, on
    dangling type references, or when the schema is not single-type
    (which cannot happen for well-formed XSDs — EDC — but can for
    hand-written pseudo-XSDs).
    """
    root = _parse_xml(text)
    if root.tag != "xs:schema":
        raise SchemaError("document root must be <xs:schema>")

    element_types: dict = {}   # type name -> element label
    contents: dict = {}        # type name -> Regex over type names
    starts: dict = {}          # global elements: type name -> label
    for child in root.children:
        if child.tag == "xs:element":
            name = child.attrs.get("name")
            type_name = child.attrs.get("type")
            if not name or not type_name:
                raise SchemaError("global xs:element needs name and type")
            starts[type_name] = name
            element_types[type_name] = name
        elif child.tag == "xs:complexType":
            type_name = child.attrs.get("name")
            if not type_name:
                raise SchemaError("anonymous complex types are unsupported")
            if len(child.children) > 1:
                raise SchemaError(f"complexType {type_name}: expected one particle")
            if not child.children:
                contents[type_name] = EPSILON
            else:
                particle = child.children[0]
                if particle.tag == "xs:sequence" and not particle.children:
                    contents[type_name] = EPSILON
                else:
                    contents[type_name] = _particle_to_regex(particle, element_types)
        else:
            raise SchemaError(f"unsupported top-level <{child.tag}>")

    missing = set(element_types) - set(contents)
    if missing:
        raise SchemaError(f"elements reference undefined types: {sorted(missing)}")
    mu = {type_name: label for type_name, label in element_types.items()}
    # Types never used by an element declaration are dropped (harmless).
    used_types = set(mu)
    rules = {t: contents[t] for t in used_types}
    alphabet = set(mu.values())
    return SingleTypeEDTD(
        alphabet=alphabet,
        types=used_types,
        rules=rules,
        starts=set(starts),
        mu=mu,
    )
