"""PTIME inclusion testing into single-type EDTDs (Lemma 3.3).

``L(D1) subseteq L(D2)`` for an EDTD ``D1`` and a *single-type* EDTD ``D2``
is decidable in polynomial time (in sharp contrast with the EXPTIME-complete
general EDTD inclusion problem, Theorem 2.13):

1. compute the reachable pairs ``R = {(tau1, tau2)}`` of the product of the
   two type automata (``A1`` may be non-deterministic, ``A2`` is a DFA);
2. for each pair check the *string* inclusion
   ``mu1(d1(tau1)) subseteq mu2(d2(tau2))``.

``L(D1) subseteq L(D2)`` holds iff the root labels are covered and every
reachable pair passes the content check.  The pair exploration also detects
ancestor strings realizable in ``D1`` but not handled by ``D2`` — those
always surface as a failing content check at the parent pair.

The same function doubles as a PTIME equivalence test between single-type
EDTDs (both are EDTDs, so run it in both directions).
"""

from __future__ import annotations

from collections import deque

from repro.errors import NotSingleTypeError
from repro.schemas.edtd import EDTD
from repro.schemas.type_automaton import is_single_type, type_automaton
from repro.strings.ops import includes as string_includes


def included_in_single_type(sub: EDTD, sup: EDTD) -> bool:
    """Decide ``L(sub) subseteq L(sup)`` where *sup* must be single-type.

    Polynomial time (Lemma 3.3).  Both inputs are reduced internally
    (Proviso 2.3 is required for the type-automaton argument).
    """
    if not is_single_type(sup):
        raise NotSingleTypeError("the superset schema must be single-type")
    sub = sub.reduced()
    sup = sup.reduced()
    if sub.is_empty_language():
        return True
    if sup.is_empty_language():
        return False

    # Root labels must be covered.
    sup_start_by_label = {sup.mu[t]: t for t in sup.starts}
    for start in sub.starts:
        if sub.mu[start] not in sup_start_by_label:
            return False

    a1 = type_automaton(sub)
    # The deterministic transition function of sup's type automaton.
    sup_child: dict[tuple[object, object], object] = {}
    for type_ in sup.types:
        for occurring in sup.occurring_types(type_):
            sup_child[(type_, sup.mu[occurring])] = occurring

    # Explore reachable pairs (tau1, tau2).
    pairs: set[tuple[object, object]] = set()
    queue: deque[tuple[object, object]] = deque()
    for start in sub.starts:
        pair = (start, sup_start_by_label[sub.mu[start]])
        if pair not in pairs:
            pairs.add(pair)
            queue.append(pair)
    content_cache: dict[tuple[object, object], bool] = {}
    while queue:  # ungoverned: PTIME pair worklist bounded by |sub| x |sup|
        tau1, tau2 = queue.popleft()
        key = (tau1, tau2)
        if key not in content_cache:
            content_cache[key] = string_includes(
                sup.content_over_sigma(tau2),
                sub.content_over_sigma(tau1),
            )
        if not content_cache[key]:
            return False
        for symbol in sub.alphabet:
            successors1 = a1.successors(tau1, symbol)
            if not successors1:
                continue
            tau2_next = sup_child.get((tau2, symbol))
            if tau2_next is None:
                # A child labeled `symbol` is realizable under tau1 but not
                # allowed under tau2 — the content check above must have
                # failed; reaching here means it passed, which is impossible
                # because `symbol` occurs in mu1(d1(tau1)).
                return False
            for tau1_next in successors1:
                pair = (tau1_next, tau2_next)
                if pair not in pairs:
                    pairs.add(pair)
                    queue.append(pair)
    return True


def single_type_equivalent(left: EDTD, right: EDTD) -> bool:
    """PTIME equivalence of two single-type EDTDs (Lemma 3.3 both ways)."""
    return included_in_single_type(left, right) and included_in_single_type(right, left)
