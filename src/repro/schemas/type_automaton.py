"""Type automata of EDTDs (Definition 2.5, Observation 2.7).

The type automaton of an EDTD ``D = (Sigma, Delta, d, S_d, mu)`` is a
state-labeled NFA over ``Sigma`` with states ``Delta + {q_init}`` and no
final states.  Reading the ancestor string of a node, it reaches exactly the
types assignable to nodes with that ancestor string.

Key facts implemented here:

* Observation 2.7(1): construction is linear time — we read each content
  model's *occurring types* once.
* Observation 2.7(2): ``q_init`` has no incoming transitions (guaranteed by
  using a fresh sentinel state).
* Observation 2.7(3): the type automaton is deterministic iff the EDTD is
  single-type — :func:`is_single_type` tests exactly this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import AutomatonError
from repro.schemas.edtd import EDTD
from repro.strings.nfa import NFA

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy
    from repro.runtime.budget import Budget
    from repro.strings.dfa import DFA as _DFA


class _QInit:
    """Sentinel initial state of type automata (never collides with a type)."""

    _instance: "_QInit | None" = None

    def __new__(cls) -> "_QInit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "q_init"


#: The shared initial state of all type automata.
Q_INIT = _QInit()


def type_automaton(edtd: EDTD) -> NFA:
    """Return the type automaton of *edtd* (a state-labeled NFA, no finals).

    States are ``edtd.types | {Q_INIT}``; for every state ``q`` and label
    ``a``, the successors are the types ``tau`` with ``mu(tau) == a`` that
    occur in ``d(q)`` (or, from ``Q_INIT``, the start types labeled ``a``).
    """
    if Q_INIT in edtd.types:
        raise AutomatonError("the sentinel q_init collides with an EDTD type")
    transitions: dict[tuple[object, object], set[object]] = {}
    for start in edtd.starts:
        transitions.setdefault((Q_INIT, edtd.mu[start]), set()).add(start)
    for type_ in edtd.types:
        for occurring in edtd.occurring_types(type_):
            transitions.setdefault((type_, edtd.mu[occurring]), set()).add(occurring)
    return NFA(
        edtd.types | {Q_INIT},
        edtd.alphabet,
        transitions,
        {Q_INIT},
        frozenset(),
    )


def is_single_type(edtd: EDTD) -> bool:
    """Definition 2.4 via Observation 2.7(3): the EDTD is single-type iff
    its type automaton is deterministic.

    Checks directly that no two distinct types with the same ``mu``-label
    (i) are both start types, or (ii) both occur in the same content model.
    """
    by_label: dict[object, set[object]] = {}
    for start in edtd.starts:
        by_label.setdefault(edtd.mu[start], set()).add(start)
    if any(len(group) > 1 for group in by_label.values()):
        return False
    for type_ in edtd.types:
        by_label = {}
        for occurring in edtd.occurring_types(type_):
            by_label.setdefault(edtd.mu[occurring], set()).add(occurring)
        if any(len(group) > 1 for group in by_label.values()):
            return False
    return True


def ancestor_guide(edtd: EDTD, *, budget: Budget | None = None) -> _DFA:
    """The deterministic valid-ancestor-string machine of *edtd*, shaped
    as a guide for schema-guided determinization
    (:mod:`repro.strings.schema_guided`).

    Determinizes the type automaton of ``edtd.reduced()`` and makes
    every state final: the result is a prefix machine accepting exactly
    the ancestor strings realizable in some tree of the schema.  For
    single-type EDTDs the type automaton is already deterministic
    (Observation 2.7(3)), so the construction is linear.
    """
    from repro.strings.determinize import determinize
    from repro.strings.dfa import DFA

    dfa = determinize(type_automaton(edtd.reduced()), budget=budget)
    return DFA(dfa.states, dfa.alphabet, dfa.transitions, dfa.initial, dfa.states)


def assignable_types(edtd: EDTD, ancestor_string: tuple) -> frozenset:
    """Return ``N(w)`` for the type automaton ``N`` and ancestor string *w*.

    This is the set of types a node with ancestor string *w* can receive.
    """
    return type_automaton(edtd).read(ancestor_string)
