"""Schema formalisms: DTDs, EDTDs, single-type EDTDs, DFA-based XSDs."""

from repro.schemas.dfa_xsd import DFAXSD, from_single_type
from repro.schemas.dtd import DTD
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.measures import RepresentationSizes, representation_sizes
from repro.schemas.minimize import minimize_single_type, type_minimal_size
from repro.schemas.ops import (
    complement_edtd,
    difference_edtd,
    edtd_intersection,
    edtd_union,
    st_intersection,
)
from repro.schemas.recursion import depth_bound, is_depth_bounded_by, is_non_recursive
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.streaming import StreamingValidator, events_of_tree, validate_events, validate_xml_stream
from repro.schemas.text_format import dumps as dumps_schema, loads as loads_schema
from repro.schemas.xsd_export import export_xsd
from repro.schemas.xsd_import import import_xsd
from repro.schemas.type_automaton import Q_INIT, assignable_types, is_single_type, type_automaton

__all__ = [
    "DFAXSD",
    "DTD",
    "EDTD",
    "Q_INIT",
    "SingleTypeEDTD",
    "assignable_types",
    "complement_edtd",
    "depth_bound",
    "dumps_schema",
    "is_depth_bounded_by",
    "is_non_recursive",
    "loads_schema",
    "difference_edtd",
    "edtd_intersection",
    "edtd_union",
    "from_single_type",
    "included_in_single_type",
    "is_single_type",
    "RepresentationSizes",
    "minimize_single_type",
    "representation_sizes",
    "single_type_equivalent",
    "StreamingValidator",
    "events_of_tree",
    "export_xsd",
    "import_xsd",
    "validate_events",
    "validate_xml_stream",
    "st_intersection",
    "type_automaton",
    "type_minimal_size",
]
