"""Schema size measures under different content-model representations
(Section 5).

The paper fixes minimal DFAs as the content-model representation and
discusses (Section 5) how sizes and complexities shift for NFAs and
(deterministic) regular expressions.  These helpers measure the *same*
schema under all three representations:

* DFA — the stored minimal DFAs (the paper's default measure);
* NFA — the Glushkov automata of the re-extracted expressions (a natural
  NFA representation; often smaller than the DFA on union-heavy content);
* RE — reverse-polish size of the state-elimination expressions
  (exponentially larger in pathological cases, cf. Section 5's
  double-exponential complement discussion).

Used by ``benchmarks/bench_content_models.py`` to put numbers on the
representation trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schemas.edtd import EDTD
from repro.schemas.pretty import dfa_to_regex, simplify_display
from repro.strings.glushkov import glushkov_nfa


@dataclass(frozen=True)
class RepresentationSizes:
    """Total content-model sizes of one schema under three representations.

    ``dfa`` uses the paper's DFA size measure (states + transitions),
    ``nfa`` the same measure on Glushkov automata, ``regex`` the summed
    RPN node counts.
    """

    dfa: int
    nfa: int
    regex: int


def representation_sizes(edtd: EDTD) -> RepresentationSizes:
    """Measure *edtd*'s content models under DFA / NFA / RE representations.

    The NFA and RE figures go through expression extraction
    (state elimination + display simplification), i.e. they measure a
    *reasonable* alternative representation rather than the optimum —
    matching how Section 5's comparisons are meant.
    """
    dfa_total = 0
    nfa_total = 0
    regex_total = 0
    for type_ in edtd.types:
        content = edtd.rules[type_]
        dfa_total += content.size()
        expr = simplify_display(dfa_to_regex(content))
        regex_total += expr.rpn_size()
        nfa_total += glushkov_nfa(expr).size()
    return RepresentationSizes(dfa=dfa_total, nfa=nfa_total, regex=regex_total)
