"""Document Type Definitions (Definition 2.1).

A DTD is a triple ``(Sigma, d, S_d)`` where ``d`` maps each alphabet symbol
to a regular string language over ``Sigma`` (its *content model*) and
``S_d`` is the set of allowed root symbols.  Content models are stored as
minimal DFAs per the paper's convention (Section 2.2).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.errors import SchemaError
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.ops import as_min_dfa
from repro.strings.regex import Regex
from repro.trees.tree import Tree

Symbol = Hashable


class DTD:
    """A DTD ``(Sigma, d, S_d)``.

    Parameters
    ----------
    alphabet:
        The alphabet ``Sigma``.
    rules:
        Mapping from symbols to content models (any language-like value:
        DFA, NFA, Regex, or regex source string).  Symbols of *alphabet*
        without a rule get the empty-word-only content model (leaves only).
    starts:
        The set ``S_d`` of allowed root symbols.
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        rules: Mapping[Symbol, DFA | NFA | Regex | str],
        starts: Iterable[Symbol],
    ) -> None:
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.starts: frozenset[Symbol] = frozenset(starts)
        if not self.starts <= self.alphabet:
            raise SchemaError("start symbols must belong to the alphabet")
        if not frozenset(rules) <= self.alphabet:
            raise SchemaError("rules mention symbols outside the alphabet")
        self.rules: dict[Symbol, DFA] = {}
        for symbol in self.alphabet:
            content = rules.get(symbol, "~")
            dfa = as_min_dfa(content)
            if not dfa.alphabet <= self.alphabet:
                raise SchemaError(
                    f"content model of {symbol!r} uses symbols outside the alphabet"
                )
            self.rules[symbol] = dfa.completed(self.alphabet).trim()

    # ------------------------------------------------------------------

    def content(self, symbol: Symbol) -> DFA:
        """The content model ``d(symbol)``."""
        return self.rules[symbol]

    def accepts(self, tree: Tree) -> bool:
        """True iff *tree* satisfies the DTD."""
        if tree.label not in self.starts:
            return False
        for _, node in tree.nodes():
            if node.label not in self.alphabet:
                return False
            child_word = tuple(child.label for child in node.children)
            if not self.rules[node.label].accepts(child_word):
                return False
        return True

    def size(self) -> int:
        """Paper's size: |Sigma| + |S_d| + sum of content-DFA sizes."""
        return (
            len(self.alphabet)
            + len(self.starts)
            + sum(dfa.size() for dfa in self.rules.values())
        )

    def to_edtd(self) -> "EDTD":  # noqa: F821 - forward reference
        """View the DTD as an EDTD whose types are the symbols themselves.

        The result is trivially single-type (DTDs are the local tree
        languages, a subclass of ST-REG).
        """
        from repro.schemas.edtd import EDTD

        return EDTD(
            alphabet=self.alphabet,
            types=self.alphabet,
            rules=self.rules,
            starts=self.starts,
            mu={symbol: symbol for symbol in self.alphabet},
        )

    def __repr__(self) -> str:
        return (
            f"DTD(alphabet={sorted(map(str, self.alphabet))}, "
            f"starts={sorted(map(str, self.starts))})"
        )
