"""Minimization of single-type EDTDs (the paper's reference [20]).

The paper notes ("Contributions") that the outputs of the approximation
algorithms can be minimized in polynomial time, yielding *optimal
representations of optimal approximations*.  We implement the Martens/
Niehren-style PTIME minimization as Moore-machine minimization of the
DFA-based-XSD view:

* a reduced single-type EDTD is a Moore machine whose states are types,
  whose transition function is the (deterministic) type automaton, and whose
  output at a type ``tau`` is the pair ``(mu(tau), L(mu(d(tau))))``;
* two types are mergeable iff they are Moore-equivalent;
* merging Moore-equivalent types yields the (unique) type-minimal
  single-type EDTD for the language.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.runtime.budget import budget_phase, resolve_budget
from repro.schemas.dfa_xsd import DFAXSD, from_single_type
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import Q_INIT
from repro.strings.dfa import DFA
from repro.strings.kernels import canonical_repr
from repro.strings.minimize import minimize_dfa, moore_partition

Symbol = Hashable

_SINK_CLASS = ("__dead__",)
_INIT_CLASS = ("__init__",)


def canonical_dfa_key(dfa: DFA, alphabet: Iterable[Symbol]) -> tuple:
    """A hashable canonical form of ``L(dfa)`` over *alphabet*.

    Two DFAs get the same key iff their languages (over the common
    alphabet) are equal: minimize to the complete canonical automaton,
    relabel states in BFS order, then serialize.
    """
    canon = minimize_dfa(dfa.completed(alphabet), complete=True).relabel("c")
    transitions = tuple(
        sorted(
            ((src, repr(sym), dst) for (src, sym), dst in canon.transitions.items()),
        )
    )
    return (
        canon.initial,
        tuple(sorted(canon.finals)),
        transitions,
    )


def minimize_single_type(st_edtd: SingleTypeEDTD, *, budget=None) -> SingleTypeEDTD:
    """Return the type-minimal single-type EDTD for ``L(st_edtd)``.

    Polynomial time — but the *input* here is routinely the exponentially
    large output of Construction 3.1, so the Moore refinement and the
    per-type canonicalization are governed (one step per type
    canonicalized; refinement rounds charge through
    :func:`repro.strings.minimize.moore_partition`).

    The result is reduced and its types are canonical integers; two
    language-equal inputs yield isomorphic outputs.
    """
    budget = resolve_budget(budget)
    reduced = st_edtd.reduced()
    if not reduced.types:
        return reduced
    xsd = from_single_type(reduced)
    automaton = xsd.automaton

    # Complete the ancestor automaton with an explicit dead state so Moore
    # refinement has a total transition function.
    complete = automaton.completed()
    sink_states = complete.states - automaton.states

    outputs: dict[object, object] = {}
    label_of: dict[object, Symbol] = {}
    for (_, symbol), dst in automaton.transitions.items():
        label_of[dst] = symbol
    with budget_phase(budget, "st-minimize"):
        for state in complete.states:
            if budget is not None:
                budget.tick(1)
            if state in sink_states:
                outputs[state] = _SINK_CLASS
            elif state == automaton.initial:
                outputs[state] = _INIT_CLASS
            else:
                outputs[state] = (
                    label_of[state],
                    canonical_dfa_key(xsd.rules[state], xsd.alphabet),
                )

        partition = moore_partition(
            complete.states,
            complete.alphabet,
            complete.transitions,
            outputs,
            budget=budget,
        )

    # moore_partition numbers blocks in first-occurrence order over an
    # unordered state set, which varies with hash randomization.  The block
    # ids become the minimal schema's type identities, so renumber each
    # block by its canonically smallest member: two processes (and a cached
    # artifact round-trip) then print byte-identical schemas.
    smallest: dict[int, str] = {}
    for state, block in partition.items():
        key = canonical_repr(state)
        if block not in smallest or key < smallest[block]:
            smallest[block] = key
    rename = {
        block: index
        for index, block in enumerate(sorted(smallest, key=smallest.__getitem__))
    }
    partition = {state: rename[block] for state, block in partition.items()}

    # Rebuild the ancestor automaton on blocks, dropping the dead block.
    dead_blocks = {partition[state] for state in sink_states}
    block_transitions: dict[tuple[object, object], object] = {}
    for (src, symbol), dst in automaton.transitions.items():
        src_block, dst_block = partition[src], partition[dst]
        if dst_block in dead_blocks:
            continue
        block_transitions[(src_block, symbol)] = dst_block
    blocks = {partition[state] for state in automaton.states} - dead_blocks
    block_automaton = DFA(
        blocks,
        automaton.alphabet,
        block_transitions,
        partition[automaton.initial],
        frozenset(),
    )
    block_rules = {
        partition[state]: xsd.rules[state]
        for state in automaton.states
        if state != automaton.initial and partition[state] not in dead_blocks
    }
    minimal_xsd = DFAXSD(
        alphabet=xsd.alphabet,
        automaton=block_automaton,
        rules=block_rules,
        starts=xsd.starts,
    )
    return minimal_xsd.to_single_type().relabel_types()


def type_minimal_size(st_edtd: SingleTypeEDTD) -> int:
    """The type-size of ``L(st_edtd)`` (Section 2.2): the minimum number of
    types over all single-type EDTDs defining the language."""
    return len(minimize_single_type(st_edtd).types)
