"""Human-readable rendering of schemas.

Renders EDTDs in the paper's rule notation (``tau -> regex over types``)
and DFA-based XSDs as ancestor-state tables.  Content DFAs are converted
back to (not necessarily minimal) regular expressions by state elimination
— handy for reading the outputs of the approximation constructions.
"""

from __future__ import annotations

from repro.schemas.dfa_xsd import DFAXSD
from repro.schemas.edtd import EDTD
from repro.strings.dfa import DFA
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
    concat,
    union,
)


def dfa_to_regex(dfa: DFA) -> Regex:
    """Convert a DFA to an equivalent regular expression (state
    elimination; output size may be exponential in pathological cases)."""
    trimmed = dfa.trim()
    if trimmed.is_empty_language():
        return EMPTY
    # Generalized NFA edges: (src, dst) -> Regex.
    states = sorted(trimmed.states, key=repr)
    start, end = ("__start__",), ("__end__",)
    edges: dict[tuple, Regex] = {}

    def add(src: object, dst: object, expr: Regex) -> None:
        key = (src, dst)
        edges[key] = union(edges[key], expr) if key in edges else expr

    for (src, symbol), dst in sorted(trimmed.transitions.items(), key=repr):
        add(src, dst, Sym(symbol))
    add(start, trimmed.initial, EPSILON)
    for final in sorted(trimmed.finals, key=repr):
        add(final, end, EPSILON)

    for state in states:
        loop = edges.pop((state, state), None)
        loop_expr: Regex = Star(loop) if loop is not None else EPSILON
        ordered = sorted(edges.items(), key=lambda item: repr(item[0]))
        incoming = [(s, e) for (s, d), e in ordered if d == state and s != state]
        outgoing = [(d, e) for (s, d), e in ordered if s == state and d != state]
        for (src, _) in incoming:
            edges.pop((src, state))
        for (dst, _) in outgoing:
            edges.pop((state, dst))
        for src, expr_in in incoming:
            for dst, expr_out in outgoing:
                add(src, dst, concat(expr_in, loop_expr, expr_out))
    return edges.get((start, end), EMPTY)


def simplify_display(expr: Regex) -> Regex:
    """Light syntactic simplifications for display (not canonical)."""
    if isinstance(expr, Union):
        left = simplify_display(expr.left)
        right = simplify_display(expr.right)
        if left == EPSILON and isinstance(right, Plus):
            return Star(right.child)
        if right == EPSILON and isinstance(left, Plus):
            return Star(left.child)
        if left == EPSILON:
            return Opt(right) if not right.nullable() else right
        if right == EPSILON:
            return Opt(left) if not left.nullable() else left
        return union(left, right)
    if isinstance(expr, Concat):
        return concat(simplify_display(expr.left), simplify_display(expr.right))
    if isinstance(expr, Star):
        return Star(simplify_display(expr.child))
    if isinstance(expr, Plus):
        return Plus(simplify_display(expr.child))
    if isinstance(expr, Opt):
        inner = simplify_display(expr.child)
        return inner if inner.nullable() else Opt(inner)
    return expr


def format_edtd(edtd: EDTD, title: str = "") -> str:
    """Render an EDTD in the paper's rule notation."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    type_names = {t: _type_name(t) for t in edtd.types}
    starts = ", ".join(sorted(type_names[t] for t in edtd.starts))
    lines.append(f"alphabet: {{{', '.join(sorted(map(str, edtd.alphabet)))}}}")
    lines.append(f"start types: {{{starts}}}")
    for type_ in sorted(edtd.types, key=lambda t: type_names[t]):
        content = simplify_display(dfa_to_regex(edtd.rules[type_]))
        rendered = _render_over_types(content, type_names)
        lines.append(
            f"  {type_names[type_]} [{edtd.mu[type_]}] -> {rendered}"
        )
    return "\n".join(lines)


def _type_name(type_: object) -> str:
    if isinstance(type_, str):
        return type_
    return repr(type_)


def _render_over_types(expr: Regex, names: dict) -> str:
    if isinstance(expr, Sym):
        return names.get(expr.symbol, str(expr.symbol))
    if isinstance(expr, Union):
        return f"{_render_over_types(expr.left, names)} | {_render_over_types(expr.right, names)}"
    if isinstance(expr, Concat):
        left = _render_over_types(expr.left, names)
        right = _render_over_types(expr.right, names)
        if isinstance(expr.left, Union):
            left = f"({left})"
        if isinstance(expr.right, Union):
            right = f"({right})"
        return f"{left}, {right}"
    if isinstance(expr, (Star, Plus, Opt)):
        inner = _render_over_types(expr.child, names)
        if isinstance(expr.child, (Union, Concat)):
            inner = f"({inner})"
        op = {"Star": "*", "Plus": "+", "Opt": "?"}[type(expr).__name__]
        return inner + op
    return str(expr)


def format_xsd(xsd: DFAXSD, title: str = "") -> str:
    """Render a DFA-based XSD as an ancestor-state table."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"root elements: {{{', '.join(sorted(map(str, xsd.starts)))}}}")
    automaton = xsd.automaton
    for state in sorted(xsd.rules, key=repr):
        content = simplify_display(dfa_to_regex(xsd.rules[state]))
        moves = ", ".join(
            f"{symbol}->{dst!r}"
            for (src, symbol), dst in sorted(automaton.transitions.items(), key=repr)
            if src == state
        )
        lines.append(f"  state {state!r}: content = {content}")
        if moves:
            lines.append(f"    transitions: {moves}")
    return "\n".join(lines)
