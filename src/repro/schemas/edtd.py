"""Extended DTDs (Definition 2.2) — the unranked regular tree languages.

An EDTD is ``(Sigma, Delta, d, S_d, mu)``: a DTD over the *type* alphabet
``Delta`` together with a typing map ``mu : Delta -> Sigma``.  A tree ``t``
is accepted iff ``t = mu(t')`` for some ``t'`` in the underlying DTD's
language.

The class implements:

* membership (:meth:`EDTD.accepts`) with witness typings
  (:meth:`EDTD.typed_witness`),
* reduction (Proviso 2.3): removal of unproductive and unreachable types,
* the paper's size measures,
* bottom-up type inference (:meth:`EDTD.possible_types`), the engine behind
  validation and several constructions.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping

from repro.errors import SchemaError
from repro.strings.dfa import DFA
from repro.strings.kernels import cached_content_model, cached_min_dfa
from repro.strings.minimize import minimize_dfa
from repro.strings.nfa import NFA
from repro.strings.regex import Regex
from repro.trees.tree import Tree

Symbol = Hashable
Type = Hashable


class EDTD:
    """An extended DTD ``(Sigma, Delta, d, S_d, mu)``.

    Parameters
    ----------
    alphabet:
        The label alphabet ``Sigma``.
    types:
        The type set ``Delta``.
    rules:
        Mapping from types to content models over ``Delta`` (language-like).
        Types without a rule get the empty-word content model (leaf types).
    starts:
        Allowed root types ``S_d``.
    mu:
        The typing map ``Delta -> Sigma``; must be total on *types*.
    """

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        types: Iterable[Type],
        rules: Mapping[Type, DFA | NFA | Regex | str],
        starts: Iterable[Type],
        mu: Mapping[Type, Symbol],
    ) -> None:
        self.alphabet: frozenset[Symbol] = frozenset(alphabet)
        self.types: frozenset[Type] = frozenset(types)
        self.starts: frozenset[Type] = frozenset(starts)
        self.mu: dict[Type, Symbol] = dict(mu)
        if not self.starts <= self.types:
            raise SchemaError("start types must belong to the type set")
        if frozenset(self.mu) != self.types:
            raise SchemaError("mu must be total on the type set")
        if not frozenset(self.mu.values()) <= self.alphabet:
            raise SchemaError("mu maps into symbols outside the alphabet")
        if not frozenset(rules) <= self.types:
            raise SchemaError("rules mention unknown types")
        self.rules: dict[Type, DFA] = {}
        for type_ in self.types:
            content = rules.get(type_, "~")
            try:
                # Memoized pipeline (minimal DFA, completed over the type
                # set, trimmed) — leaf content models and shared retagged
                # models are interned across schema constructions.
                self.rules[type_] = cached_content_model(content, self.types)
            except SchemaError as error:
                raise SchemaError(
                    f"content model of type {type_!r}: {error}"
                ) from None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def content(self, type_: Type) -> DFA:
        """The content model ``d(type_)`` (a DFA over ``Delta``)."""
        return self.rules[type_]

    def content_over_sigma(self, type_: Type) -> DFA:
        """``mu(d(type_))`` — the content model projected to ``Sigma``.

        The projection of a DFA under ``mu`` may be non-deterministic; the
        result is re-determinized and minimized (memoized — Lemma 3.3's
        inclusion test asks for the same projections over and over).
        """
        image = self.rules[type_].to_nfa().map_symbols(lambda t: self.mu[t])
        return cached_min_dfa(image)

    def label(self, type_: Type) -> Symbol:
        """``mu(type_)``."""
        return self.mu[type_]

    def start_symbols(self) -> frozenset[Symbol]:
        """``mu(S_d)`` — the root labels the schema admits."""
        return frozenset(self.mu[t] for t in self.starts)

    def size(self) -> int:
        """Paper's size: |Sigma| plus the size of the underlying DTD."""
        return (
            len(self.alphabet)
            + len(self.types)
            + len(self.starts)
            + sum(dfa.size() for dfa in self.rules.values())
        )

    def type_size(self) -> int:
        """Number of types (the paper's type-size of this representation)."""
        return len(self.types)

    def occurring_types(self, type_: Type) -> frozenset[Type]:
        """Types occurring in some word of ``d(type_)``.

        These are exactly the symbols on useful transitions of the trimmed
        content DFA — the transitions the type automaton (Definition 2.5)
        materializes.
        """
        dfa = self.rules[type_].trim()
        useful = dfa.reachable_states() & dfa.to_nfa().coreachable_states()
        return frozenset(
            sym
            for (src, sym), dst in dfa.transitions.items()
            if src in useful and dst in useful
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def possible_types(self, tree: Tree) -> frozenset[Type]:
        """Bottom-up type inference: all types ``tau`` such that the subtree
        is derivable with root type ``tau``.

        A type ``tau`` is possible at a node labeled ``a`` iff
        ``mu(tau) == a`` and some word ``tau_1 ... tau_n`` in ``d(tau)``
        exists with ``tau_i`` possible at child ``i``.

        Runs on the arena/bitmask kernel
        (:func:`repro.tree_automata.kernels.edtd_possible_types`): one
        int type-mask per node, content-DFA subset simulation through
        per-(type, DFA-state) chunk tables, no per-node path tuples or
        frozensets.  :meth:`possible_types_reference` is the original
        loop, kept as the differential oracle.
        """
        from repro.tree_automata.kernels import edtd_possible_types

        return edtd_possible_types(self, tree)

    def possible_types_reference(self, tree: Tree) -> frozenset[Type]:
        """Path-dict reference inference (differential oracle for the
        kernel).  Iterative post-order, safe for arbitrarily deep
        documents."""
        by_label: dict[Symbol, list[Type]] = {}
        for type_ in self.types:
            by_label.setdefault(self.mu[type_], []).append(type_)
        computed: dict[tuple, frozenset[Type]] = {}
        for path, node in reversed(list(tree.nodes())):
            child_sets = [
                computed[path + (index,)] for index in range(len(node.children))
            ]
            computed[path] = frozenset(
                type_
                for type_ in by_label.get(node.label, ())
                if self._content_matches(type_, child_sets)
            )
        return computed[()]

    def _content_matches(self, type_: Type, child_sets: list[frozenset[Type]]) -> bool:
        """Does some choice of child types (one per child set) lie in
        ``d(type_)``?  Standard subset simulation of the content DFA."""
        dfa = self.rules[type_]
        current: set = {dfa.initial}
        for options in child_sets:
            nxt: set = set()
            for state in current:
                for option in options:
                    dst = dfa.successor(state, option)
                    if dst is not None:
                        nxt.add(dst)
            if not nxt:
                return False
            current = nxt
        return bool(current & dfa.finals)

    def accepts(self, tree: Tree) -> bool:
        """True iff ``tree`` is in ``L(D)``."""
        if tree.label not in self.alphabet:
            return False
        if not tree.labels() <= self.alphabet:
            return False
        from repro.tree_automata.kernels import edtd_accepts

        return edtd_accepts(self, tree)

    def typed_witness(self, tree: Tree) -> Tree | None:
        """Return a typing ``t'`` with ``t' in L(d)`` and ``mu(t') == tree``,
        or None if the tree is not accepted."""
        possible = self._possible_types_memo(tree)
        for start in sorted(self.starts, key=repr):
            if start in possible[()]:
                return self._build_witness(tree, (), start, possible)
        return None

    def _possible_types_memo(self, tree: Tree) -> dict[tuple, frozenset[Type]]:
        """Per-path possible-type sets (witness construction needs the
        whole map): one arena-kernel pass, decoded node mask -> path."""
        from repro.strings.kernels import _unmask
        from repro.trees.arena import ArenaTree
        from repro.tree_automata.kernels import edtd_type_masks

        arena = ArenaTree.from_tree(tree)
        tables, masks = edtd_type_masks(self, arena)
        paths = arena.paths()
        order = tables.types
        views: dict[int, frozenset[Type]] = {}
        memo: dict[tuple, frozenset[Type]] = {}
        for node, mask in enumerate(masks):
            view = views.get(mask)
            if view is None:
                view = _unmask(mask, order)
                views[mask] = view
            memo[paths[node]] = view
        return memo

    def _build_witness(
        self,
        tree: Tree,
        path: tuple,
        type_: Type,
        possible: dict[tuple, frozenset[Type]],
    ) -> Tree:
        # Iterative: first assign a type to every node top-down (choosing a
        # content word per node), then rebuild bottom-up.
        assigned: dict[tuple, Type] = {path: type_}
        order: list[tuple] = []
        stack: list[tuple] = [path]
        while stack:
            current = stack.pop()
            order.append(current)
            node = tree.subtree(current)
            dfa = self.rules[assigned[current]]
            child_sets = [
                possible[current + (index,)] for index in range(len(node.children))
            ]
            choice = self._choose_word(dfa, child_sets)
            assert choice is not None, "witness construction out of sync with inference"
            for index, child_type in enumerate(choice):
                child_path = current + (index,)
                assigned[child_path] = child_type
                stack.append(child_path)
        rebuilt: dict[tuple, Tree] = {}
        for current in reversed(order):
            node = tree.subtree(current)
            children = [
                rebuilt[current + (index,)] for index in range(len(node.children))
            ]
            rebuilt[current] = Tree(assigned[current], children)
        return rebuilt[path]

    def _choose_word(
        self,
        dfa: DFA,
        child_sets: list[frozenset[Type]],
    ) -> list[Type] | None:
        """Pick one type per child so the resulting word is in ``L(dfa)``."""
        # Forward subset simulation remembering predecessors.
        layers: list[dict[object, tuple[object, Type] | None]] = [{dfa.initial: None}]
        for options in child_sets:
            layer: dict[object, tuple[object, Type] | None] = {}
            for state in layers[-1]:
                for option in sorted(options, key=repr):
                    dst = dfa.successor(state, option)
                    if dst is not None and dst not in layer:
                        layer[dst] = (state, option)
            if not layer:
                return None
            layers.append(layer)
        final_states = [state for state in layers[-1] if state in dfa.finals]
        if not final_states:
            return None
        word: list[Type] = []
        state = sorted(final_states, key=repr)[0]
        for index in range(len(child_sets), 0, -1):
            back = layers[index][state]
            assert back is not None
            state, option = back
            word.append(option)
        word.reverse()
        return word

    # ------------------------------------------------------------------
    # Reduction (Proviso 2.3)
    # ------------------------------------------------------------------

    def productive_types(self) -> frozenset[Type]:
        """Types ``tau`` for which some tree with root type ``tau`` exists.

        Least fixpoint: ``tau`` is productive iff ``d(tau)`` contains a word
        over productive types.
        """
        productive: set[Type] = set()
        changed = True
        while changed:  # ungoverned: least fixpoint, at most |types| rounds
            changed = False
            for type_ in self.types:
                if type_ in productive:
                    continue
                if self._has_word_over(self.rules[type_], productive):
                    productive.add(type_)
                    changed = True
        return frozenset(productive)

    @staticmethod
    def _has_word_over(dfa: DFA, allowed: set[Type]) -> bool:
        """Does ``L(dfa)`` contain a word using only *allowed* symbols?"""
        seen: set = {dfa.initial}
        queue: deque = deque([dfa.initial])
        while queue:  # ungoverned: BFS bounded by |dfa states|
            state = queue.popleft()
            if state in dfa.finals:
                return True
            for (src, sym), dst in dfa.transitions.items():
                if src == state and sym in allowed and dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return False

    def reachable_types(self, within: frozenset[Type] | None = None) -> frozenset[Type]:
        """Types reachable from the start types through content models.

        If *within* is given, only transitions through types in *within* are
        followed (used to combine with productivity).
        """
        allowed = within if within is not None else self.types
        seen: set[Type] = set(self.starts & allowed)
        queue: deque[Type] = deque(seen)
        while queue:  # ungoverned: BFS bounded by |types|
            type_ = queue.popleft()
            for occurring in self._occurring_within(type_, allowed):
                if occurring not in seen:
                    seen.add(occurring)
                    queue.append(occurring)
        return frozenset(seen)

    def _occurring_within(self, type_: Type, allowed: frozenset[Type]) -> frozenset[Type]:
        """Types occurring in some word of ``d(type_)`` over *allowed*."""
        dfa = self.rules[type_]
        # Restrict transitions to allowed symbols, then take useful ones.
        transitions = {
            (src, sym): dst
            for (src, sym), dst in dfa.transitions.items()
            if sym in allowed
        }
        restricted = DFA(dfa.states, dfa.alphabet, transitions, dfa.initial, dfa.finals)
        useful = restricted.reachable_states() & restricted.to_nfa().coreachable_states()
        return frozenset(
            sym
            for (src, sym), dst in transitions.items()
            if src in useful and dst in useful
        )

    def is_reduced(self) -> bool:
        """True iff every type occurs in some derivation (Proviso 2.3)."""
        useful = self.productive_types()
        useful = self.reachable_types(within=useful)
        return useful == self.types

    def reduced(self) -> "EDTD":
        """Return an equivalent reduced EDTD (Proviso 2.3).

        Unproductive types and types unreachable from the start set are
        removed; content models are restricted to the surviving types.  If
        the language is empty the result has no types.
        """
        productive = self.productive_types()
        useful = self.reachable_types(within=productive)
        rules = {
            type_: self._restrict_content(self.rules[type_], useful)
            for type_ in useful
        }
        return EDTD(
            alphabet=self.alphabet,
            types=useful,
            rules=rules,
            starts=self.starts & useful,
            mu={type_: self.mu[type_] for type_ in useful},
        )

    @staticmethod
    def _restrict_content(dfa: DFA, allowed: frozenset[Type]) -> DFA:
        transitions = {
            (src, sym): dst
            for (src, sym), dst in dfa.transitions.items()
            if sym in allowed
        }
        restricted = DFA(dfa.states, allowed, transitions, dfa.initial, dfa.finals)
        return minimize_dfa(restricted)

    def is_empty_language(self) -> bool:
        """True iff ``L(D)`` is empty."""
        return not (self.starts & self.productive_types())

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def relabel_types(self, prefix: str = "t") -> "EDTD":
        """Return an isomorphic EDTD with types renamed ``prefix0..prefixN``.

        The numbering is canonical: equal schemas relabel identically even
        when one is a pickle round-trip of the other (artifact-cache hits),
        which plain ``repr`` ordering does not guarantee for set-valued
        type names (see :func:`_canonical_type_key`).
        """
        ordered = sorted(self.types, key=_canonical_type_key)
        mapping = {type_: f"{prefix}{i}" for i, type_ in enumerate(ordered)}
        rules = {}
        for type_ in self.types:
            dfa = self.rules[type_]
            transitions = {
                (src, mapping[sym]): dst for (src, sym), dst in dfa.transitions.items()
            }
            rules[mapping[type_]] = DFA(
                dfa.states,
                {mapping[t] for t in dfa.alphabet},
                transitions,
                dfa.initial,
                dfa.finals,
            )
        return EDTD(
            alphabet=self.alphabet,
            types=mapping.values(),
            rules=rules,
            starts={mapping[t] for t in self.starts},
            mu={mapping[t]: self.mu[t] for t in self.types},
        )

    def __repr__(self) -> str:
        return (
            f"EDTD(alphabet={sorted(map(str, self.alphabet))}, "
            f"types={len(self.types)}, starts={len(self.starts)})"
        )


def _canonical_type_key(type_: object) -> str:
    """A sort key for type names that is stable across pickle round-trips.

    Constructions produce set-valued type names (Construction 3.1's subset
    types), and ``repr`` of a frozenset follows hash-table iteration order
    — which an unpickled copy of an equal set need not share.  Relabeling
    must assign the same numbers to a schema loaded from the artifact
    cache as to the freshly built original (``docs/CACHING.md``), so sets
    are rendered with their elements' keys sorted
    (:func:`repro.strings.kernels.canonical_repr`).
    """
    from repro.strings.kernels import canonical_repr

    return canonical_repr(type_)
