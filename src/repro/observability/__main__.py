"""``python -m repro.observability`` — validate exported trace files.

Usage::

    python -m repro.observability validate TRACE.json [TRACE2.json ...]
    python -m repro.observability validate --schema CUSTOM.json TRACE.json

Exit codes mirror the main CLI: ``0`` every file is schema-valid, ``1``
at least one file is invalid, ``2`` bad input or I/O error.  CI uses this
to gate the ``--trace-json`` output of a governed construction against
the checked-in ``trace_schema.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.observability.schema import load_trace_schema, trace_schema_errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.observability",
        description="Validate exported trace JSON against the checked-in schema",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser("validate", help="validate trace files")
    validate.add_argument("files", nargs="+", metavar="TRACE.json")
    validate.add_argument(
        "--schema", default=None, help="override the packaged trace_schema.json"
    )
    args = parser.parse_args(argv)

    try:
        if args.schema is not None:
            with open(args.schema, encoding="utf-8") as handle:
                schema: dict[str, Any] = json.load(handle)
        else:
            schema = load_trace_schema()
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    invalid = 0
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {path}: {error}", file=sys.stderr)
            return 2
        errors = trace_schema_errors(data, schema)
        if errors:
            invalid += 1
            print(f"INVALID {path}")
            for message in errors:
                print(f"  {message}")
        else:
            print(f"valid   {path}")
    return 1 if invalid else 0


if __name__ == "__main__":
    raise SystemExit(main())
