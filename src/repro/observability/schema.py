"""Structural validation of exported traces against the checked-in schema.

``trace_schema.json`` (shipped inside the package so installed
deployments can validate without the repo checkout) is written in a small
subset of JSON Schema draft-07 — ``type``, ``enum``, ``required``,
``properties``, ``additionalProperties``, ``items``, and local
``$ref``/``definitions`` — and this module interprets exactly that subset
so no third-party ``jsonschema`` dependency is needed.  CI runs one
governed construction with ``--trace-json`` and validates the emitted
file through :func:`validate_trace` (``python -m repro.observability
validate TRACE.json``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import ReproError

#: The checked-in schema every exported trace must satisfy.
TRACE_SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class TraceSchemaError(ReproError):
    """An exported trace does not match the checked-in schema."""


def load_trace_schema() -> dict[str, Any]:
    with TRACE_SCHEMA_PATH.open(encoding="utf-8") as handle:
        schema: dict[str, Any] = json.load(handle)
    return schema


def _resolve_ref(schema: dict[str, Any], root: dict[str, Any]) -> dict[str, Any]:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not isinstance(ref, str) or not ref.startswith("#/"):
        raise TraceSchemaError(f"unsupported $ref {ref!r} (only local refs)")
    node: Any = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise TraceSchemaError(f"dangling $ref {ref!r}")
        node = node[part]
    if not isinstance(node, dict):
        raise TraceSchemaError(f"$ref {ref!r} does not name a schema object")
    return node


def _check(value: Any, schema: dict[str, Any], root: dict[str, Any], path: str,
           errors: list[str]) -> None:
    schema = _resolve_ref(schema, root)

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types if t in _TYPE_CHECKS):
            errors.append(f"{path}: expected {' or '.join(types)}, got "
                          f"{type(value).__name__}")
            return

    enum = schema.get("enum")
    if enum is not None and value not in enum:
        errors.append(f"{path}: {value!r} not one of {enum!r}")

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in value:
                _check(value[key], subschema, root, f"{path}.{key}", errors)
        additional = schema.get("additionalProperties")
        if isinstance(additional, dict):
            for key, item in value.items():
                if key not in properties:
                    _check(item, additional, root, f"{path}.{key}", errors)
        elif additional is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unexpected key {key!r}")

    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, item in enumerate(value):
                _check(item, items, root, f"{path}[{index}]", errors)


def trace_schema_errors(data: Any, schema: dict[str, Any] | None = None) -> list[str]:
    """Every point where *data* departs from the trace schema (empty = valid)."""
    root = schema if schema is not None else load_trace_schema()
    errors: list[str] = []
    _check(data, root, root, "$", errors)
    return errors


def validate_trace(data: Any, schema: dict[str, Any] | None = None) -> None:
    """Raise :class:`TraceSchemaError` unless *data* matches the schema."""
    errors = trace_schema_errors(data, schema)
    if errors:
        raise TraceSchemaError(
            "trace does not match trace_schema.json:\n  " + "\n  ".join(errors)
        )
