"""Structured observability: trace spans, metrics, and profiling hooks.

The PR-1 resource governor answers *whether* a worst-case-exponential
construction may keep running; this package answers *where it spent its
budget*.  Three cooperating pieces, all zero-dependency:

:class:`Trace` / :class:`Span`
    A tree of timed spans, one per construction phase (``determinize``,
    ``content-union``, ``bta-inclusion``, ...).  Threaded exactly like
    :class:`repro.runtime.Budget`: every governed entry point accepts an
    explicit ``trace=`` keyword, and ``with Trace():`` installs an ambient
    default through a :class:`contextvars.ContextVar`, so tracing composes
    with threads and asyncio tasks.  Each span records wall time, the
    budget states/steps charged inside it, kernel fast-path vs. scalar
    fallback, and memo-cache hit/miss deltas.

:class:`MetricsRegistry` (module singleton :data:`METRICS`)
    Named counters, gauges, and histograms that the hot paths report into
    — :meth:`Budget.tick <repro.runtime.budget.Budget.tick>` charges,
    kernel runs, Hopcroft refinements, BTA inclusions, cache lookups, the
    greedy lower loop.

Exporters
    :meth:`Trace.to_dict` / :meth:`Trace.to_json` (machine-readable,
    validated by :mod:`repro.observability.schema`),
    :meth:`Trace.render` (flame-style text for the CLI ``--trace`` flag),
    and the benchmark hook in ``benchmarks/_util.py`` that embeds span
    trees in ``BENCH_*.json``.

Overhead discipline: everything is **no-op-cheap when disabled**.  The
module-level :data:`ENABLED` flag guards every hot-path report site (one
global load + branch); :func:`construction_span` returns a shared null
context manager when no trace is active, so ungoverned, untraced runs
allocate nothing.  ``benchmarks/bench_governor_overhead.py`` holds the
combined governor+observability overhead under 5%.
"""

from __future__ import annotations

import json
import time
from contextvars import ContextVar, Token
from typing import Any, Callable, Iterator

__all__ = [
    "ENABLED",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Trace",
    "construction_span",
    "current_span",
    "current_trace",
    "disable",
    "enable",
    "register_cache_provider",
    "resolve_trace",
]

#: Module-level master switch.  True while any :class:`Trace` context is
#: active (or after an explicit :func:`enable`).  Hot paths guard every
#: report site with ``if observability.ENABLED:`` so the disabled cost is
#: a single global load and branch.
ENABLED = False

_DEPTH = 0

_ACTIVE_TRACE: ContextVar["Trace | None"] = ContextVar("repro_trace", default=None)
_ACTIVE_SPAN: ContextVar["Span | None"] = ContextVar("repro_span", default=None)

#: Callables returning cumulative ``(hits, misses)`` across a subsystem's
#: memo caches; spans snapshot these to attribute cache traffic per phase.
_CACHE_PROVIDERS: list[Callable[[], tuple[int, int]]] = []


def register_cache_provider(provider: Callable[[], tuple[int, int]]) -> None:
    """Register a cumulative ``() -> (hits, misses)`` cache-stats source.

    :mod:`repro.strings.kernels` registers its memo caches at import time;
    other cache owners may do the same.  Spans snapshot the sum of all
    providers on entry/exit and record the deltas as ``cache_hits`` /
    ``cache_misses`` attributes.
    """
    if provider not in _CACHE_PROVIDERS:
        _CACHE_PROVIDERS.append(provider)


def _cache_totals() -> tuple[int, int]:
    hits = 0
    misses = 0
    for provider in _CACHE_PROVIDERS:
        h, m = provider()
        hits += h
        misses += m
    return hits, misses


def enable() -> None:
    """Turn on metrics recording (without requiring an active trace).

    Calls nest: each :func:`enable` needs a matching :func:`disable`.
    :class:`Trace` contexts call these automatically.
    """
    global ENABLED, _DEPTH
    _DEPTH += 1
    ENABLED = True


def disable() -> None:
    """Undo one :func:`enable`; recording stops when the count hits zero."""
    global ENABLED, _DEPTH
    if _DEPTH > 0:
        _DEPTH -= 1
    ENABLED = _DEPTH > 0


# ----------------------------------------------------------------------
# Spans and traces
# ----------------------------------------------------------------------

class Span:
    """One timed phase of a construction, with attributes and children.

    ``elapsed`` is ``None`` while the span is open and the wall-clock
    duration in seconds once closed.  ``attrs`` carries phase-specific
    facts: states/steps charged inside the span (inclusive of children),
    ``kernel`` fast-path vs. scalar fallback, cache hit/miss deltas,
    result sizes.
    """

    __slots__ = ("name", "attrs", "children", "started", "elapsed")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list["Span"] = []
        self.started = time.perf_counter()
        self.elapsed: float | None = None

    def close(self) -> None:
        if self.elapsed is None:
            self.elapsed = time.perf_counter() - self.started

    def annotate(self, **attrs: Any) -> None:
        """Merge *attrs* into the span's attribute mapping."""
        self.attrs.update(attrs)

    # -- introspection --------------------------------------------------

    def tree_names(self) -> Any:
        """The span tree as nested ``(name, [children...])`` pairs — the
        deterministic shape golden tests pin (wall times vary, names and
        structure do not)."""
        return (self.name, [child.tree_names() for child in self.children])

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of the span subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        elapsed = self.elapsed if self.elapsed is not None else (
            time.perf_counter() - self.started
        )
        return {
            "name": self.name,
            "elapsed_ms": elapsed * 1e3,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.elapsed is None else f"{self.elapsed * 1e3:.2f}ms"
        return f"<Span {self.name!r} {state} children={len(self.children)}>"


class Trace:
    """A span tree for one logical operation.

    Mirrors :class:`repro.runtime.Budget`'s threading model:

    * **explicit parameter** — governed entry points accept ``trace=...``;
    * **context-manager default** — ``with Trace():`` installs the trace
      (and its root span) for every governed call in the dynamic extent.

    The root span is named after the trace (default ``"trace"``); nested
    construction spans attach to the ambient current span, so the tree
    reflects the real call structure.
    """

    __slots__ = ("root", "_trace_token", "_span_token")

    def __init__(self, name: str = "trace") -> None:
        self.root = Span(name)
        self._trace_token: Token["Trace | None"] | None = None
        self._span_token: Token["Span | None"] | None = None

    def __enter__(self) -> "Trace":
        if self._trace_token is not None:
            from repro.errors import ReproError

            raise ReproError("Trace context manager is not re-entrant")
        self._trace_token = _ACTIVE_TRACE.set(self)
        self._span_token = _ACTIVE_SPAN.set(self.root)
        enable()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._trace_token is not None and self._span_token is not None
        disable()
        _ACTIVE_SPAN.reset(self._span_token)
        _ACTIVE_TRACE.reset(self._trace_token)
        self._trace_token = None
        self._span_token = None
        self.root.close()

    # -- exporters ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form, valid against the checked-in
        ``trace_schema.json`` (see :mod:`repro.observability.schema`)."""
        return {
            "schema": 1,
            "root": self.root.to_dict(),
            "metrics": METRICS.to_dict(),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str, sort_keys=False)

    def render(self) -> str:
        """Flame-style text rendering of the span tree (CLI ``--trace``)."""
        lines: list[str] = []
        _render_span(self.root, "", "", lines)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace root={self.root!r}>"


def _format_attrs(attrs: dict[str, Any]) -> str:
    # Insertion order is deterministic (creation attrs first, then the
    # states/steps/cache deltas stamped at span exit) and reads better
    # than alphabetical in the flame view.
    return " ".join(  # repro-lint: disable=R002 -- dict preserves insertion order
        f"{key}={value}" for key, value in attrs.items()
    )


def _render_span(span: Span, prefix: str, child_prefix: str, lines: list[str]) -> None:
    elapsed = span.elapsed
    timing = f"{elapsed * 1e3:9.2f}ms" if elapsed is not None else "     open"
    label = f"{prefix}{span.name}"
    extras = _format_attrs(span.attrs)
    lines.append(f"{label:<48} {timing}" + (f"  {extras}" if extras else ""))
    for index, child in enumerate(span.children):
        last = index == len(span.children) - 1
        branch = "└─ " if last else "├─ "
        cont = "   " if last else "│  "
        _render_span(child, child_prefix + branch, child_prefix + cont, lines)


def current_trace() -> Trace | None:
    """The trace installed by the innermost ``with Trace():`` block, or
    ``None`` when running untraced."""
    return _ACTIVE_TRACE.get()


def current_span() -> Span | None:
    """The innermost open span of the ambient trace, or ``None``."""
    return _ACTIVE_SPAN.get()


def resolve_trace(trace: Trace | None = None) -> Trace | None:
    """Resolve the effective trace for a governed entry point.

    An explicit argument wins; otherwise the context-manager default
    applies (checked only when :data:`ENABLED`, so untraced hot paths pay
    one global load); otherwise ``None``.
    """
    if trace is not None:
        return trace
    if ENABLED:
        return _ACTIVE_TRACE.get()
    return None


class _NullSpanContext:
    """Shared do-nothing context manager returned when tracing is off —
    ``construction_span`` must not allocate on the untraced path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN = _NullSpanContext()


class _SpanContext:
    """Context manager recording one construction span.

    On exit the span gains ``states``/``steps`` (budget counters charged
    inside the span, inclusive of children) and ``cache_hits`` /
    ``cache_misses`` deltas from the registered cache providers.
    """

    __slots__ = (
        "_trace",
        "_name",
        "_attrs",
        "_budget",
        "_span",
        "_token",
        "_trace_token",
        "_states0",
        "_steps0",
        "_cache0",
    )

    def __init__(
        self,
        trace: Trace,
        name: str,
        budget: Any,
        attrs: dict[str, Any],
    ) -> None:
        self._trace = trace
        self._name = name
        self._attrs = attrs
        self._budget = budget
        self._span: Span | None = None
        self._token: Token[Span | None] | None = None
        self._trace_token: Token[Trace | None] | None = None
        self._states0 = 0
        self._steps0 = 0
        self._cache0 = (0, 0)

    def __enter__(self) -> Span:
        span = Span(self._name, self._attrs)
        # An explicitly-passed trace must reach nested constructions that
        # only consult the ambient default, so the span's dynamic extent
        # installs the trace (and bumps ENABLED) exactly like a Trace
        # context would.
        if _ACTIVE_TRACE.get() is not self._trace:
            self._trace_token = _ACTIVE_TRACE.set(self._trace)
            enable()
            parent = self._trace.root  # ambient span belongs to another trace
        else:
            parent = _ACTIVE_SPAN.get()
            if parent is None:
                parent = self._trace.root
        parent.children.append(span)
        self._token = _ACTIVE_SPAN.set(span)
        self._span = span
        budget = self._budget
        if budget is not None:
            self._states0 = budget.states
            self._steps0 = budget.steps
        self._cache0 = _cache_totals()
        return span

    def __exit__(self, *exc_info: object) -> bool:
        span = self._span
        assert span is not None and self._token is not None
        span.close()
        budget = self._budget
        if budget is not None:
            span.attrs.setdefault("states", budget.states - self._states0)
            span.attrs.setdefault("steps", budget.steps - self._steps0)
        hits, misses = _cache_totals()
        hits0, misses0 = self._cache0
        if hits != hits0 or misses != misses0:
            span.attrs.setdefault("cache_hits", hits - hits0)
            span.attrs.setdefault("cache_misses", misses - misses0)
        if exc_info and exc_info[0] is not None:
            span.attrs.setdefault("error", getattr(exc_info[0], "__name__", "error"))
        _ACTIVE_SPAN.reset(self._token)
        if self._trace_token is not None:
            disable()
            _ACTIVE_TRACE.reset(self._trace_token)
            self._trace_token = None
        self._span = None
        self._token = None
        return False


def construction_span(
    name: str,
    *,
    trace: Trace | None = None,
    budget: Any = None,
    **attrs: Any,
) -> _SpanContext | _NullSpanContext:
    """Open a span named *name* under the resolved trace.

    The workhorse instrumentation hook: governed constructions wrap their
    body in ``with construction_span("determinize", trace=trace,
    budget=budget, kernel="scalar"):``.  When no trace is active this
    returns the shared :data:`NULL_SPAN` — no allocation, no contextvar
    writes — so the untraced cost is one function call and one flag test.
    """
    resolved = trace if trace is not None else (_ACTIVE_TRACE.get() if ENABLED else None)
    if resolved is None:
        return NULL_SPAN
    return _SpanContext(resolved, name, budget, attrs)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class Counter:
    """Monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Summary statistics (count/total/min/max) over observed values.

    A fixed four-number summary instead of buckets: the consumers here
    (bench JSON, the CLI) want per-construction size distributions, and
    count+total+extrema reconstruct mean and range without committing to a
    bucket layout.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the observed values (``None`` when empty)."""
        if self.count == 0:
            return None
        return self.total / self.count

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, and histograms.

    Report sites call ``METRICS.counter("budget.steps").inc(n)`` guarded
    by :data:`ENABLED`; :meth:`to_dict` snapshots everything for the trace
    exporters.  See ``docs/OBSERVABILITY.md`` for the metric catalog.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def reset(self) -> None:
        """Drop every metric (tests and long-running services)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def to_dict(self) -> dict[str, Any]:
        snapshot: dict[str, Any] = {}
        for registry in (self._counters, self._gauges, self._histograms):
            for name in sorted(registry):
                snapshot[name] = registry[name].to_dict()
        return snapshot

    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        """Like :meth:`to_dict`, restricted to names starting with
        *prefix* (e.g. ``snapshot("service.")`` for the service slice a
        ``stats`` request reports)."""
        snapshot: dict[str, Any] = {}
        for registry in (self._counters, self._gauges, self._histograms):
            for name in sorted(registry):
                if name.startswith(prefix):
                    snapshot[name] = registry[name].to_dict()
        return snapshot


#: The process-wide metrics registry.
METRICS = MetricsRegistry()
