"""Bounded LRU registry of compiled schema handles.

The registry is the service's working set: a thread-safe, capacity-bounded
mapping ``schema_id -> CompiledSchema`` with

* **content addressing** — registering the same schema (by object, by
  structurally-equal copy, or by identical source text) converges on one
  handle and one ``schema_id``, so clients can treat the id as a pure
  function of the schema;
* **LRU eviction with refcount pinning** — handles acquired via
  :meth:`SchemaRegistry.acquire` / :meth:`SchemaRegistry.lease` are never
  evicted mid-use; eviction scans from the cold end, skips pinned
  entries, and never victimizes the hottest (just-touched) entry, so
  capacity may be transiently exceeded while everything else is pinned;
* **concurrent-compile deduplication** — racing registrations of the
  same schema block on a per-id event and share the winner's handle
  instead of compiling twice;
* **persistent backing** — an optional :class:`repro.cache.ArtifactCache`
  becomes every handle's default store, so approximation results survive
  eviction and process restarts even though the in-memory handle does not.

Counters (hits, misses, compiles, evictions, pinned skips) feed
:data:`repro.observability.METRICS` when metrics recording is enabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro import cache as _cache
from repro import observability as _obs
from repro.api import CompiledSchema, compile_schema, current_settings
from repro.errors import ServiceError
from repro.observability import Trace
from repro.runtime.budget import Budget
from repro.schemas.edtd import EDTD

__all__ = ["SchemaRegistry"]


@dataclass
class _Entry:
    handle: CompiledSchema
    refcount: int = 0
    #: Source-text digests that resolved to this handle (for alias cleanup).
    source_keys: set = field(default_factory=set)


def _count(name: str, amount: int = 1) -> None:
    if _obs.ENABLED:
        _obs.METRICS.counter(name).inc(amount)


class SchemaRegistry:
    """A bounded, thread-safe LRU of :class:`repro.api.CompiledSchema`
    handles (see the module docstring for the full contract)."""

    def __init__(
        self,
        *,
        capacity: int = 128,
        cache: "_cache.CacheArg" = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"registry capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._cache = cache
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: text_digest(source) -> schema_id, so repeat registrations of
        #: identical source text skip parsing entirely.
        self._source_ids: dict[str, str] = {}
        self._inflight: dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.compiles = 0
        self.evictions = 0
        self.pinned_skips = 0

    # -- registration --------------------------------------------------

    def register(
        self,
        schema: "EDTD | str",
        *,
        strategy: str | None = None,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
    ) -> CompiledSchema:
        """Compile *schema* (an EDTD or its text-format source) into the
        registry, or return the already-hot handle for a structurally
        identical one.  The governed trio is forwarded to
        :func:`repro.api.compile_schema` on the compile path."""
        if strategy is None:
            strategy = current_settings().strategy
        source_key = None
        if isinstance(schema, str):
            source_key = _cache.text_digest(schema)
            with self._lock:
                known = self._source_ids.get(source_key)
                entry = self._entries.get(known) if known is not None else None
                if entry is not None:
                    self._entries.move_to_end(known)
                    self.hits += 1
                    _count("service.registry.hits")
                    return entry.handle
        probe = self._probe_id(schema, strategy)
        if probe is None:
            # Structurally uncacheable: no stable address to deduplicate
            # on, so every registration compiles (and is admitted under
            # its anonymous id).
            handle = compile_schema(
                schema,
                strategy=strategy,
                budget=budget,
                checkpoint=checkpoint,
                trace=trace,
                cache=self._cache,
            )
            with self._lock:
                self.misses += 1
                self.compiles += 1
                self._admit_locked(handle, source_key)
            _count("service.registry.misses")
            _count("service.registry.compiles")
            return handle
        owner = False
        with self._lock:
            entry = self._entries.get(probe)
            if entry is not None:
                self._entries.move_to_end(probe)
                if source_key is not None:
                    self._source_ids[source_key] = probe
                    entry.source_keys.add(source_key)
                self.hits += 1
                _count("service.registry.hits")
                return entry.handle
            event = self._inflight.get(probe)
            if event is None:
                event = threading.Event()
                self._inflight[probe] = event
                owner = True
                self.misses += 1
                _count("service.registry.misses")
        if not owner:
            event.wait()
            with self._lock:
                entry = self._entries.get(probe)
                if entry is not None:
                    self._entries.move_to_end(probe)
                    if source_key is not None:
                        self._source_ids[source_key] = probe
                        entry.source_keys.add(source_key)
                    self.hits += 1
                    _count("service.registry.hits")
                    return entry.handle
            # The winning compile failed (or its entry was evicted before
            # we woke): fall through and compile for ourselves.
        try:
            handle = compile_schema(
                schema,
                strategy=strategy,
                budget=budget,
                checkpoint=checkpoint,
                trace=trace,
                cache=self._cache,
            )
            with self._lock:
                self.compiles += 1
                self._admit_locked(handle, source_key)
            _count("service.registry.compiles")
            return handle
        finally:
            if owner:
                with self._lock:
                    self._inflight.pop(probe, None)
                event.set()

    def _probe_id(self, schema: "EDTD | str", strategy: str) -> str | None:
        """The schema_id *schema* would compile to, without compiling —
        or ``None`` when the schema is structurally uncacheable."""
        if isinstance(schema, str):
            from repro.schemas.text_format import loads

            schema = loads(schema)
        key = _cache.schema_structural_key(schema)
        return _cache.artifact_digest("compiled-schema", (key, strategy))

    def _admit_locked(self, handle: CompiledSchema, source_key: str | None) -> None:
        entry = self._entries.get(handle.schema_id)
        if entry is None:
            entry = _Entry(handle)
            self._entries[handle.schema_id] = entry
        self._entries.move_to_end(handle.schema_id)
        if source_key is not None:
            self._source_ids[source_key] = handle.schema_id
            entry.source_keys.add(source_key)
        self._evict_excess_locked()

    # -- lookup and pinning --------------------------------------------

    def lookup(self, schema_id: str) -> CompiledSchema | None:
        """The hot handle for *schema_id*, freshened in the LRU — or
        ``None`` when it is not resident (evicted or never registered).

        (Named ``lookup`` rather than ``get`` so the whole-program
        effect inference never confuses it with ``dict.get`` receivers.)
        """
        with self._lock:
            entry = self._entries.get(schema_id)
            if entry is None:
                self.misses += 1
                _count("service.registry.misses")
                return None
            self._entries.move_to_end(schema_id)
            self.hits += 1
            _count("service.registry.hits")
            return entry.handle

    def acquire(self, schema_id: str) -> CompiledSchema:
        """Pin *schema_id* against eviction and return its handle.  Every
        acquire must be paired with a :meth:`release` (or use
        :meth:`lease`).  Raises :class:`repro.errors.ServiceError` for
        unknown ids."""
        with self._lock:
            entry = self._entries.get(schema_id)
            if entry is None:
                self.misses += 1
                _count("service.registry.misses")
                raise ServiceError(f"unknown schema_id {schema_id!r} (register it first)")
            entry.refcount += 1
            self._entries.move_to_end(schema_id)
            self.hits += 1
            _count("service.registry.hits")
            return entry.handle

    def release(self, schema_id: str) -> None:
        """Unpin one :meth:`acquire` of *schema_id*.  Unknown ids are
        ignored (the entry may have been force-evicted)."""
        with self._lock:
            entry = self._entries.get(schema_id)
            if entry is None:
                return
            if entry.refcount > 0:
                entry.refcount -= 1
            self._evict_excess_locked()

    @contextmanager
    def lease(self, schema_id: str) -> Iterator[CompiledSchema]:
        """``with registry.lease(schema_id) as handle:`` — acquire/release
        pinning for a dynamic extent."""
        handle = self.acquire(schema_id)
        try:
            yield handle
        finally:
            self.release(schema_id)

    # -- eviction ------------------------------------------------------

    def evict(self, schema_id: str) -> bool:
        """Drop *schema_id* now.  Returns ``False`` (and keeps the entry)
        when it is unknown or currently pinned."""
        with self._lock:
            entry = self._entries.get(schema_id)
            if entry is None or entry.refcount > 0:
                return False
            self._drop_locked(schema_id)
            return True

    def _drop_locked(self, schema_id: str) -> None:
        entry = self._entries.pop(schema_id)
        for source_key in entry.source_keys:
            self._source_ids.pop(source_key, None)
        self.evictions += 1
        _count("service.registry.evictions")

    def _evict_excess_locked(self) -> None:
        # Bounded by capacity, not worklist-shaped: each pass drops one
        # cold unpinned entry or gives up when everything left is pinned.
        # The hottest (just-touched) entry is never a victim — evicting
        # the handle a request just admitted would defeat admission, so
        # capacity is transiently exceeded instead.
        while len(self._entries) > self._capacity:
            victim = None
            for schema_id, entry in list(self._entries.items())[:-1]:
                if entry.refcount == 0:
                    victim = schema_id
                    break
            if victim is None:
                self.pinned_skips += 1
                _count("service.registry.pinned_skips")
                break
            self._drop_locked(victim)

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, schema_id: str) -> bool:
        with self._lock:
            return schema_id in self._entries

    def schema_ids(self) -> list[str]:
        """Resident ids, coldest first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict[str, int]:
        """Counter snapshot: size/capacity plus lifetime hit/miss/compile/
        eviction/pinned-skip totals."""
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "compiles": self.compiles,
                "evictions": self.evictions,
                "pinned_skips": self.pinned_skips,
            }
