"""Long-lived asyncio validation/approximation service (ROADMAP item 2).

The paper's economics — compute a single-type approximation *once*,
amortize it over many documents — only pay off when something keeps the
compiled artifacts alive between calls.  This package is that something:

* :class:`~repro.service.registry.SchemaRegistry` — a bounded,
  thread-safe LRU of :class:`repro.api.CompiledSchema` handles with
  refcount pinning and concurrent-compile deduplication, backed by the
  persistent :mod:`repro.cache` artifact store;
* :class:`~repro.service.server.ValidationService` — async
  ``register_schema`` / ``validate`` / ``validate_batch`` /
  ``approximate`` operations with per-request deadlines and state/step
  budgets mapped onto :class:`repro.runtime.Budget`, degrading to
  three-valued ``unknown`` verdicts when a budget trips;
* a newline-delimited-JSON TCP protocol
  (:mod:`repro.service.protocol`) served over asyncio streams
  (:func:`~repro.service.server.serve`, or ``python -m repro.cli
  serve``).

Telemetry is the existing observability layer for free: every request
runs under construction spans, and the shared memo caches plus the
registry feed :data:`repro.observability.METRICS`.  See
``docs/SERVICE.md`` for the wire protocol and a latency-budget cookbook.
"""

from repro.service.protocol import MAX_LINE_BYTES, decode_request, encode_response
from repro.service.registry import SchemaRegistry
from repro.service.server import ValidationService, serve

__all__ = [
    "MAX_LINE_BYTES",
    "SchemaRegistry",
    "ValidationService",
    "decode_request",
    "encode_response",
    "serve",
]
