"""The asyncio validation/approximation service.

:class:`ValidationService` is the engine: async ``register_schema`` /
``validate`` / ``validate_batch`` / ``approximate`` operations over a
:class:`repro.service.registry.SchemaRegistry` of hot
:class:`repro.api.CompiledSchema` handles.  The methods are the
programmatic API (they raise taxonomy errors);
:meth:`ValidationService.handle_request` is the wire boundary that maps
taxonomy errors onto protocol error envelopes, and
:meth:`ValidationService.handle_connection` pumps newline-delimited JSON
over asyncio streams (:func:`serve` binds it to a TCP listener).

Budgets and deadlines
---------------------
Every request may carry ``deadline_ms`` / ``max_states`` / ``max_steps``;
they become a per-request :class:`repro.runtime.Budget` (service-wide
defaults fill the gaps).  Trips degrade, not fail:

* ``validate`` returns the three-valued verdict ``"unknown"`` (with the
  trip reason) instead of raising — the same graceful degradation the
  paper's decision procedures use;
* ``validate_batch`` shares one budget across the batch and stops at the
  first trip, returning the completed prefix plus the taxonomy error
  (``partial: true``);
* ``approximate`` surfaces the trip as a ``BudgetExceededError`` error
  envelope (there is no useful partial approximation to return).

Compilation and approximation run in worker threads
(``asyncio.to_thread``) so the event loop keeps serving while CPU-bound
construction proceeds; single-document validation on hot tables is fast
enough to run inline.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro import cache as _cache
from repro import observability as _obs
from repro.api import CompiledSchema, Settings, compile_schema, current_settings
from repro.errors import (
    BudgetExceededError,
    ProtocolError,
    ReproError,
    ServiceError,
)
from repro.observability import Trace
from repro.runtime.budget import Budget, resolve_budget
from repro.schemas.text_format import dumps as _dumps_schema
from repro.service import protocol
from repro.service.registry import SchemaRegistry

__all__ = ["ValidationService", "serve"]

_DEFAULT_HOST = "127.0.0.1"
_DEFAULT_PORT = 8743


def _count(name: str, amount: int = 1) -> None:
    if _obs.ENABLED:
        _obs.METRICS.counter(name).inc(amount)


class ValidationService:
    """One service instance: a registry of hot handles plus the async
    operation surface (see the module docstring)."""

    def __init__(
        self,
        *,
        registry: SchemaRegistry | None = None,
        capacity: int = 128,
        cache: "_cache.CacheArg" = None,
        settings: Settings | None = None,
    ) -> None:
        if registry is None:
            registry = SchemaRegistry(capacity=capacity, cache=cache)
        self.registry = registry
        #: Service-wide defaults for per-request budgets and strategy;
        #: ``None`` falls back to the ambient repro.api settings.
        self.settings = settings

    # -- budget mapping ------------------------------------------------

    def _defaults(self) -> Settings:
        return self.settings if self.settings is not None else current_settings()

    def _request_budget(
        self,
        budget: Budget | None,
        deadline_ms: "int | float | None",
        max_states: int | None,
        max_steps: int | None,
    ) -> Budget:
        """The budget one request runs under: an explicit/ambient budget
        wins; otherwise a fresh one from the request's limits with
        service defaults filling the gaps."""
        resolved = resolve_budget(budget)
        if resolved is not None:
            return resolved
        defaults = self._defaults()
        timeout = deadline_ms / 1000.0 if deadline_ms is not None else defaults.timeout
        return Budget(
            timeout=timeout,
            max_states=max_states if max_states is not None else defaults.max_states,
            max_steps=max_steps if max_steps is not None else defaults.max_steps,
        )

    # -- operations (taxonomy-raising programmatic API) ----------------

    async def register_schema(
        self,
        schema: str,
        *,
        strategy: str | None = None,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
    ) -> dict[str, Any]:
        """Compile *schema* (text format, or an EDTD object) into the
        registry; returns the handle descriptor.  Registering the same
        schema again is a cheap registry hit returning the same id."""
        handle = await asyncio.to_thread(
            self.registry.register,
            schema,
            strategy=strategy,
            budget=budget,
            checkpoint=checkpoint,
            trace=trace,
        )
        return {
            "schema_id": handle.schema_id,
            "strategy": handle.strategy,
            "types": len(handle.schema.types),
            "single_type": handle.is_single_type,
        }

    def _resolve(self, schema_id: str) -> CompiledSchema:
        handle = self.registry.lookup(schema_id)
        if handle is None:
            raise ServiceError(f"unknown schema_id {schema_id!r} (register it first)")
        return handle

    def _validate_one(
        self,
        handle: CompiledSchema,
        document: str,
        budget: Budget,
        trace: Trace | None,
    ) -> tuple[dict[str, Any], BudgetExceededError | None]:
        """One three-valued validation: the result row plus the trip (if
        any) for callers that need to stop a batch."""
        try:
            result = handle.validate(document, budget=budget, trace=trace)
        except BudgetExceededError as error:
            _count("service.budget_trips.validate")
            row = {
                "verdict": "unknown",
                "valid": None,
                "error": {
                    "type": "BudgetExceededError",
                    "message": str(error),
                    "reason": error.reason,
                },
            }
            return row, error
        row = {
            "verdict": "valid" if result.valid else "invalid",
            "valid": result.valid,
            "states": result.usage.states,
            "steps": result.usage.steps,
            "elapsed_ms": result.usage.elapsed_seconds * 1000.0,
        }
        return row, None

    async def validate(
        self,
        schema_id: "str | CompiledSchema",
        document: str,
        *,
        deadline_ms: "int | float | None" = None,
        max_states: int | None = None,
        max_steps: int | None = None,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
    ) -> dict[str, Any]:
        """Validate *document* against a registered schema.

        Three-valued: ``verdict`` is ``"valid"`` / ``"invalid"``, or
        ``"unknown"`` with the trip reason when the per-request budget
        runs out.  Raises :class:`ServiceError` for unknown ids and
        other taxonomy errors (bad XML, injected faults) as themselves.
        """
        del checkpoint  # no resumable phase
        handle = (
            schema_id
            if isinstance(schema_id, CompiledSchema)
            else self._resolve(schema_id)
        )
        request_budget = self._request_budget(budget, deadline_ms, max_states, max_steps)
        row, _ = self._validate_one(handle, document, request_budget, trace)
        return row

    async def validate_batch(
        self,
        schema_id: "str | CompiledSchema",
        documents: list[str],
        *,
        deadline_ms: "int | float | None" = None,
        max_states: int | None = None,
        max_steps: int | None = None,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
    ) -> dict[str, Any]:
        """Validate *documents* under **one shared budget**.

        Stops at the first budget trip: the response carries the
        completed prefix (including the tripping document's ``unknown``
        row), ``partial: true``, and the taxonomy error — deadline
        exhaustion mid-batch is an expected outcome, not a failure.
        """
        del checkpoint  # no resumable phase
        handle = (
            schema_id
            if isinstance(schema_id, CompiledSchema)
            else self._resolve(schema_id)
        )
        request_budget = self._request_budget(budget, deadline_ms, max_states, max_steps)
        results: list[dict[str, Any]] = []
        trip: BudgetExceededError | None = None
        for document in documents:
            row, trip = self._validate_one(handle, document, request_budget, trace)
            results.append(row)
            if trip is not None:
                _count("service.budget_trips.validate_batch")
                break
            # Yield between documents so one large batch cannot starve
            # concurrent requests on the event loop.
            await asyncio.sleep(0)
        response: dict[str, Any] = {
            "results": results,
            "completed": len(results),
            "total": len(documents),
            "partial": trip is not None,
        }
        if trip is not None:
            response["error"] = {
                "type": "BudgetExceededError",
                "message": str(trip),
                "reason": trip.reason,
            }
        return response

    async def approximate(
        self,
        schema_id: "str | CompiledSchema",
        *,
        direction: str = "upper",
        minimize: bool = False,
        strategy: str | None = None,
        max_size: int = 6,
        deadline_ms: "int | float | None" = None,
        max_states: int | None = None,
        max_steps: int | None = None,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
    ) -> dict[str, Any]:
        """Compute the upper (Construction 3.1) or lower (Theorem 4.12)
        single-type approximation of a registered schema, returning the
        result in schema text format.

        Budget trips raise :class:`BudgetExceededError` (the wire layer
        maps it to an error envelope): unlike validation there is no
        useful partial approximation to degrade to.  Warm repeats are
        served from the artifact store the registry is backed by.
        """
        handle = (
            schema_id
            if isinstance(schema_id, CompiledSchema)
            else self._resolve(schema_id)
        )
        if direction not in ("upper", "lower"):
            raise ProtocolError(
                f"'direction' must be 'upper' or 'lower', got {direction!r}"
            )
        request_budget = self._request_budget(budget, deadline_ms, max_states, max_steps)
        if direction == "upper":
            result = await asyncio.to_thread(
                handle.approximate_upper,
                minimize=minimize,
                strategy=strategy,
                budget=request_budget,
                checkpoint=checkpoint,
                trace=trace,
            )
        else:
            result = await asyncio.to_thread(
                handle.approximate_lower,
                max_size=max_size,
                budget=request_budget,
                checkpoint=checkpoint,
                trace=trace,
            )
        _count("service.approximations." + direction)
        return {
            "schema": _dumps_schema(result.schema),
            "direction": direction,
            "types": len(result.schema.types),
            "states": result.usage.states,
            "steps": result.usage.steps,
            "elapsed_ms": result.usage.elapsed_seconds * 1000.0,
        }

    def stats(self) -> dict[str, Any]:
        """Registry counters plus the ``service.*`` slice of METRICS."""
        return {
            "registry": self.registry.stats(),
            "metrics": _obs.METRICS.snapshot("service."),
        }

    # -- wire boundary -------------------------------------------------

    async def handle_request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one decoded request payload to its operation and wrap
        the outcome in a response envelope.  Taxonomy errors become
        ``ok: false`` envelopes here; nothing is swallowed — every
        failure is either mapped to an error response or (non-taxonomy)
        propagates to the connection pump."""
        request_id = payload.get("id")
        op = payload.get("op")
        start = time.perf_counter()
        try:
            result = await self._dispatch(op, payload)
            response = protocol.ok_response(request_id, result)
        except ReproError as error:
            _count("service.errors." + type(error).__name__)
            response = protocol.error_response(request_id, error)
        if _obs.ENABLED:
            _obs.METRICS.counter(f"service.requests.{op}").inc()
            _obs.METRICS.histogram(f"service.latency_ms.{op}").observe(
                (time.perf_counter() - start) * 1000.0
            )
        return response

    async def _dispatch(self, op: Any, payload: dict[str, Any]) -> dict[str, Any]:
        if op == "ping":
            return {"pong": True}
        if op == "stats":
            return self.stats()
        if op == "register_schema":
            return await self.register_schema(
                protocol.get_str(payload, "schema"),
                strategy=protocol.get_str(payload, "strategy", None),
            )
        if op == "validate":
            handle = await self._handle_from(payload)
            return await self.validate(
                handle,
                protocol.get_str(payload, "document"),
                deadline_ms=protocol.get_number(payload, "deadline_ms"),
                max_states=protocol.get_number(payload, "max_states", integer=True),
                max_steps=protocol.get_number(payload, "max_steps", integer=True),
            )
        if op == "validate_batch":
            handle = await self._handle_from(payload)
            return await self.validate_batch(
                handle,
                protocol.get_str_list(payload, "documents"),
                deadline_ms=protocol.get_number(payload, "deadline_ms"),
                max_states=protocol.get_number(payload, "max_states", integer=True),
                max_steps=protocol.get_number(payload, "max_steps", integer=True),
            )
        if op == "approximate":
            handle = await self._handle_from(payload)
            return await self.approximate(
                handle,
                direction=protocol.get_str(payload, "direction", "upper"),
                minimize=protocol.get_bool(payload, "minimize"),
                strategy=protocol.get_str(payload, "strategy", None),
                max_size=protocol.get_number(payload, "max_size", 6, integer=True),
                deadline_ms=protocol.get_number(payload, "deadline_ms"),
                max_states=protocol.get_number(payload, "max_states", integer=True),
                max_steps=protocol.get_number(payload, "max_steps", integer=True),
            )
        raise ProtocolError(f"unknown op {op!r}")

    async def _handle_from(self, payload: dict[str, Any]) -> CompiledSchema:
        """The handle a request addresses: by registered ``schema_id``,
        or by inline ``schema`` text (registered on the fly; with
        ``reuse: false`` compiled fresh every time — the per-call
        recompilation baseline the registry exists to beat)."""
        schema_id = protocol.get_str(payload, "schema_id", None)
        if schema_id is not None:
            return self._resolve(schema_id)
        schema = protocol.get_str(payload, "schema", None)
        if schema is None:
            raise ProtocolError("request needs 'schema_id' or inline 'schema'")
        strategy = protocol.get_str(payload, "strategy", None)
        if not protocol.get_bool(payload, "reuse", True):
            if strategy is None:
                strategy = self._defaults().strategy
            return await asyncio.to_thread(
                compile_schema, schema, strategy=strategy
            )
        return await asyncio.to_thread(
            self.registry.register, schema, strategy=strategy
        )

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Pump one client connection: read request lines until EOF,
        write one response line each.  Protocol violations get an error
        envelope; oversized lines close the connection (the stream can
        no longer be framed)."""
        _count("service.connections")
        try:
            while True:  # ungoverned: connection pump, bounded by client EOF
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line overran the stream limit: framing is lost,
                    # report and hang up.
                    writer.write(
                        protocol.encode_response(
                            protocol.error_response(
                                None,
                                ProtocolError(
                                    "request line exceeds "
                                    f"{protocol.MAX_LINE_BYTES} bytes"
                                ),
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    payload = protocol.decode_request(line)
                except ProtocolError as error:
                    _count("service.errors.ProtocolError")
                    response = protocol.error_response(None, error)
                else:
                    response = await self.handle_request(payload)
                writer.write(protocol.encode_response(response))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - client gone
                _count("service.connections.reset")

    # -- lifecycle -----------------------------------------------------

    async def start(self, host: str = _DEFAULT_HOST, port: int = _DEFAULT_PORT):
        """Bind the TCP listener and return the ``asyncio.Server`` (the
        caller owns shutdown; tests and the bench use this)."""
        return await asyncio.start_server(
            self.handle_connection, host, port, limit=protocol.MAX_LINE_BYTES
        )

    async def serve(self, host: str = _DEFAULT_HOST, port: int = _DEFAULT_PORT) -> None:
        """Serve until cancelled, with METRICS recording enabled for the
        server's lifetime."""
        server = await self.start(host, port)
        _obs.enable()
        try:
            async with server:
                await server.serve_forever()
        finally:
            _obs.disable()


async def serve(
    host: str = _DEFAULT_HOST,
    port: int = _DEFAULT_PORT,
    *,
    capacity: int = 128,
    cache: "_cache.CacheArg" = None,
    settings: Settings | None = None,
) -> None:
    """Run a :class:`ValidationService` on ``host:port`` until cancelled
    (the ``python -m repro.cli serve`` entry point)."""
    service = ValidationService(capacity=capacity, cache=cache, settings=settings)
    await service.serve(host, port)
