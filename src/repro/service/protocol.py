"""The newline-delimited JSON wire protocol.

One request per line, one response line per request, over any byte
stream (the server uses asyncio TCP streams).  Requests are JSON objects

``{"id": <any JSON>, "op": <operation>, ...parameters}``

and responses echo the id:

``{"id": ..., "ok": true, "result": {...}}`` or
``{"id": ..., "ok": false, "error": {"type": <taxonomy class>, "message": ...}}``

Operations, their parameters, and the latency-budget cookbook are
documented in ``docs/SERVICE.md``.  This module is pure data plumbing:
parsing, shape validation (raising
:class:`repro.errors.ProtocolError`), and response envelopes.  It never
touches schemas or budgets.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ProtocolError, ReproError

__all__ = [
    "MAX_LINE_BYTES",
    "OPERATIONS",
    "decode_request",
    "encode_response",
    "error_response",
    "ok_response",
]

#: Hard cap on one request/response line (protects the server from
#: unbounded buffering; the asyncio stream limit is set to this).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: The operations the server dispatches on.
OPERATIONS = frozenset(
    {"register_schema", "validate", "validate_batch", "approximate", "stats", "ping"}
)

_MISSING = object()


def decode_request(line: "bytes | str") -> dict[str, Any]:
    """Parse one request line into its payload dict.

    Raises :class:`ProtocolError` on oversized lines, non-JSON, non-object
    payloads, or a missing/unknown ``op``.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"request is not valid UTF-8: {error}") from error
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op is None:
        raise ProtocolError("request is missing the 'op' field")
    if op not in OPERATIONS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(sorted(OPERATIONS))})"
        )
    return payload


def encode_response(response: dict[str, Any]) -> bytes:
    """One response line, newline-terminated, compact separators."""
    return (json.dumps(response, separators=(",", ":")) + "\n").encode("utf-8")


def ok_response(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, error: BaseException) -> dict[str, Any]:
    """The error envelope for a failed request.

    ``type`` is the taxonomy class name (:class:`ReproError` subclasses
    keep their own; anything else — which should not happen — is reported
    as ``InternalError``).
    """
    if isinstance(error, ReproError):
        error_type = type(error).__name__
    else:  # pragma: no cover - defensive: non-taxonomy escape
        error_type = "InternalError"
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": str(error)},
    }


# ----------------------------------------------------------------------
# Field extraction
# ----------------------------------------------------------------------

def get_str(payload: dict[str, Any], name: str, default: Any = _MISSING) -> Any:
    """*name* as a string; *default* when absent (required when omitted)."""
    value = payload.get(name, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ProtocolError(f"request is missing the {name!r} field")
        return default
    if not isinstance(value, str):
        raise ProtocolError(f"{name!r} must be a string, got {type(value).__name__}")
    return value


def get_bool(payload: dict[str, Any], name: str, default: bool = False) -> bool:
    value = payload.get(name, _MISSING)
    if value is _MISSING:
        return default
    if not isinstance(value, bool):
        raise ProtocolError(f"{name!r} must be a boolean, got {type(value).__name__}")
    return value


def get_number(
    payload: dict[str, Any],
    name: str,
    default: Any = None,
    *,
    integer: bool = False,
) -> Any:
    """*name* as a non-negative number (int when ``integer``), else *default*."""
    value = payload.get(name, _MISSING)
    if value is _MISSING:
        return default
    numeric = (int,) if integer else (int, float)
    if isinstance(value, bool) or not isinstance(value, numeric):
        kind = "an integer" if integer else "a number"
        raise ProtocolError(f"{name!r} must be {kind}, got {type(value).__name__}")
    if value < 0:
        raise ProtocolError(f"{name!r} must be >= 0, got {value}")
    return value


def get_str_list(payload: dict[str, Any], name: str) -> list[str]:
    value = payload.get(name, _MISSING)
    if value is _MISSING:
        raise ProtocolError(f"request is missing the {name!r} field")
    if not isinstance(value, list) or any(not isinstance(item, str) for item in value):
        raise ProtocolError(f"{name!r} must be a list of strings")
    return value
