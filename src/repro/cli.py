"""Command-line interface: ``python -m repro <command> ...``.

Commands operate on schema files in the text format of
:mod:`repro.schemas.text_format` and XML documents (element-only
fragments):

* ``info SCHEMA``                     — sizes, single-type?, definable?
* ``validate SCHEMA DOC.xml``         — validate a document
* ``union A B [-o OUT]``              — minimal upper approx of the union
* ``intersect A B [-o OUT]``          — the (exact) intersection
* ``difference A B [-o OUT]``         — minimal upper approx of A minus B
* ``complement A [-o OUT]``           — minimal upper approx of the complement
* ``to-xsd A [-o OUT]``               — minimal upper approx of any EDTD
* ``lower A B [-o OUT]``              — maximal lower approx of A | B fixing A
* ``minimize A [-o OUT]``             — type-minimal equivalent XSD
* ``export-xsd A [-o OUT]``           — render as a W3C xs:schema document
* ``import-xsd A.xsd [-o OUT]``       — convert an xs:schema document to the text format
* ``merge S1 S2 ... [-o OUT]``        — minimal upper approx of an n-ary union
* ``included A B``                    — is L(A) a subset of L(B)? (B single-type)
* ``compat OLD NEW``                  — classify a schema evolution, with witness documents
* ``serve [--host H] [--port P]``     — long-lived validation service (NDJSON over TCP)

Every schema-producing command minimizes its output and prints it (or
writes it with ``-o``).

Resource governance: the global flags ``--timeout SECONDS``,
``--max-states N`` and ``--max-steps N`` install a
:class:`repro.runtime.Budget` around the command, so hostile or
pathological schemas (the constructions are worst-case exponential)
terminate promptly with a clean one-line diagnostic.

Caching: ``--cache-dir PATH`` opens (creating if needed) a persistent
:class:`repro.cache.ArtifactCache` there for the command's constructions;
without the flag the ``REPRO_CACHE_DIR`` environment variable applies;
``--no-cache`` disables both.

Observability: the global flag ``--trace`` renders the span tree of
every governed construction the command ran to stderr; ``--trace-json
PATH`` writes the same trace (plus the metrics registry) as JSON
conforming to ``repro/observability/trace_schema.json``.  Both emit
even when the command fails or the budget trips, so partial traces of
interrupted constructions are preserved.

Exit codes: ``0`` success, ``1`` negative answer (invalid document,
not included, not backward-compatible), ``2`` bad input or I/O error,
``3`` resource budget exceeded.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro import cache as _cache
from repro.core.decision import is_single_type_definable
from repro.core.lower import maximal_lower_union
from repro.core.upper import (
    minimal_upper_approximation,
    upper_complement,
    upper_difference,
    upper_intersection,
    upper_union,
)
from repro.errors import BudgetExceededError, ReproError
from repro.observability import Trace
from repro.runtime import Budget
from repro.schemas.inclusion import included_in_single_type
from repro.schemas.minimize import minimize_single_type
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.text_format import dumps, load_file
from repro.schemas.type_automaton import is_single_type
from repro.trees.xml_io import from_xml


def _load_single_type(path: str) -> SingleTypeEDTD:
    schema = load_file(path)
    if not isinstance(schema, SingleTypeEDTD):
        raise ReproError(
            f"{path}: schema is not single-type; this command needs an XSD "
            "(run 'to-xsd' first)"
        )
    return schema


def _load_guide(args):
    """The ``--guide`` schema, loaded, or None (universal guide) without
    the flag.  ``main`` has already rejected --guide without
    --strategy schema-guided."""
    if getattr(args, "guide", None):
        return load_file(args.guide)
    return None


def _emit(schema, output: str | None) -> None:
    text = dumps(schema)
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)


def _cmd_info(args) -> int:
    schema = load_file(args.schema)
    single = is_single_type(schema)
    print(f"types:        {schema.type_size()}")
    print(f"size:         {schema.size()}")
    print(f"alphabet:     {', '.join(sorted(map(str, schema.alphabet)))}")
    print(f"single-type:  {single}")
    if not single:
        print(f"ST-definable: {is_single_type_definable(schema)}")
    print(f"empty:        {schema.is_empty_language()}")
    return 0


def _cmd_validate(args) -> int:
    schema = load_file(args.schema)
    with open(args.document, encoding="utf-8") as handle:
        tree = from_xml(handle.read())
    if schema.accepts(tree):
        print("valid")
        return 0
    print("INVALID")
    return 1


def _cmd_union(args) -> int:
    left = _load_single_type(args.left)
    right = _load_single_type(args.right)
    _emit(
        minimize_single_type(
            upper_union(left, right, strategy=args.strategy, guide=_load_guide(args))
        ),
        args.output,
    )
    return 0


def _cmd_intersect(args) -> int:
    left = _load_single_type(args.left)
    right = _load_single_type(args.right)
    _emit(minimize_single_type(upper_intersection(left, right)), args.output)
    return 0


def _cmd_difference(args) -> int:
    left = _load_single_type(args.left)
    right = _load_single_type(args.right)
    _emit(
        minimize_single_type(
            upper_difference(left, right, strategy=args.strategy, guide=_load_guide(args))
        ),
        args.output,
    )
    return 0


def _cmd_complement(args) -> int:
    schema = _load_single_type(args.schema)
    _emit(
        minimize_single_type(
            upper_complement(schema, strategy=args.strategy, guide=_load_guide(args))
        ),
        args.output,
    )
    return 0


def _cmd_to_xsd(args) -> int:
    schema = load_file(args.schema)
    _emit(
        minimize_single_type(
            minimal_upper_approximation(
                schema, strategy=args.strategy, guide=_load_guide(args)
            )
        ),
        args.output,
    )
    return 0


def _cmd_lower(args) -> int:
    left = _load_single_type(args.left)
    right = _load_single_type(args.right)
    _emit(minimize_single_type(maximal_lower_union(left, right)), args.output)
    return 0


def _cmd_export_xsd(args) -> int:
    from repro.schemas.xsd_export import export_xsd

    schema = _load_single_type(args.schema)
    document = export_xsd(schema)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    else:
        sys.stdout.write(document + "\n")
    return 0


def _cmd_minimize(args) -> int:
    schema = _load_single_type(args.schema)
    _emit(minimize_single_type(schema), args.output)
    return 0


def _cmd_import_xsd(args) -> int:
    from repro.schemas.xsd_import import import_xsd

    with open(args.schema, encoding="utf-8") as handle:
        schema = import_xsd(handle.read())
    _emit(schema, args.output)
    return 0


def _cmd_merge(args) -> int:
    from repro.core.nary import merge_all

    schemas = [_load_single_type(path) for path in args.schemas]
    _emit(minimize_single_type(merge_all(schemas)), args.output)
    return 0


def _cmd_compat(args) -> int:
    from repro.core.compat import check_compatibility
    from repro.trees.xml_io import to_xml

    old = _load_single_type(args.left)
    new = _load_single_type(args.right)
    report = check_compatibility(old, new)
    print(report.verdict.value)
    if report.old_only is not None:
        print("document valid only under the OLD schema:")
        print(to_xml(report.old_only))
    if report.new_only is not None:
        print("document valid only under the NEW schema:")
        print(to_xml(report.new_only))
    return 0 if report.backward_compatible else 1


def _cmd_included(args) -> int:
    sub = load_file(args.left)
    sup = _load_single_type(args.right)
    answer = included_in_single_type(sub, sup)
    print("yes" if answer else "no")
    return 0 if answer else 1


def _cmd_serve(args) -> int:
    import asyncio

    from repro.api import Settings
    from repro.service import serve

    # The global governor flags become per-request *defaults* — a
    # long-lived server must not share one budget across every request
    # (main() deliberately skips installing the ambient budget for this
    # command).
    settings = Settings(
        timeout=args.timeout,
        max_states=args.max_states,
        max_steps=args.max_steps,
        strategy=args.strategy,
    )
    print(
        f"repro service listening on {args.host}:{args.port} "
        f"(registry capacity {args.registry_capacity}); Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                capacity=args.registry_capacity,
                settings=settings,
            )
        )
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Single-type approximations of regular tree languages",
    )
    governor = parser.add_argument_group(
        "resource limits",
        "bound the worst-case-exponential constructions; exceeding a limit "
        "exits with code 3",
    )
    governor.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline for the whole command",
    )
    governor.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help="maximum automaton/product states any construction may build",
    )
    governor.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="maximum abstract construction steps",
    )
    caching = parser.add_argument_group(
        "artifact cache",
        "persistent on-disk cache of compiled automata and approximations",
    )
    caching.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache compiled artifacts under PATH (created if missing); "
        "defaults to $REPRO_CACHE_DIR when set",
    )
    caching.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache, including $REPRO_CACHE_DIR",
    )
    kernel = parser.add_argument_group(
        "determinization strategy",
        "kernel selection for the subset constructions behind the "
        "approximation commands",
    )
    # Validated in main() rather than via argparse choices= so the
    # subcommand action stays the parser's only choices-bearing action.
    kernel.add_argument(
        "--strategy",
        default="blind",
        metavar="{blind,schema-guided}",
        help="determinization kernel: 'blind' explores every reachable "
        "subset; 'schema-guided' prunes subsets unreachable under the "
        "guiding schema (see --guide)",
    )
    kernel.add_argument(
        "--guide",
        default=None,
        metavar="SCHEMA",
        help="guiding schema file for --strategy schema-guided (its "
        "valid-ancestor strings prune the subset construction); omitted, "
        "the universal guide is used and nothing is pruned",
    )
    observability = parser.add_argument_group(
        "observability",
        "structured tracing of the governed constructions the command runs",
    )
    observability.add_argument(
        "--trace",
        action="store_true",
        help="render the span tree of the command to stderr",
    )
    observability.add_argument(
        "--trace-json",
        default=None,
        metavar="PATH",
        help="write the trace (span tree + metrics) as JSON to PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def schema_cmd(name, func, help_text, *, binary=False, doc=False):
        cmd = sub.add_parser(name, help=help_text)
        if binary:
            cmd.add_argument("left")
            cmd.add_argument("right")
        else:
            cmd.add_argument("schema")
        if doc:
            cmd.add_argument("document")
        if name not in ("info", "validate", "included"):
            cmd.add_argument("-o", "--output", default=None)
        cmd.set_defaults(func=func)
        return cmd

    schema_cmd("info", _cmd_info, "schema statistics")
    schema_cmd("validate", _cmd_validate, "validate an XML document", doc=True)
    schema_cmd("union", _cmd_union, "minimal upper approximation of A | B", binary=True)
    schema_cmd("intersect", _cmd_intersect, "intersection of two XSDs", binary=True)
    schema_cmd(
        "difference", _cmd_difference, "minimal upper approximation of A - B", binary=True
    )
    schema_cmd("complement", _cmd_complement, "minimal upper approximation of the complement")
    schema_cmd("to-xsd", _cmd_to_xsd, "minimal upper approximation of any EDTD")
    schema_cmd(
        "lower", _cmd_lower, "maximal lower approximation of A | B containing A", binary=True
    )
    schema_cmd("minimize", _cmd_minimize, "type-minimal equivalent XSD")
    schema_cmd("export-xsd", _cmd_export_xsd, "render as a W3C xs:schema document")
    schema_cmd("import-xsd", _cmd_import_xsd, "convert an xs:schema document to the text format")
    merge = sub.add_parser("merge", help="minimal upper approximation of S1 | ... | Sn")
    merge.add_argument("schemas", nargs="+")
    merge.add_argument("-o", "--output", default=None)
    merge.set_defaults(func=_cmd_merge)
    compat = sub.add_parser("compat", help="classify an old -> new schema evolution")
    compat.add_argument("left", help="old schema")
    compat.add_argument("right", help="new schema")
    compat.set_defaults(func=_cmd_compat)
    included = sub.add_parser("included", help="is L(A) a subset of L(B)?")
    included.add_argument("left")
    included.add_argument("right")
    included.set_defaults(func=_cmd_included)
    serve = sub.add_parser(
        "serve",
        help="run the long-lived validation service (newline-delimited JSON over TCP)",
        description=(
            "Serve register_schema/validate/validate_batch/approximate over TCP "
            "until interrupted.  The global --timeout/--max-states/--max-steps "
            "flags become per-request budget defaults (not one shared budget); "
            "--strategy is the default compilation strategy; --cache-dir backs "
            "the schema registry with the persistent artifact store.  See "
            "docs/SERVICE.md for the wire protocol."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8743, help="TCP port")
    serve.add_argument(
        "--registry-capacity",
        type=int,
        default=128,
        metavar="N",
        help="max resident compiled schemas (LRU beyond this)",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


EXIT_BAD_INPUT = 2
EXIT_BUDGET_EXCEEDED = 3


def _build_budget(args) -> Budget | None:
    if args.timeout is None and args.max_states is None and args.max_steps is None:
        return None
    return Budget(
        timeout=args.timeout,
        max_states=args.max_states,
        max_steps=args.max_steps,
    )


def _emit_trace(trace: Trace, args) -> None:
    if args.trace:
        print(trace.render(), file=sys.stderr)
    if args.trace_json:
        with open(args.trace_json, "w", encoding="utf-8") as handle:
            handle.write(trace.to_json())
            handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        budget = _build_budget(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_BAD_INPUT
    if args.no_cache and args.cache_dir:
        print("error: --no-cache and --cache-dir are mutually exclusive", file=sys.stderr)
        return EXIT_BAD_INPUT
    if args.strategy not in ("blind", "schema-guided"):
        print(
            f"error: unknown strategy {args.strategy!r} "
            "(choose from 'blind', 'schema-guided')",
            file=sys.stderr,
        )
        return EXIT_BAD_INPUT
    if args.guide and args.strategy != "schema-guided":
        print(
            "error: --guide requires --strategy schema-guided", file=sys.stderr
        )
        return EXIT_BAD_INPUT
    trace = Trace(args.command) if (args.trace or args.trace_json) else None
    try:
        with contextlib.ExitStack() as stack:
            if budget is not None and args.command != "serve":
                # serve maps the governor flags onto *per-request*
                # budgets; one ambient budget shared by every request
                # would exhaust after the first few.
                stack.enter_context(budget)
            if trace is not None:
                stack.enter_context(trace)
            if args.no_cache:
                stack.enter_context(_cache.activation(_cache.DISABLED))
            elif args.cache_dir:
                stack.enter_context(_cache.ArtifactCache(args.cache_dir))
            return args.func(args)
    except BudgetExceededError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_BUDGET_EXCEEDED
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_BAD_INPUT
    finally:
        # Emit even on failure: partial traces of interrupted
        # constructions are exactly when you want them.
        if trace is not None:
            _emit_trace(trace, args)


if __name__ == "__main__":
    raise SystemExit(main())
