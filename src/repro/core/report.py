"""Schema-merge reports: everything a schema engineer wants to know about
one approximation, in one markdown document.

:func:`merge_report` runs the full Theorem 3.6 pipeline on two XSDs —
minimal upper approximation, minimization, exactness test, slack
accounting, example extra documents — and renders the outcome.  The same
skeleton serves difference reports (:func:`difference_report`).
"""

from __future__ import annotations

from repro.core.quality import extra_documents, upper_quality
from repro.core.upper import upper_difference, upper_union
from repro.schemas.edtd import EDTD
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import difference_edtd, edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.text_format import dumps
from repro.tree_automata.inclusion import edtd_includes
from repro.trees.xml_io import to_xml


def merge_report(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    max_size: int = 8,
    max_examples: int = 3,
    left_name: str = "A",
    right_name: str = "B",
) -> str:
    """A markdown report for merging two XSDs (Theorem 3.6)."""
    exact = edtd_union(left, right)
    merged = minimize_single_type(upper_union(left, right))
    return _report(
        title=f"Merge report: {left_name} | {right_name}",
        exact=exact,
        approx=merged,
        max_size=max_size,
        max_examples=max_examples,
        exact_label=f"{left_name} | {right_name}",
    )


def difference_report(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    max_size: int = 8,
    max_examples: int = 3,
    left_name: str = "A",
    right_name: str = "B",
) -> str:
    """A markdown report for diffing two XSDs (Theorem 3.10)."""
    exact = difference_edtd(left, right)
    approx = minimize_single_type(upper_difference(left, right))
    return _report(
        title=f"Difference report: {left_name} - {right_name}",
        exact=exact,
        approx=approx,
        max_size=max_size,
        max_examples=max_examples,
        exact_label=f"{left_name} - {right_name}",
    )


def _report(
    title: str,
    exact: EDTD,
    approx: SingleTypeEDTD,
    max_size: int,
    max_examples: int,
    exact_label: str,
) -> str:
    lines: list[str] = [f"# {title}", ""]
    is_exact = edtd_includes(exact, approx)
    if is_exact:
        lines.append(
            f"The result is **exact**: `{exact_label}` is single-type "
            "definable and the schema below defines it precisely."
        )
    else:
        lines.append(
            f"`{exact_label}` is **not** expressible as an XSD; the schema "
            "below is its unique minimal upper XSD-approximation "
            "(every XSD containing the result also contains this one)."
        )
    lines += ["", "## Result schema", "", "```"]
    lines.append(dumps(approx).rstrip())
    lines += ["```", ""]
    lines.append(
        f"types: {len(approx.types)}; size: {approx.size()}; "
        f"alphabet: {', '.join(sorted(map(str, approx.alphabet)))}"
    )
    if not is_exact:
        quality = upper_quality(exact, approx, max_size=max_size)
        lines += [
            "",
            "## Approximation slack",
            "",
            f"Documents admitted beyond `{exact_label}`, by node count "
            f"(0..{max_size}): `{list(quality.slack)}` "
            f"(total {quality.total_slack()}).",
        ]
        examples = extra_documents(exact, approx, max_size=max_size)
        if examples:
            lines += ["", f"Smallest {min(max_examples, len(examples))} examples:", ""]
            for tree in examples[:max_examples]:
                lines.append("```xml")
                lines.append(to_xml(tree))
                lines.append("```")
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"
