"""Approximation-quality metrics.

The paper motivates minimal upper approximations by error minimization
("minimize the number of XML documents outside X | Y", Section 1).  This
module quantifies that: for an upper approximation ``A`` of ``L(D)``, the
*slack* per document size is ``|A_n| - |L(D)_n|`` where ``X_n`` is the set
of member trees with exactly ``n`` nodes.  Dually, for a lower
approximation the *loss* is ``|L(D)_n| - |A_n|``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schemas.edtd import EDTD
from repro.trees.generate import count_trees_by_size, enumerate_trees


@dataclass(frozen=True)
class ApproximationQuality:
    """Per-size member counts of an approximation vs. the original.

    Attributes
    ----------
    original_counts / approx_counts:
        ``counts[n]`` = number of member trees with exactly ``n`` nodes.
    slack:
        ``approx - original`` per size (extra documents admitted; all
        non-negative for upper approximations).
    """

    original_counts: tuple[int, ...]
    approx_counts: tuple[int, ...]

    @property
    def slack(self) -> tuple[int, ...]:
        return tuple(
            a - o for a, o in zip(self.approx_counts, self.original_counts)
        )

    def total_slack(self) -> int:
        return sum(self.slack)

    def is_exact_within_bound(self) -> bool:
        return all(s == 0 for s in self.slack)


def upper_quality(original: EDTD, approximation: EDTD, max_size: int) -> ApproximationQuality:
    """Quality of an upper approximation on the size-bounded universe.

    Counts are exact (dynamic programming for single-type schemas,
    enumeration otherwise).
    """
    return ApproximationQuality(
        original_counts=tuple(count_trees_by_size(original, max_size)),
        approx_counts=tuple(count_trees_by_size(approximation, max_size)),
    )


def lower_quality(original: EDTD, approximation: EDTD, max_size: int) -> ApproximationQuality:
    """Quality of a lower approximation: ``slack`` becomes the per-size
    count of *lost* documents (original minus approximation)."""
    return ApproximationQuality(
        original_counts=tuple(count_trees_by_size(approximation, max_size)),
        approx_counts=tuple(count_trees_by_size(original, max_size)),
    )


def extra_documents(original: EDTD, approximation: EDTD, max_size: int) -> list:
    """Concrete documents admitted by *approximation* but not *original*,
    up to *max_size* nodes (enumeration-based; for reports and examples)."""
    original_set = set(enumerate_trees(original, max_size))
    return [
        tree
        for tree in enumerate_trees(approximation, max_size)
        if tree not in original_set
    ]
