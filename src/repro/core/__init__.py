"""The paper's contribution: optimal single-type approximations."""

from repro.core.decision import (
    Definability,
    DefinabilityResult,
    Maximality,
    MaximalityVerdict,
    is_lower_approximation,
    is_maximal_lower_approximation,
    is_minimal_upper_approximation,
    is_single_type_definable,
    is_upper_approximation,
    single_type_definability,
    singleton_edtd,
)
from repro.core.greedy import greedy_maximal_lower, try_absorb
from repro.core.lower import (
    is_c_type,
    is_s_type,
    maximal_lower_union,
    non_violating,
    swap_language_edtd,
)
from repro.core.compat import Compatibility, CompatibilityReport, check_compatibility
from repro.core.nary import merge_all, merge_all_direct, union_all
from repro.core.report import difference_report, merge_report
from repro.core.sampling_eval import SlackEstimate, estimate_slack_ratio
from repro.core.quality import (
    ApproximationQuality,
    extra_documents,
    lower_quality,
    upper_quality,
)
from repro.core.witness import (
    difference_witness,
    inclusion_counterexample,
    minimal_tree_of_type,
)
from repro.core.upper import (
    minimal_upper_approximation,
    upper_complement,
    upper_difference,
    upper_intersection,
    upper_union,
)

__all__ = [
    "ApproximationQuality",
    "Definability",
    "DefinabilityResult",
    "Maximality",
    "MaximalityVerdict",
    "single_type_definability",
    "extra_documents",
    "greedy_maximal_lower",
    "try_absorb",
    "is_c_type",
    "is_lower_approximation",
    "is_maximal_lower_approximation",
    "is_minimal_upper_approximation",
    "is_s_type",
    "is_single_type_definable",
    "is_upper_approximation",
    "lower_quality",
    "maximal_lower_union",
    "minimal_upper_approximation",
    "non_violating",
    "singleton_edtd",
    "swap_language_edtd",
    "upper_complement",
    "upper_difference",
    "upper_intersection",
    "upper_quality",
    "upper_union",
    "difference_witness",
    "inclusion_counterexample",
    "minimal_tree_of_type",
    "difference_report",
    "merge_report",
    "merge_all",
    "merge_all_direct",
    "union_all",
    "Compatibility",
    "CompatibilityReport",
    "check_compatibility",
    "SlackEstimate",
    "estimate_slack_ratio",
]
