"""Schema-evolution compatibility checking.

Given an old and a new version of an XSD, classify the change and produce
evidence:

* **backward compatible** — every old document validates against the new
  schema (``L(old) subseteq L(new)``): consumers can upgrade first;
* **forward compatible** — every new document validates against the old
  schema: producers can upgrade first;
* both — the versions are equivalent; neither — a breaking change.

Decisions are the PTIME Lemma 3.3 inclusions; evidence documents come from
the constructive witness generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.witness import inclusion_counterexample
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.tree import Tree


class Compatibility(Enum):
    EQUIVALENT = "equivalent"
    BACKWARD = "backward compatible (old documents remain valid)"
    FORWARD = "forward compatible (new documents validate against the old schema)"
    BREAKING = "breaking change in both directions"


@dataclass(frozen=True)
class CompatibilityReport:
    """Verdict plus the documents proving each failed direction.

    ``old_only`` is a document valid under the old schema but not the new
    one (present iff not backward compatible); ``new_only`` dually.
    """

    verdict: Compatibility
    old_only: Tree | None
    new_only: Tree | None

    @property
    def backward_compatible(self) -> bool:
        return self.old_only is None

    @property
    def forward_compatible(self) -> bool:
        return self.new_only is None


def check_compatibility(
    old: SingleTypeEDTD,
    new: SingleTypeEDTD,
) -> CompatibilityReport:
    """Classify the evolution from *old* to *new* with witness documents."""
    old_only = inclusion_counterexample(old, new)
    new_only = inclusion_counterexample(new, old)
    if old_only is None and new_only is None:
        verdict = Compatibility.EQUIVALENT
    elif old_only is None:
        verdict = Compatibility.BACKWARD
    elif new_only is None:
        verdict = Compatibility.FORWARD
    else:
        verdict = Compatibility.BREAKING
    return CompatibilityReport(verdict, old_only=old_only, new_only=new_only)
