"""Monte Carlo approximation-quality estimation.

The exact per-size counts of :mod:`repro.core.quality` are the right tool
on small universes; for large document sizes (or ambiguous exact
languages, where counting degenerates to enumeration) a sampling estimate
scales better: draw documents from the *approximation* and measure the
fraction that the exact language rejects — an unbiased estimator of the
conditional slack ratio ``P(t not in exact | t in approx)`` under the
sampler's distribution.

The estimate is distribution-relative (the sampler is not uniform over
the language), so use it for *comparisons and trends*, not as an absolute
measure; the tests cross-check it qualitatively against the exact counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.schemas.edtd import EDTD
from repro.trees.generate import sample_tree


@dataclass(frozen=True)
class SlackEstimate:
    """Result of a sampling run.

    ``ratio`` is the fraction of sampled approximation-documents outside
    the exact language; ``stderr`` the binomial standard error.
    """

    samples: int
    outside: int

    @property
    def ratio(self) -> float:
        return self.outside / self.samples if self.samples else 0.0

    @property
    def stderr(self) -> float:
        if not self.samples:
            return 0.0
        p = self.ratio
        return (p * (1.0 - p) / self.samples) ** 0.5


def estimate_slack_ratio(
    exact: EDTD,
    approximation: EDTD,
    rng: random.Random,
    *,
    target_size: int = 15,
    samples: int = 200,
) -> SlackEstimate:
    """Estimate how often a document drawn from *approximation* falls
    outside *exact* (documents of roughly *target_size* nodes).

    For genuine upper approximations a positive ratio quantifies the
    overshoot; for exact results the ratio is 0 by construction.
    """
    outside = 0
    for _ in range(samples):
        tree = sample_tree(approximation, rng, target_size=target_size)
        if not exact.accepts(tree):
            outside += 1
    return SlackEstimate(samples=samples, outside=outside)
