"""Minimal upper XSD-approximations (Section 3).

The central algorithm is Construction 3.1: determinize the type automaton of
an EDTD and union the content models of merged types.  Theorem 3.2 proves
the result is the *unique minimal* upper XSD-approximation — equivalently,
it defines ``closure(L(D))`` under ancestor-guarded subtree exchange.

Everything else in Section 3 is this construction applied to the boolean
EDTD constructions of :mod:`repro.schemas.ops`:

* union of two XSDs (Theorem 3.6) — the type automaton of the disjoint
  union determinizes into reachable *pairs*, so the construction is
  O(|D1| |D2|);
* intersection (Theorem 3.8) — exact, ST-REG is closed under intersection;
* complement (Theorem 3.9) — subsets stay of size <= 2, polynomial;
* difference (Theorem 3.10) — likewise polynomial.

All functions return reduced :class:`SingleTypeEDTD` objects; pass
``minimize=True`` to also minimize the number of types (the paper's
"optimal representations of optimal approximations").
"""

from __future__ import annotations

from repro import observability as _obs
from repro.errors import BudgetExceededError
from repro.runtime.budget import budget_phase, resolve_budget
from repro.schemas.dfa_xsd import DFAXSD
from repro.schemas.edtd import EDTD
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import (
    complement_edtd,
    difference_edtd,
    edtd_union,
    st_intersection,
)
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import type_automaton
from repro.strings.determinize import determinize
from repro.strings.kernels import cached_min_dfa
from repro.strings.nfa import NFA


def minimal_upper_approximation(
    edtd: EDTD,
    *,
    minimize: bool = False,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Construction 3.1: the unique minimal upper XSD-approximation of
    ``L(edtd)``.

    The result defines ``closure(L(edtd))`` (proof of Theorem 3.2).  It can
    be exponentially larger than the input — Theorem 3.2 shows this cannot
    be avoided; see :func:`repro.families.hard.theorem_3_2_family`.

    Parameters
    ----------
    edtd:
        Any EDTD (reduced internally, Proviso 2.3).
    minimize:
        Also minimize the resulting single-type EDTD (polynomial extra
        cost in the output size).  **Degrades gracefully**: if the budget
        trips during this optional phase, the unminimized — still exactly
        correct — approximation is returned instead of failing.
    budget:
        A :class:`repro.runtime.Budget` governing the construction
        (explicit argument wins over the ``with Budget(...):`` context
        default).  Exhaustion during the mandatory phases raises
        :class:`repro.errors.BudgetExceededError` whose ``checkpoint``
        resumes the subset construction.
    checkpoint:
        A :class:`repro.strings.determinize.SubsetCheckpoint` from a
        previous budget-interrupted run on the *same* EDTD.
    trace:
        A :class:`repro.observability.Trace` collecting the construction's
        span tree (explicit argument wins over the ``with Trace():``
        context default).
    """
    budget = resolve_budget(budget)
    reduced = edtd.reduced()
    if not reduced.types:
        empty = SingleTypeEDTD(
            alphabet=reduced.alphabet, types=set(), rules={}, starts=set(), mu={}
        )
        return empty

    with _obs.construction_span(
        "upper-approximation", trace=trace, budget=budget, input_types=len(reduced.types)
    ) as span:
        n = type_automaton(reduced)
        # States are frozensets of types / {Q_INIT}.
        subset_dfa = determinize(n, budget=budget, checkpoint=checkpoint)

        rules: dict[frozenset, object] = {}
        with _obs.construction_span(
            "content-union", budget=budget
        ), budget_phase(budget, "content-union"):
            try:
                for subset in subset_dfa.states:
                    if subset == subset_dfa.initial:
                        continue
                    if budget is not None:
                        budget.tick(1)
                    union_nfa = _content_union(reduced, subset)
                    # Memoized: merged-type unions repeat across subsets (and
                    # across constructions); hits recharge *budget* with the
                    # recorded construction cost so trips stay deterministic.
                    rules[subset] = cached_min_dfa(union_nfa, budget=budget)
            except BudgetExceededError as error:
                # A checkpoint raised here belongs to a *content* NFA, not the
                # type automaton — it must not be fed back into a resumed run.
                error.checkpoint = None
                raise

        xsd = DFAXSD(
            alphabet=reduced.alphabet,
            automaton=subset_dfa,
            rules=rules,
            starts=reduced.start_symbols(),
        )
        result = xsd.to_single_type().reduced()
        if minimize:
            # Degradation ladder, rung 1: minimization is an optional
            # representation optimization — the unminimized result is already
            # the exact minimal upper approximation, so a budget trip here
            # falls back instead of failing.
            try:
                result = minimize_single_type(result, budget=budget)
            except BudgetExceededError:
                pass
        if span is not None:
            span.annotate(output_types=len(result.types))
        if _obs.ENABLED:
            _obs.METRICS.counter("upper.runs").inc()
            _obs.METRICS.histogram("upper.output_types").observe(len(result.types))
    return result


def _content_union(edtd: EDTD, subset: frozenset) -> NFA:
    """NFA for ``union over tau in subset of mu(d(tau))``."""
    parts = [
        edtd.rules[tau].to_nfa().map_symbols(lambda t: edtd.mu[t])
        for tau in sorted(subset, key=repr)
    ]
    result = parts[0]
    for part in parts[1:]:
        result = result.union(part)
    return result


def upper_union(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    minimize: bool = False,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.6: the unique minimal upper XSD-approximation of
    ``L(left) | L(right)``, in time O(|left| |right|).

    Implemented as Construction 3.1 on the disjoint-union EDTD; the subset
    construction only ever produces subsets with at most one type from each
    side (the reachable pairs), so the bound holds.
    """
    return minimal_upper_approximation(
        edtd_union(left, right),
        minimize=minimize,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
    )


def upper_intersection(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    minimize: bool = False,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.8: the minimal upper XSD-approximation of an intersection
    is the intersection itself (ST-REG is closed under intersection).

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    the product construction has no resumable phase.
    """
    del checkpoint  # no resumable phase
    budget = resolve_budget(budget)
    with _obs.construction_span(
        "upper-intersection", trace=trace, budget=budget
    ):
        result = st_intersection(left, right, budget=budget)
        if minimize:
            # Same graceful degradation as Construction 3.1: the unminimized
            # intersection is already exact.
            try:
                result = minimize_single_type(result, budget=budget)
            except BudgetExceededError:
                pass
    return result


def upper_complement(
    schema: SingleTypeEDTD,
    *,
    minimize: bool = False,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.9: minimal upper XSD-approximation of ``T_Sigma - L(D)``,
    in time polynomial in |D|.

    The complement EDTD's type automaton only ever reaches subsets
    ``{tau, a}`` of size <= 2, so Construction 3.1 stays polynomial.
    """
    budget = resolve_budget(budget)
    return minimal_upper_approximation(
        complement_edtd(schema, budget=budget),
        minimize=minimize,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
    )


def upper_difference(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    minimize: bool = False,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.10: minimal upper XSD-approximation of
    ``L(left) - L(right)`` in polynomial time."""
    budget = resolve_budget(budget)
    return minimal_upper_approximation(
        difference_edtd(left, right, budget=budget),
        minimize=minimize,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
    )
