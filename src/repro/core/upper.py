"""Minimal upper XSD-approximations (Section 3).

The central algorithm is Construction 3.1: determinize the type automaton of
an EDTD and union the content models of merged types.  Theorem 3.2 proves
the result is the *unique minimal* upper XSD-approximation — equivalently,
it defines ``closure(L(D))`` under ancestor-guarded subtree exchange.

Everything else in Section 3 is this construction applied to the boolean
EDTD constructions of :mod:`repro.schemas.ops`:

* union of two XSDs (Theorem 3.6) — the type automaton of the disjoint
  union determinizes into reachable *pairs*, so the construction is
  O(|D1| |D2|);
* intersection (Theorem 3.8) — exact, ST-REG is closed under intersection;
* complement (Theorem 3.9) — subsets stay of size <= 2, polynomial;
* difference (Theorem 3.10) — likewise polynomial.

All functions return reduced :class:`SingleTypeEDTD` objects; pass
``minimize=True`` to also minimize the number of types (the paper's
"optimal representations of optimal approximations").
"""

from __future__ import annotations

from repro import observability as _obs
from repro.errors import BudgetExceededError
from repro.runtime.budget import budget_phase, resolve_budget
from repro.schemas.dfa_xsd import DFAXSD
from repro.schemas.edtd import EDTD
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import (
    complement_edtd,
    difference_edtd,
    edtd_union,
    st_intersection,
)
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import ancestor_guide, type_automaton
from repro.strings.determinize import determinize
from repro.strings.kernels import cached_min_dfa
from repro.strings.schema_guided import cached_guided_min_dfa, universal_guide
from repro.strings.nfa import NFA


def _as_guide_dfa(guide):
    """Coerce a ``guide=`` argument to a DFA: EDTDs become their
    valid-ancestor-string prefix machine (:func:`ancestor_guide`); DFAs
    (and None) pass through."""
    if guide is not None and isinstance(guide, EDTD):
        return ancestor_guide(guide)
    return guide


def minimal_upper_approximation(
    edtd: EDTD,
    *,
    minimize: bool = False,
    strategy: str = "blind",
    guide=None,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Construction 3.1: the unique minimal upper XSD-approximation of
    ``L(edtd)``.

    The result defines ``closure(L(edtd))`` (proof of Theorem 3.2).  It can
    be exponentially larger than the input — Theorem 3.2 shows this cannot
    be avoided; see :func:`repro.families.hard.theorem_3_2_family`.

    Parameters
    ----------
    edtd:
        Any EDTD (reduced internally, Proviso 2.3).
    minimize:
        Also minimize the resulting single-type EDTD (polynomial extra
        cost in the output size).  **Degrades gracefully**: if the budget
        trips during this optional phase, the unminimized — still exactly
        correct — approximation is returned instead of failing.
    budget:
        A :class:`repro.runtime.Budget` governing the construction
        (explicit argument wins over the ``with Budget(...):`` context
        default).  Exhaustion during the mandatory phases raises
        :class:`repro.errors.BudgetExceededError` whose ``checkpoint``
        resumes the subset construction.
    strategy / guide:
        Kernel selection for the subset construction (threaded to
        :func:`repro.strings.determinize.determinize`).  With
        ``strategy="schema-guided"`` the construction prunes subset
        states unreachable under *guide* — a DFA of allowed ancestor
        strings, or an EDTD (coerced via
        :func:`repro.schemas.type_automaton.ancestor_guide`); guiding by
        ``None`` (the universal guide) reproduces the blind construction
        exactly.  A pruning guide restricts the approximation to the
        guide's ancestor universe: the result is exact for documents
        whose ancestor strings the guide accepts.
    checkpoint:
        A :class:`repro.strings.determinize.SubsetCheckpoint` (or, for
        guided runs, a
        :class:`repro.strings.schema_guided.SchemaGuidedCheckpoint`)
        from a previous budget-interrupted run on the *same* EDTD with
        the same strategy and guide.
    trace:
        A :class:`repro.observability.Trace` collecting the construction's
        span tree (explicit argument wins over the ``with Trace():``
        context default).
    """
    budget = resolve_budget(budget)
    reduced = edtd.reduced()
    if not reduced.types:
        empty = SingleTypeEDTD(
            alphabet=reduced.alphabet, types=set(), rules={}, starts=set(), mu={}
        )
        return empty

    with _obs.construction_span(
        "upper-approximation", trace=trace, budget=budget, input_types=len(reduced.types)
    ) as span:
        n = type_automaton(reduced)
        # States are frozensets of types / {Q_INIT}.
        subset_dfa = determinize(
            n,
            budget=budget,
            checkpoint=checkpoint,
            strategy=strategy,
            guide=_as_guide_dfa(guide),
        )

        rules: dict[frozenset, object] = {}
        with _obs.construction_span(
            "content-union", budget=budget
        ), budget_phase(budget, "content-union"):
            try:
                outgoing: dict[frozenset, set] = {}
                if strategy == "schema-guided":
                    for (src, symbol) in subset_dfa.transitions:
                        outgoing.setdefault(src, set()).add(symbol)
                for subset in subset_dfa.states:
                    if subset == subset_dfa.initial:
                        continue
                    if budget is not None:
                        budget.tick(1)
                    union_nfa = _content_union(reduced, subset)
                    # Memoized: merged-type unions repeat across subsets (and
                    # across constructions); hits recharge *budget* with the
                    # recorded construction cost so trips stay deterministic.
                    if strategy == "schema-guided":
                        # The guide reaches the content models too: only the
                        # symbols actually leaving this subset state can occur
                        # as children under a guide-accepted ancestor string,
                        # so the union is determinized under the universal
                        # guide over that symbol set — guide-dead child labels
                        # are pruned *during* the subset construction instead
                        # of restricted away afterwards (`_restrict_content`
                        # remains the differential oracle for this pruning).
                        rules[subset] = cached_guided_min_dfa(
                            union_nfa,
                            universal_guide(frozenset(outgoing.get(subset, ()))),
                            budget=budget,
                        )
                    else:
                        rules[subset] = cached_min_dfa(union_nfa, budget=budget)
            except BudgetExceededError as error:
                # A checkpoint raised here belongs to a *content* NFA, not the
                # type automaton — it must not be fed back into a resumed run.
                error.checkpoint = None
                raise

        starts = reduced.start_symbols()
        if strategy == "schema-guided":
            # Root labels outside the guide's universe lose their initial
            # transition to pruning; drop them from the start set the same
            # way pruned child labels leave the content models.
            starts = {
                symbol
                for symbol in starts
                if subset_dfa.successor(subset_dfa.initial, symbol) is not None
            }
        xsd = DFAXSD(
            alphabet=reduced.alphabet,
            automaton=subset_dfa,
            rules=rules,
            starts=starts,
        )
        result = xsd.to_single_type().reduced()
        if minimize:
            # Degradation ladder, rung 1: minimization is an optional
            # representation optimization — the unminimized result is already
            # the exact minimal upper approximation, so a budget trip here
            # falls back instead of failing.
            try:
                result = minimize_single_type(result, budget=budget)
            except BudgetExceededError:
                pass
        if span is not None:
            span.annotate(output_types=len(result.types))
        if _obs.ENABLED:
            _obs.METRICS.counter("upper.runs").inc()
            _obs.METRICS.histogram("upper.output_types").observe(len(result.types))
    return result


# repro-par: shardable
def _restrict_content(nfa: NFA, allowed: frozenset) -> NFA:
    """Drop *nfa* transitions whose symbol is not in *allowed*.

    A pruning guide removes ancestor-automaton transitions into guide-dead
    states, so the matching content models must drop those child labels
    too — otherwise the DFA-based XSD would promise children the ancestor
    automaton can no longer type.  On guide-valid documents the restriction
    is invisible: a pruned child label never occurs under a guide-accepted
    ancestor string.  Returns *nfa* itself when nothing is dropped so the
    memo-cache key is unchanged on the universal-guide path.
    """
    transitions = {
        key: dsts for key, dsts in nfa.transitions.items() if key[1] in allowed
    }
    if len(transitions) == len(nfa.transitions):
        return nfa
    return NFA(nfa.states, nfa.alphabet, transitions, nfa.initials, nfa.finals)


# repro-par: shardable
def _content_union(edtd: EDTD, subset: frozenset) -> NFA:
    """NFA for ``union over tau in subset of mu(d(tau))``."""
    parts = [
        edtd.rules[tau].to_nfa().map_symbols(lambda t: edtd.mu[t])
        for tau in sorted(subset, key=repr)
    ]
    result = parts[0]
    for part in parts[1:]:
        result = result.union(part)
    return result


def upper_union(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    minimize: bool = False,
    strategy: str = "blind",
    guide=None,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.6: the unique minimal upper XSD-approximation of
    ``L(left) | L(right)``, in time O(|left| |right|).

    Implemented as Construction 3.1 on the disjoint-union EDTD; the subset
    construction only ever produces subsets with at most one type from each
    side (the reachable pairs), so the bound holds.  *strategy*/*guide*
    select the determinization kernel exactly as in
    :func:`minimal_upper_approximation`.
    """
    return minimal_upper_approximation(
        edtd_union(left, right),
        minimize=minimize,
        strategy=strategy,
        guide=guide,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
    )


def upper_intersection(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    minimize: bool = False,
    strategy: str = "blind",
    guide=None,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.8: the minimal upper XSD-approximation of an intersection
    is the intersection itself (ST-REG is closed under intersection).

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    the product construction has no resumable phase.  *strategy*/*guide*
    are likewise accepted for uniformity and ignored: the exact product
    has no subset construction to prune.
    """
    del checkpoint  # no resumable phase
    del strategy, guide  # no subset construction to guide
    budget = resolve_budget(budget)
    with _obs.construction_span(
        "upper-intersection", trace=trace, budget=budget
    ):
        result = st_intersection(left, right, budget=budget)
        if minimize:
            # Same graceful degradation as Construction 3.1: the unminimized
            # intersection is already exact.
            try:
                result = minimize_single_type(result, budget=budget)
            except BudgetExceededError:
                pass
    return result


def upper_complement(
    schema: SingleTypeEDTD,
    *,
    minimize: bool = False,
    strategy: str = "blind",
    guide=None,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.9: minimal upper XSD-approximation of ``T_Sigma - L(D)``,
    in time polynomial in |D|.

    The complement EDTD's type automaton only ever reaches subsets
    ``{tau, a}`` of size <= 2, so Construction 3.1 stays polynomial.
    *strategy*/*guide* select the determinization kernel exactly as in
    :func:`minimal_upper_approximation`.
    """
    budget = resolve_budget(budget)
    return minimal_upper_approximation(
        complement_edtd(schema, budget=budget),
        minimize=minimize,
        strategy=strategy,
        guide=guide,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
    )


def upper_difference(
    left: SingleTypeEDTD,
    right: SingleTypeEDTD,
    *,
    minimize: bool = False,
    strategy: str = "blind",
    guide=None,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 3.10: minimal upper XSD-approximation of
    ``L(left) - L(right)`` in polynomial time.  *strategy*/*guide* select
    the determinization kernel exactly as in
    :func:`minimal_upper_approximation`."""
    budget = resolve_budget(budget)
    return minimal_upper_approximation(
        difference_edtd(left, right, budget=budget),
        minimize=minimize,
        strategy=strategy,
        guide=guide,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
    )
