"""Constructive companion to Theorem 4.12: greedy maximal lower
approximations.

Theorem 4.12 proves (via the Kuratowski-Zorn lemma, non-constructively)
that every depth-bounded regular tree language has a maximal lower
XSD-approximation above any given lower approximation.  This module makes
the statement executable on bounded witness spaces:

starting from a lower approximation ``X`` (the empty schema by default),
repeatedly find a member tree ``t`` of the target with
``closure(L(X) | {t}) subseteq L(target)`` — checked *exactly* via
``upper(X | {t})`` and tree-automata inclusion — and replace ``X`` by that
closure schema.  When no improving tree of at most ``max_size`` nodes
remains, the result is a maximal-within-bound lower approximation; for
depth-bounded targets explored far enough this is a genuine maximal lower
approximation.

Because the scan order determines which incompatible trees get absorbed
first, different orders reach *different* maximal approximations — an
executable demonstration of the non-uniqueness Theorems 4.3/4.11 prove.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro import observability as _obs
from repro.core.decision import singleton_edtd
from repro.core.upper import minimal_upper_approximation
from repro.runtime.budget import resolve_budget
from repro.schemas.edtd import EDTD
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.tree_automata.inclusion import edtd_includes
from repro.trees.generate import enumerate_trees
from repro.trees.tree import Tree


def empty_schema(alphabet) -> SingleTypeEDTD:
    """The lower approximation everyone has: the empty language."""
    return SingleTypeEDTD(
        alphabet=alphabet, types=set(), rules={}, starts=set(), mu={}
    )


def try_absorb(
    current: SingleTypeEDTD,
    tree: Tree,
    target: EDTD,
    *,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD | None:
    """If ``closure(L(current) | {tree})`` stays inside ``L(target)``,
    return the (single-type) closure schema; otherwise None.

    Exact: the closure is ``upper(current | {tree})`` (Theorem 3.2) and
    the containment is checked with tree automata.

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    the absorb check has no resumable phase.
    """
    del checkpoint  # no resumable phase
    budget = resolve_budget(budget)
    extended = edtd_union(current, singleton_edtd(tree, target.alphabet))
    closure_schema = minimal_upper_approximation(
        extended, budget=budget, trace=trace
    )
    if edtd_includes(target, closure_schema, budget=budget):
        return closure_schema
    return None


def greedy_maximal_lower(
    target: EDTD,
    max_size: int = 6,
    seed_schema: SingleTypeEDTD | None = None,
    order: Sequence[Tree] | None = None,
    rng: random.Random | None = None,
    *,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Grow a lower XSD-approximation of ``L(target)`` until no member tree
    of at most *max_size* nodes improves it.

    Parameters
    ----------
    target:
        Any EDTD.
    max_size:
        Witness-tree search bound.
    seed_schema:
        Lower approximation to start from (Theorem 4.12's ``X``); the
        empty language by default.  Must satisfy
        ``L(seed) subseteq L(target)`` — not re-checked here.
    order:
        Explicit candidate order; defaults to size-lexicographic
        enumeration, optionally shuffled with *rng* (different orders can
        reach different maximal approximations).
    budget / trace:
        Resource budget and trace threaded through every absorb check
        (explicit argument wins over the context-manager defaults).
        *checkpoint* is accepted for keyword-surface uniformity but unused
        — the greedy loop has no resumable phase.
    """
    del checkpoint  # no resumable phase
    budget = resolve_budget(budget)
    current = seed_schema if seed_schema is not None else empty_schema(target.alphabet)
    candidates = list(order) if order is not None else enumerate_trees(target, max_size)
    if rng is not None:
        rng.shuffle(candidates)
    with _obs.construction_span(
        "greedy-lower", trace=trace, budget=budget, candidates=len(candidates)
    ) as span:
        changed = True
        passes = 0
        absorbed_count = 0
        while changed:  # ungoverned: passes bounded by |candidates|; each absorb check is governed
            changed = False
            passes += 1
            for tree in candidates:
                if current.accepts(tree):
                    continue
                absorbed = try_absorb(current, tree, target, budget=budget)
                if absorbed is not None:
                    current = absorbed
                    absorbed_count += 1
                    changed = True
        if span is not None:
            span.annotate(passes=passes, absorbed=absorbed_count)
        if _obs.ENABLED:
            _obs.METRICS.counter("greedy.runs").inc()
            _obs.METRICS.counter("greedy.absorbed").inc(absorbed_count)
    return current
