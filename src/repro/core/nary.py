"""N-ary schema integration: merging many XSDs at once.

Folding pairwise merges is *correct* because closure is monotone and
idempotent: ``closure(closure(X) | Y) = closure(X | Y)``, hence

    upper(upper(A | B) | C)  defines the same language as  upper(A | B | C)

— the unique minimal upper approximation of the full union, independent of
fold order.  :func:`merge_all` implements the fold (with intermediate
minimization to keep schemas small); :func:`union_upper_exact_check`
verifies the order-independence on demand (tests do it by default).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.upper import minimal_upper_approximation, upper_union
from repro.errors import SchemaError
from repro.schemas.edtd import EDTD
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD


def union_all(schemas: Sequence[EDTD]) -> EDTD:
    """The (generally non-single-type) EDTD for the union of all inputs."""
    if not schemas:
        raise SchemaError("union_all needs at least one schema")
    result = schemas[0]
    for schema in schemas[1:]:
        result = edtd_union(result, schema)
    return result


def merge_all(
    schemas: Sequence[SingleTypeEDTD],
    *,
    minimize_intermediates: bool = True,
) -> SingleTypeEDTD:
    """The minimal upper XSD-approximation of ``L(S1) | ... | L(Sn)``.

    Computed by folding :func:`upper_union` pairwise; the result's
    *language* does not depend on the order (uniqueness of the minimal
    upper approximation + idempotence of closure).  Intermediate
    minimization keeps the fold polynomial in practice.
    """
    if not schemas:
        raise SchemaError("merge_all needs at least one schema")
    result = schemas[0].reduced()
    for schema in schemas[1:]:
        result = upper_union(result, schema)
        if minimize_intermediates:
            result = minimize_single_type(result)
    return result


def merge_all_direct(schemas: Sequence[SingleTypeEDTD]) -> SingleTypeEDTD:
    """Reference implementation: one Construction 3.1 over the n-ary union
    EDTD (no folding).  Used to verify :func:`merge_all`'s
    order-independence; asymptotically the same, practically slower for
    many inputs because nothing is minimized along the way.
    """
    return minimal_upper_approximation(union_all(schemas))
