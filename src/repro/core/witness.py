"""Witness generation: concrete counterexample documents.

The PTIME inclusion test of Lemma 3.3 is made *constructive* here: when
``L(D1)`` is not contained in the single-type ``L(D2)``,
:func:`inclusion_counterexample` produces an actual tree in
``L(D1) - L(D2)``.  Schema engineers get a document explaining *why* a
merge/diff/roll-out is lossy, not just a boolean.

The witness is assembled from three searches, each following the structure
of the Lemma 3.3 proof:

1. a reachable type-automaton pair ``(tau1, tau2)`` whose content models
   separate (tracked with parent pointers during the product exploration);
2. a shortest child word in ``mu1(d1(tau1)) - mu2(d2(tau2))``, lifted back
   to a ``D1``-type word;
3. minimal derivations filling in all remaining subtrees, and a minimal
   ancestor spine from the root down to the separating node.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.errors import NotSingleTypeError, SchemaError
from repro.schemas.edtd import EDTD
from repro.schemas.type_automaton import is_single_type, type_automaton
from repro.strings.dfa import DFA
from repro.strings.ops import enumerate_words
from repro.trees.generate import min_derivation_sizes
from repro.trees.tree import Tree

Type = Hashable
Symbol = Hashable


# ----------------------------------------------------------------------
# Minimal derivations
# ----------------------------------------------------------------------

def minimal_tree_of_type(edtd: EDTD, type_: Type, _minimums: dict | None = None) -> Tree:
    """A smallest tree derivable from *type_* in the (reduced) EDTD."""
    minimums = _minimums if _minimums is not None else min_derivation_sizes(edtd)
    if minimums.get(type_, -1) < 0:
        raise SchemaError(f"type {type_!r} is unproductive")
    word = _cheapest_word(edtd.rules[type_], minimums)
    children = [minimal_tree_of_type(edtd, child, minimums) for child in word]
    return Tree(edtd.mu[type_], children)


def _cheapest_word(dfa: DFA, cost: dict) -> list:
    """A word of ``L(dfa)`` minimizing the summed per-symbol costs."""
    best: dict = {dfa.initial: (0.0, [])}
    # Dijkstra-light: costs are positive integers, the automaton is small.
    frontier = deque([dfa.initial])
    while frontier:  # ungoverned: cost relaxation over a materialized content DFA
        state = frontier.popleft()
        state_cost, word = best[state]
        for (src, symbol), dst in dfa.transitions.items():
            if src != state:
                continue
            symbol_cost = cost.get(symbol, -1)
            if symbol_cost < 0:
                continue
            candidate = state_cost + symbol_cost
            if candidate < best.get(dst, (float("inf"),))[0]:
                best[dst] = (candidate, word + [symbol])
                frontier.append(dst)
    final_options = [
        (value, word) for state, (value, word) in best.items() if state in dfa.finals
    ]
    if not final_options:
        raise SchemaError("content model has no derivable word")
    return min(final_options, key=lambda item: (item[0], len(item[1])))[1]


def _cheapest_word_containing(dfa: DFA, needle: Type, cost: dict) -> list:
    """A cheapest word of ``L(dfa)`` containing the symbol *needle*."""
    # States (q, seen); search as in _cheapest_word.
    start = (dfa.initial, False)
    best: dict = {start: (0.0, [])}
    frontier = deque([start])
    while frontier:  # ungoverned: cost relaxation over |states| x 2 product
        state = frontier.popleft()
        (q, seen) = state
        state_cost, word = best[state]
        for (src, symbol), dst in dfa.transitions.items():
            if src != q:
                continue
            symbol_cost = cost.get(symbol, -1)
            if symbol_cost < 0:
                continue
            nxt = (dst, seen or symbol == needle)
            candidate = state_cost + symbol_cost
            if candidate < best.get(nxt, (float("inf"),))[0]:
                best[nxt] = (candidate, word + [symbol])
                frontier.append(nxt)
    final_options = [
        (value, word)
        for (q, seen), (value, word) in best.items()
        if seen and q in dfa.finals
    ]
    if not final_options:
        raise SchemaError(f"no content word contains {needle!r}")
    return min(final_options, key=lambda item: (item[0], len(item[1])))[1]


# ----------------------------------------------------------------------
# Counterexamples to inclusion
# ----------------------------------------------------------------------

def inclusion_counterexample(sub: EDTD, sup: EDTD) -> Tree | None:
    """Return a tree in ``L(sub) - L(sup)``, or None when
    ``L(sub) subseteq L(sup)``.  *sup* must be single-type (Lemma 3.3).
    """
    if not is_single_type(sup):
        raise NotSingleTypeError("the superset schema must be single-type")
    sub = sub.reduced()
    sup = sup.reduced()
    if not sub.types:
        return None
    minimums = min_derivation_sizes(sub)

    sup_start_by_label = {sup.mu[t]: t for t in sup.starts}
    # Root-label failures.
    for start in sorted(sub.starts, key=repr):
        if sub.mu[start] not in sup_start_by_label:
            return minimal_tree_of_type(sub, start, minimums)

    a1 = type_automaton(sub)
    sup_child: dict = {}
    for type_ in sup.types:
        for occurring in sup.occurring_types(type_):
            sup_child[(type_, sup.mu[occurring])] = occurring

    # Product exploration with parent pointers.
    parents: dict[tuple, tuple | None] = {}
    queue: deque[tuple] = deque()
    for start in sorted(sub.starts, key=repr):
        pair = (start, sup_start_by_label[sub.mu[start]])
        if pair not in parents:
            parents[pair] = None
            queue.append(pair)
    separating: tuple | None = None
    while queue and separating is None:  # ungoverned: product BFS bounded by |types1| x |types2|
        pair = queue.popleft()
        tau1, tau2 = pair
        if not _content_included(sub, sup, tau1, tau2):
            separating = pair
            break
        for symbol in sorted(sub.alphabet, key=repr):
            successors1 = a1.successors(tau1, symbol)
            if not successors1:
                continue
            tau2_next = sup_child.get((tau2, symbol))
            if tau2_next is None:
                # Would contradict the passed content check; defensive.
                continue
            for tau1_next in sorted(successors1, key=repr):
                child_pair = (tau1_next, tau2_next)
                if child_pair not in parents:
                    parents[child_pair] = (pair, symbol)
                    queue.append(child_pair)
    if separating is None:
        return None

    tau1, tau2 = separating
    label_word = _separating_child_word(sub, sup, tau1, tau2)
    type_word = _lift_to_type_word(sub, tau1, label_word, minimums)
    node = Tree(
        sub.mu[tau1],
        [minimal_tree_of_type(sub, child, minimums) for child in type_word],
    )

    # Wrap the node upward along the discovered ancestor path.
    current_pair = separating
    subtree = node
    while parents[current_pair] is not None:
        parent_pair, _ = parents[current_pair]
        parent_tau1 = parent_pair[0]
        child_tau1 = current_pair[0]
        word = _cheapest_word_containing(
            sub.rules[parent_tau1], child_tau1, minimums
        )
        children = []
        placed = False
        for symbol in word:
            if symbol == child_tau1 and not placed:
                children.append(subtree)
                placed = True
            else:
                children.append(minimal_tree_of_type(sub, symbol, minimums))
        subtree = Tree(sub.mu[parent_tau1], children)
        current_pair = parent_pair
    return subtree


def _content_included(sub: EDTD, sup: EDTD, tau1: Type, tau2: Type) -> bool:
    from repro.strings.ops import includes as string_includes

    return string_includes(
        sup.content_over_sigma(tau2), sub.content_over_sigma(tau1)
    )


def _separating_child_word(sub: EDTD, sup: EDTD, tau1: Type, tau2: Type) -> tuple:
    difference = sub.content_over_sigma(tau1).difference(
        sup.content_over_sigma(tau2)
    )
    for word in enumerate_words(difference, max_length=len(difference.states) + 1):
        return word
    raise SchemaError("content models do not actually separate")


def _lift_to_type_word(
    sub: EDTD,
    tau1: Type,
    label_word: tuple,
    minimums: dict,
) -> list:
    """A word of ``d1(tau1)`` whose mu-image is *label_word* (preferring
    cheap types at each position)."""
    dfa = sub.rules[tau1]
    # BFS over (state, position).
    start = (dfa.initial, 0)
    back: dict = {start: None}
    queue: deque = deque([start])
    goal = None
    while queue:  # ungoverned: BFS bounded by |states| x |word|
        state = queue.popleft()
        q, position = state
        if position == len(label_word):
            if q in dfa.finals:
                goal = state
                break
            continue
        wanted = label_word[position]
        options = sorted(
            (
                (minimums.get(symbol, 10 ** 9), repr(symbol), symbol, dst)
                for (src, symbol), dst in dfa.transitions.items()
                if src == q and sub.mu.get(symbol) == wanted
                and minimums.get(symbol, -1) >= 0
            ),
        )
        for _, _, symbol, dst in options:
            nxt = (dst, position + 1)
            if nxt not in back:
                back[nxt] = (state, symbol)
                queue.append(nxt)
    if goal is None:
        raise SchemaError("failed to lift label word to a type word")
    word: list = []
    state = goal
    while back[state] is not None:
        state, symbol = back[state]
        word.append(symbol)
    word.reverse()
    return word


def difference_witness(left: EDTD, right: EDTD) -> Tree | None:
    """A document distinguishing two single-type schemas: a member of one
    but not the other (tried in both directions), or None when equivalent.
    """
    witness = inclusion_counterexample(left, right)
    if witness is not None:
        return witness
    return inclusion_counterexample(right, left)
