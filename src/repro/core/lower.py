"""Maximal lower XSD-approximations of unions (Section 4.2.2).

Maximal lower approximations are not unique in general (Theorem 4.3 — see
:mod:`repro.families.hard`), but fixing one disjunct restores uniqueness:
``L(D1) | nv(D2, D1)`` is the unique maximal lower XSD-approximation of
``L(D1) | L(D2)`` that contains ``L(D1)`` (Theorem 4.8), where
``nv(D2, D1)`` is the set of *non-violating* trees of ``D2``
(Definition 4.4).

The construction classifies the reachable *type pairs* of the product of
the two type automata:

* a pair ``tau = (tau1, tau2)`` is an **s-type** when some subtree
  realizable under ``tau`` in a ``D1``-tree is not realizable under ``tau``
  in any ``D2``-tree — decided by the PTIME inclusion
  ``L(D1^tau1) subseteq L(D2^tau2)`` (Lemma 3.3);
* a pair is a **c-type** when some context realizable under ``tau`` in
  ``D1`` is not a ``D2``-context — decided by the PTIME inclusion of the
  *swap language* ``W(tau)`` (D1-trees whose subtree at a ``tau``-node is
  replaced by a ``D2``-subtree) into ``L(D2)``, again via Lemma 3.3.

Everything runs in time polynomial in ``|D1| + |D2|`` (Lemma 4.6).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro import observability as _obs
from repro.core.upper import minimal_upper_approximation
from repro.runtime.budget import budget_phase, resolve_budget
from repro.schemas.dfa_xsd import from_single_type
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.builders import contains_symbol_from
from repro.strings.dfa import DFA
from repro.strings.minimize import minimize_dfa

Symbol = Hashable
Type = Hashable

#: Placeholder for an undefined type-automaton component.
BOTTOM = None

Pair = tuple  # (Type | None, Type | None)


class _PairContext:
    """Precomputed product-of-type-automata data shared by the s/c-type
    classification and the nv construction."""

    def __init__(self, d1: SingleTypeEDTD, d2: SingleTypeEDTD) -> None:
        self.d1 = d1
        self.d2 = d2
        self.alphabet = d1.alphabet | d2.alphabet
        self.step1 = _type_transitions(d1)
        self.step2 = _type_transitions(d2)
        self.start1 = {d1.mu[t]: t for t in d1.starts}
        self.start2 = {d2.mu[t]: t for t in d2.starts}
        self.xsd2 = from_single_type(d2) if d2.types else None

    def start_pair(self, label: Symbol) -> Pair:
        return (self.start1.get(label), self.start2.get(label))

    def step(self, pair: Pair, label: Symbol) -> Pair:
        t1, t2 = pair
        n1 = self.step1.get((t1, label)) if t1 is not None else None
        n2 = self.step2.get((t2, label)) if t2 is not None else None
        return (n1, n2)

    def reachable_pairs_from(self, seeds: set[Pair], budget=None) -> set[Pair]:
        seen = set(seeds)
        queue = deque(seeds)
        while queue:
            pair = queue.popleft()
            for label in self.alphabet:
                if budget is not None:
                    budget.tick(1, frontier=len(queue))
                nxt = self.step(pair, label)
                if nxt == (None, None) or nxt in seen:
                    continue
                seen.add(nxt)
                queue.append(nxt)
                if budget is not None:
                    budget.charge_states(1, frontier=len(queue))
        return seen


def _type_transitions(schema: SingleTypeEDTD) -> dict:
    result: dict[tuple[Type, Symbol], Type] = {}
    for type_ in schema.types:
        for occurring in schema.occurring_types(type_):
            result[(type_, schema.mu[occurring])] = occurring
    return result


# ----------------------------------------------------------------------
# s-types and c-types
# ----------------------------------------------------------------------

def _subtree_schema(schema: SingleTypeEDTD, type_: Type) -> SingleTypeEDTD:
    """``D^tau``: the schema with start set ``{tau}`` (subtree language)."""
    return SingleTypeEDTD(
        alphabet=schema.alphabet,
        types=schema.types,
        rules=schema.rules,
        starts={type_},
        mu=schema.mu,
    )


def is_s_type(ctx: _PairContext, pair: Pair) -> bool:
    """``S1(tau) - S2(tau) != {}`` for a product-reachable pair.

    With ``tau1 = BOTTOM`` no ``D1``-tree realizes the pair, so it is never
    an s-type.  With ``tau2 = BOTTOM`` the ``D2``-side is empty while the
    ``D1``-side is not (reduced schemas), so it always is.
    """
    t1, t2 = pair
    if t1 is None:
        return False
    if t2 is None:
        return True
    return not included_in_single_type(
        _subtree_schema(ctx.d1, t1), _subtree_schema(ctx.d2, t2)
    )


def is_c_type(ctx: _PairContext, pair: Pair) -> bool:
    """``C1(tau) - C2(tau) != {}`` for a product-reachable pair.

    Decided via the swap language: ``tau`` is a c-type iff some ``D1``-tree
    with its ``tau``-subtree replaced by a ``D2``-subtree of type ``tau2``
    falls outside ``L(D2)`` — an EDTD-into-stEDTD inclusion (Lemma 3.3).
    """
    t1, t2 = pair
    if t1 is None:
        return False
    if t2 is None:
        return True
    swap = swap_language_edtd(ctx, pair)
    if swap.is_empty_language():
        return False
    return not included_in_single_type(swap, ctx.d2)


def swap_language_edtd(ctx: _PairContext, target: Pair) -> EDTD:
    """The swap language ``W(target)``: trees ``t1[v <- s]`` with
    ``t1 in L(D1)``, ``anc-type(v) == target`` (both components defined) and
    ``s in L(D2^{target2})``.

    Types: ``("path", pair)`` mark the strict ancestors of ``v`` (tracking
    the product automaton), ``("sub", sigma2)`` type the replacing
    ``D2``-subtree, ``("off", sigma1)`` validate everything else against
    ``D1``.
    """
    d1, d2 = ctx.d1, ctx.d2
    t1_target, t2_target = target
    assert t1_target is not None and t2_target is not None

    # Product-reachable pairs with both components defined.
    both_start = {
        ctx.start_pair(a)
        for a in ctx.alphabet
        if ctx.start_pair(a)[0] is not None and ctx.start_pair(a)[1] is not None
    }
    pairs = {
        p
        for p in ctx.reachable_pairs_from(both_start)
        if p[0] is not None and p[1] is not None
    }

    types: set = {("sub", sigma) for sigma in d2.types}
    types |= {("off", sigma) for sigma in d1.types}
    types |= {("path", p) for p in pairs}

    mu: dict = {("sub", sigma): d2.mu[sigma] for sigma in d2.types}
    mu.update({("off", sigma): d1.mu[sigma] for sigma in d1.types})
    mu.update({("path", p): d1.mu[p[0]] for p in pairs})

    rules: dict = {}
    for sigma in d2.types:
        rules[("sub", sigma)] = _retag(d2.rules[sigma], "sub")
    for sigma in d1.types:
        rules[("off", sigma)] = _retag(d1.rules[sigma], "off")
    for p in pairs:
        rules[("path", p)] = _path_content(ctx, p, target, pairs)

    starts: set = set()
    for a in ctx.alphabet:
        p0 = ctx.start_pair(a)
        if p0[0] is None or p0[1] is None:
            continue
        starts.add(("path", p0))
        if p0 == target:
            starts.add(("sub", t2_target))
    return EDTD(
        alphabet=ctx.alphabet,
        types=types,
        rules=rules,
        starts=starts,
        mu=mu,
    ).reduced()


def _retag(dfa: DFA, tag: str) -> DFA:
    transitions = {
        (src, (tag, sym)): dst for (src, sym), dst in dfa.transitions.items()
    }
    return DFA(
        dfa.states,
        {(tag, sym) for sym in dfa.alphabet},
        transitions,
        dfa.initial,
        dfa.finals,
    )


# repro-par: shardable
def _path_content(ctx: _PairContext, p: Pair, target: Pair, pairs: set) -> DFA:
    """Content of a ``("path", p)`` node: a word of ``d1(p[0])`` with exactly
    one marked child — either continuing the path or the swapped subtree."""
    d1 = ctx.d1
    content1 = d1.rules[p[0]]
    initial = (content1.initial, 0)
    states: set = {initial}
    transitions: dict = {}
    symbols: set = set()
    queue: deque = deque([initial])
    while queue:  # ungoverned: BFS bounded by |content states| x 2
        state = queue.popleft()
        q1, flag = state
        for sigma in content1.alphabet:
            n1 = content1.successor(q1, sigma)
            if n1 is None:
                continue
            off = ("off", sigma)
            symbols.add(off)
            nxt = (n1, flag)
            transitions[(state, off)] = nxt
            if nxt not in states:
                states.add(nxt)
                queue.append(nxt)
            if flag == 0:
                label = d1.mu[sigma]
                child_pair = ctx.step(p, label)
                # The D1 component of the step is sigma by single-typedness.
                if child_pair[0] != sigma or child_pair[1] is None:
                    continue
                marked_options = []
                if child_pair in pairs:
                    marked_options.append(("path", child_pair))
                if child_pair == target:
                    marked_options.append(("sub", target[1]))
                for marked in marked_options:
                    symbols.add(marked)
                    nxt_marked = (n1, 1)
                    transitions[(state, marked)] = nxt_marked
                    if nxt_marked not in states:
                        states.add(nxt_marked)
                        queue.append(nxt_marked)
    finals = {
        (q1, flag) for (q1, flag) in states if q1 in content1.finals and flag == 1
    }
    return minimize_dfa(DFA(states, symbols, transitions, initial, finals))


# ----------------------------------------------------------------------
# nv(D2, D1) and the maximal lower approximation (Lemma 4.6, Theorem 4.8)
# ----------------------------------------------------------------------

def non_violating(
    d2: SingleTypeEDTD, d1: SingleTypeEDTD, *, budget=None, checkpoint=None, trace=None
) -> SingleTypeEDTD:
    """Lemma 4.6: the single-type EDTD ``D'`` with ``L(D') = nv(d2, d1)``.

    ``nv(d2, d1)`` (Definition 4.4) is the set of trees of ``L(d2)`` whose
    closure with any ``L(d1)``-tree stays inside the union — the maximal
    part of ``d2`` that can be added to ``d1``.

    Types of ``D'`` are the reachable product pairs ``(tau1|BOTTOM, tau2)``;
    the content model of a pair follows the case split of Section 4.2.2:

    * c-type: ``mu2(d2(tau2)) & mu1(d1(tau1))``;
    * otherwise: child strings of ``d2`` avoiding *slab* symbols entirely,
      plus child strings in both content models containing a slab symbol,
      where ``slab(tau)`` collects the labels stepping to an s-type.

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    the pair classification has no resumable phase.
    """
    del checkpoint  # no resumable phase
    budget = resolve_budget(budget)
    d1 = d1.reduced()
    d2 = d2.reduced()
    if not d2.types:
        return d2
    if not d1.types:
        return d2
    with _obs.construction_span("nv", trace=trace, budget=budget) as span:
        ctx = _PairContext(d1, d2)

        start_pairs = {
            ctx.start_pair(a) for a in ctx.alphabet if ctx.start_pair(a)[1] is not None
        }
        with budget_phase(budget, "nv-pairs"):
            pairs = {
                p
                for p in ctx.reachable_pairs_from(start_pairs, budget=budget)
                if p[1] is not None
            }

        s_cache: dict[Pair, bool] = {}
        c_cache: dict[Pair, bool] = {}

        def s_type(pair: Pair) -> bool:
            if pair not in s_cache:
                s_cache[pair] = is_s_type(ctx, pair)
            return s_cache[pair]

        def c_type(pair: Pair) -> bool:
            if pair not in c_cache:
                c_cache[pair] = is_c_type(ctx, pair)
            return c_cache[pair]

        rules: dict = {}
        mu: dict = {}
        for pair in pairs:
            if budget is not None:
                budget.tick(1)
            t1, t2 = pair
            mu[pair] = d2.mu[t2]
            content2 = d2.content_over_sigma(t2)
            content1 = (
                d1.content_over_sigma(t1) if t1 is not None else None
            )
            slab = frozenset(
                a for a in ctx.alphabet
                if ctx.step(pair, a)[0] is not None and s_type(ctx.step(pair, a))
            )
            if c_type(pair):
                assert content1 is not None  # c-types have a defined D1 component
                selected = content2.intersection(content1)
            else:
                no_slab = _avoiding(ctx.alphabet, slab)
                part_a = content2.intersection(no_slab)
                if content1 is None or not slab:
                    selected = part_a
                else:
                    with_slab = contains_symbol_from(ctx.alphabet, slab)
                    part_b = content2.intersection(content1).intersection(with_slab)
                    selected = part_a.union(part_b)
            rules[pair] = _pair_typed(minimize_dfa(selected), ctx, pair)

        starts = {p for p in start_pairs if p in pairs}
        if span is not None:
            span.annotate(
                pairs=len(pairs),
                s_types=sum(1 for v in s_cache.values() if v),
                c_types=sum(1 for v in c_cache.values() if v),
            )
        if _obs.ENABLED:
            _obs.METRICS.counter("nv.runs").inc()
            _obs.METRICS.histogram("nv.pairs").observe(len(pairs))
    return SingleTypeEDTD(
        alphabet=ctx.alphabet,
        types=pairs,
        rules=rules,
        starts=starts,
        mu=mu,
    ).reduced()


# repro-par: shardable
def _avoiding(alphabet: frozenset, forbidden: frozenset) -> DFA:
    """DFA for ``(Sigma - forbidden)*`` over *alphabet*."""
    transitions = {
        ("ok", a): "ok" for a in alphabet if a not in forbidden
    }
    return DFA({"ok"}, alphabet, transitions, "ok", {"ok"})


# repro-par: shardable
def _pair_typed(content: DFA, ctx: _PairContext, pair: Pair) -> DFA:
    """Lift a content DFA over Sigma to one over the pair types, assigning
    each child label ``a`` the type ``step(pair, a)``."""
    transitions = {}
    symbols = set()
    for (src, a), dst in content.transitions.items():
        child = ctx.step(pair, a)
        if child[1] is None:
            # Labels not allowed by d2 cannot occur in the selected content
            # (it is intersected with mu2(d2(tau2))); skip defensively.
            continue
        transitions[(src, child)] = dst
        symbols.add(child)
    return DFA(content.states, symbols, transitions, content.initial, content.finals)


def maximal_lower_union(
    d1: SingleTypeEDTD,
    d2: SingleTypeEDTD,
    *,
    budget=None,
    checkpoint=None,
    trace=None,
) -> SingleTypeEDTD:
    """Theorem 4.8: the unique maximal lower XSD-approximation of
    ``L(d1) | L(d2)`` that contains ``L(d1)``, namely
    ``L(d1) | nv(d2, d1)``.

    By Lemma 4.7 this union is single-type definable, so taking the minimal
    upper approximation of the (non-single-type) union EDTD returns a schema
    for exactly the union.  Polynomial time overall.
    """
    budget = resolve_budget(budget)
    with _obs.construction_span("lower-union", trace=trace, budget=budget):
        nv = non_violating(d2, d1, budget=budget)
        result = minimal_upper_approximation(
            edtd_union(d1.reduced(), nv), budget=budget, checkpoint=checkpoint
        )
    return result
