"""Decision problems around XSD-approximations (Theorems 3.5, 4.15; the
EXPTIME definability test of Martens et al. recalled in Related Work).

The paper establishes *complexities* (PSPACE-complete, 2EXPTIME) via
non-constructive guessing procedures; this module implements exact
deterministic equivalents:

* :func:`is_minimal_upper_approximation` — Theorem 3.5's problem, decided
  by explicitly building the minimal upper approximation and comparing
  (PTIME per Lemma 3.3 once both sides are single-type; exponential only
  through the size of the constructed approximation, matching the PSPACE
  procedure's implicit cost when made deterministic).
* :func:`is_single_type_definable` — the EXPTIME-complete test whether a
  regular tree language is in ST-REG: ``L(D)`` is single-type definable iff
  ``L(upper(D)) subseteq L(D)``, checked exactly with tree automata.
* :func:`is_maximal_lower_approximation` — Section 4.4.2's problem.  The
  paper's 2EXPTIME automaton is astronomically infeasible; we implement the
  same decision ("is there a tree whose closure with L(S) stays inside
  L(D)?") as a bounded search over candidate trees, exact whenever the
  witness space is exhausted (see :class:`MaximalityVerdict`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro import observability as _obs
from repro.core.upper import minimal_upper_approximation
from repro.errors import BudgetExceededError
from repro.runtime.budget import resolve_budget
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.builders import word_language
from repro.strings.dfa import DFA
from repro.tree_automata.inclusion import edtd_includes
from repro.trees.generate import enumerate_trees
from repro.trees.tree import Tree


def is_upper_approximation(candidate: SingleTypeEDTD, edtd: EDTD) -> bool:
    """Is ``L(candidate)`` an upper XSD-approximation of ``L(edtd)``?

    (Definition 2.12 — containment only.)  PTIME via Lemma 3.3.
    """
    return included_in_single_type(edtd, candidate)


def is_minimal_upper_approximation(candidate: SingleTypeEDTD, edtd: EDTD) -> bool:
    """Theorem 3.5's decision problem, solved exactly.

    ``candidate`` is the minimal upper XSD-approximation of ``L(edtd)`` iff

    1. ``L(edtd) subseteq L(candidate)`` (Lemma 3.3, PTIME) and
    2. ``L(candidate) subseteq L(upper(edtd))`` (the paper's criterion (1) in
       the proof of Theorem 3.5; the reverse inclusion is automatic by
       minimality of ``upper(edtd)``).
    """
    if not included_in_single_type(edtd, candidate):
        return False
    reference = minimal_upper_approximation(edtd)
    return included_in_single_type(candidate, reference)


def is_single_type_definable(
    edtd: EDTD, *, budget=None, checkpoint=None, trace=None
) -> bool:
    """Is ``L(edtd)`` definable by a single-type EDTD?  (EXPTIME-complete,
    Martens et al. [19].)

    ``L(edtd) in ST-REG`` iff the minimal upper approximation changes
    nothing: ``L(upper(edtd)) subseteq L(edtd)`` (the other containment
    always holds).  The containment of a single-type EDTD in a general EDTD
    is checked exactly via tree automata — since PR 2 by the on-the-fly
    worklist saturation of
    :func:`repro.tree_automata.inclusion.bta_difference_empty`, which
    exits early on the first counterexample tree, so non-definable inputs
    are usually refuted long before the pair space saturates.

    Under a budget this raises :class:`repro.errors.BudgetExceededError` on
    exhaustion; use :func:`single_type_definability` for the three-valued
    variant that degrades to ``UNKNOWN`` with a resumable checkpoint.
    """
    budget = resolve_budget(budget)
    with _obs.construction_span(
        "definability", trace=trace, budget=budget
    ) as span:
        upper = minimal_upper_approximation(
            edtd, budget=budget, checkpoint=checkpoint
        )
        answer = edtd_includes(edtd, upper, budget=budget)
        if span is not None:
            span.annotate(definable=answer)
        if _obs.ENABLED:
            _obs.METRICS.counter("definability.runs").inc()
    return answer


class Definability(Enum):
    """Three-valued verdict of the governed definability test."""

    YES = "single-type definable"
    NO = "not single-type definable"
    UNKNOWN = "budget exhausted before a verdict was reached"


@dataclass(frozen=True)
class DefinabilityResult:
    """Outcome of :func:`single_type_definability`.

    ``verdict`` is conclusive for ``YES``/``NO``.  On ``UNKNOWN`` the
    budget tripped: ``error`` holds the :class:`BudgetExceededError` (with
    partial-progress counters) and ``checkpoint``, when not ``None``, is a
    :class:`repro.strings.determinize.SubsetCheckpoint` of the interrupted
    subset construction — pass it back via
    ``single_type_definability(edtd, checkpoint=...)`` with a fresh budget
    to *resume* rather than restart.
    """

    verdict: Definability
    error: BudgetExceededError | None = None
    checkpoint: object | None = None

    def __bool__(self) -> bool:
        return self.verdict is Definability.YES


def single_type_definability(
    edtd: EDTD,
    *,
    budget=None,
    checkpoint=None,
    trace=None,
) -> DefinabilityResult:
    """Three-valued, budget-aware version of
    :func:`is_single_type_definable`.

    Instead of propagating :class:`BudgetExceededError`, exhaustion yields
    ``Definability.UNKNOWN`` together with the error (carrying
    partial-progress counters) and, when the subset construction was the
    phase that tripped, a resumable checkpoint.
    """
    budget = resolve_budget(budget)
    with _obs.construction_span(
        "definability", trace=trace, budget=budget
    ) as span:
        try:
            upper = minimal_upper_approximation(
                edtd, budget=budget, checkpoint=checkpoint
            )
            answer = edtd_includes(edtd, upper, budget=budget)
        except BudgetExceededError as error:
            if span is not None:
                span.annotate(verdict="UNKNOWN")
            return DefinabilityResult(
                verdict=Definability.UNKNOWN,
                error=error,
                checkpoint=error.checkpoint,
            )
        if span is not None:
            span.annotate(verdict="YES" if answer else "NO")
        if _obs.ENABLED:
            _obs.METRICS.counter("definability.runs").inc()
    return DefinabilityResult(
        Definability.YES if answer else Definability.NO
    )


def singleton_edtd(tree: Tree, alphabet: frozenset | None = None) -> EDTD:
    """An EDTD accepting exactly ``{tree}`` (types = node paths)."""
    labels = tree.labels()
    sigma = labels | (alphabet or frozenset())
    types = set()
    rules: dict = {}
    mu: dict = {}
    for path, node in tree.nodes():
        types.add(("node", path))
        mu[("node", path)] = node.label
        child_word = tuple(
            ("node", path + (index,)) for index in range(len(node.children))
        )
        rules[("node", path)] = word_language(child_word)
    return EDTD(
        alphabet=sigma,
        types=types,
        rules=rules,
        starts={("node", ())},
        mu=mu,
    )


def is_lower_approximation(candidate: SingleTypeEDTD, edtd: EDTD) -> bool:
    """Is ``L(candidate)`` a lower XSD-approximation of ``L(edtd)``?

    Containment of a single-type EDTD in a general EDTD — exact via tree
    automata (EXPTIME in general; PTIME when *edtd* is single-type, in
    which case Lemma 3.3 is used instead).
    """
    from repro.schemas.type_automaton import is_single_type

    if is_single_type(edtd):
        return included_in_single_type(candidate, edtd)
    return edtd_includes(edtd, candidate)


class Maximality(Enum):
    """Outcome of the bounded maximal-lower-approximation check."""

    NOT_LOWER = "not a lower approximation"
    NOT_MAXIMAL = "refuted: a strictly larger lower approximation exists"
    MAXIMAL_WITHIN_BOUND = "no improving tree exists within the search bound"


@dataclass(frozen=True)
class MaximalityVerdict:
    """Verdict plus the improving witness tree when one was found."""

    outcome: Maximality
    witness: Tree | None = None


def is_maximal_lower_approximation(
    candidate: SingleTypeEDTD,
    edtd: EDTD,
    max_size: int = 6,
    *,
    budget=None,
    checkpoint=None,
    trace=None,
) -> MaximalityVerdict:
    """Bounded-exact check of Section 4.4.2's decision problem.

    ``candidate`` fails to be maximal iff some ``t in L(edtd)`` has
    ``closure(L(candidate) | {t}) subseteq L(edtd)`` (the paper's
    reformulation before Lemma 4.13).  Since
    ``closure(X) = L(minimal_upper_approximation(X))`` (Theorem 3.2), each
    candidate tree ``t`` is checked *exactly*:

        ``upper(candidate | {t}) subseteq edtd``  (tree-automata inclusion).

    Candidate trees are enumerated up to *max_size* nodes.  A
    ``NOT_MAXIMAL`` verdict is conclusive (the witness is real); a
    ``MAXIMAL_WITHIN_BOUND`` verdict is conclusive for languages whose
    improving witnesses, if any, must appear within the bound — and is
    otherwise the best any terminating procedure can report without the
    paper's 2EXPTIME automaton.

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    the tree enumeration has no resumable phase.
    """
    del checkpoint  # no resumable phase
    budget = resolve_budget(budget)
    with _obs.construction_span(
        "maximality", trace=trace, budget=budget
    ) as span:
        if not is_lower_approximation(candidate, edtd):
            if span is not None:
                span.annotate(outcome=Maximality.NOT_LOWER.name)
            return MaximalityVerdict(Maximality.NOT_LOWER)
        examined = 0
        for tree in enumerate_trees(edtd, max_size):
            if budget is not None:
                budget.tick(1)
            examined += 1
            if candidate.accepts(tree):
                continue
            extended = edtd_union(candidate, singleton_edtd(tree, edtd.alphabet))
            closure_schema = minimal_upper_approximation(extended, budget=budget)
            if edtd_includes(edtd, closure_schema, budget=budget):
                if span is not None:
                    span.annotate(
                        outcome=Maximality.NOT_MAXIMAL.name, trees_examined=examined
                    )
                return MaximalityVerdict(Maximality.NOT_MAXIMAL, witness=tree)
        if span is not None:
            span.annotate(
                outcome=Maximality.MAXIMAL_WITHIN_BOUND.name, trees_examined=examined
            )
    return MaximalityVerdict(Maximality.MAXIMAL_WITHIN_BOUND)
