"""Subtree-exchange closure machinery (Sections 2.5, 4.1)."""

from repro.closure.closure import (
    bounded_closure,
    closure_of_pair,
    derivation_tree_for,
    is_closed_under_exchange,
    is_derivation_tree,
)
from repro.closure.nk_automaton import nk_automaton, separates_up_to
from repro.closure.exchange import (
    all_exchanges,
    all_type_guarded_exchanges,
    anc_type,
    exchange,
    try_exchange,
    type_guarded_exchange,
)
from repro.closure.properties import (
    ExchangeViolation,
    exchange_violation,
    type_exchange_violation,
)

__all__ = [
    "ExchangeViolation",
    "nk_automaton",
    "separates_up_to",
    "all_exchanges",
    "all_type_guarded_exchanges",
    "anc_type",
    "bounded_closure",
    "closure_of_pair",
    "derivation_tree_for",
    "exchange",
    "exchange_violation",
    "is_closed_under_exchange",
    "is_derivation_tree",
    "try_exchange",
    "type_exchange_violation",
    "type_guarded_exchange",
]
