"""Closure under (type-)guarded subtree exchange, and derivation trees.

``closure(T)`` (Definition 2.14) is the least language containing ``T`` and
closed under ancestor-guarded subtree exchange; it is well-defined by Lemma
2.15.  For finite ``T`` the closure may still be infinite (sizes grow), but
two structural facts make bounded computation meaningful:

* an exchange never *deepens* beyond its inputs — the replacement subtree
  hangs at the same depth as the replaced one — so closing a depth-bounded
  set is complete per depth;
* the closure restricted to trees of at most ``max_size`` nodes may require
  larger intermediates, so :func:`bounded_closure` is an
  *under-approximation* of ``closure(T)`` intersected with the size-bounded
  universe.  Passing a generous ``max_size`` makes it exact on the smaller
  universe one actually inspects (tests do exactly this).

Derivation trees (Definition 2.16) certify closure membership (Lemma 2.17):
:func:`derivation_tree_for` produces one, :func:`is_derivation_tree` checks
one.  A derivation tree is represented as a :class:`Tree` whose *labels* are
the derived trees.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.closure.exchange import all_exchanges, all_type_guarded_exchanges
from repro.runtime.budget import budget_phase, resolve_budget
from repro.strings.nfa import NFA
from repro.trees.tree import Tree


def bounded_closure(
    trees: Iterable[Tree],
    max_size: int,
    automaton: NFA | None = None,
    restrict_labels: frozenset | None = None,
    *,
    budget=None,
) -> frozenset[Tree]:
    """Fixpoint of guarded subtree exchange, keeping trees of at most
    *max_size* nodes.

    With *automaton* given, exchanges are ancestor-*type*-guarded w.r.t. it
    (Definition 4.1 / ``type-closure``); otherwise plain ancestor-guarded.
    *restrict_labels* further limits exchanged nodes to those labels
    (``type-closure^{N, Sigma'}``).

    The fixpoint can explode combinatorially even under a size bound, so
    the loop is governed: one state is charged per tree added to the
    closure, one step per exchange pair examined.
    """
    budget = resolve_budget(budget)
    current: set[Tree] = {t for t in trees if t.size() <= max_size}
    queue: deque[Tree] = deque(current)
    if budget is not None:
        budget.charge_states(len(current), frontier=len(queue))
    with budget_phase(budget, "closure"):
        while queue:
            tree = queue.popleft()
            snapshot = list(current)
            for other in snapshot:
                if budget is not None:
                    budget.tick(1, frontier=len(queue))
                for left, right in ((tree, other), (other, tree)):
                    if automaton is None:
                        produced = all_exchanges(left, right)
                    else:
                        produced = all_type_guarded_exchanges(
                            left, right, automaton, restrict_labels
                        )
                    for result in produced:
                        if result.size() <= max_size and result not in current:
                            current.add(result)
                            queue.append(result)
                            if budget is not None:
                                budget.charge_states(1, frontier=len(queue))
    return frozenset(current)


def closure_of_pair(t1: Tree, t2: Tree, max_size: int) -> frozenset[Tree]:
    """``closure(t1, t2)`` (Definition 2.14) bounded by *max_size*."""
    return bounded_closure([t1, t2], max_size)


def is_closed_under_exchange(trees: Iterable[Tree]) -> bool:
    """Check Definition 2.10 for a finite set: every guarded exchange between
    members stays in the set."""
    tree_set = set(trees)
    for t1 in tree_set:
        for t2 in tree_set:
            for result in all_exchanges(t1, t2):
                if result not in tree_set:
                    return False
    return True


# ----------------------------------------------------------------------
# Derivation trees (Definition 2.16)
# ----------------------------------------------------------------------

def is_derivation_tree(theta: Tree, base: Iterable[Tree], target: Tree) -> bool:
    """Verify that *theta* is a derivation tree of *target* w.r.t. *base*.

    *theta* is a binary tree whose labels are trees: the root is labeled
    *target*, every leaf is labeled with a member of *base*, and every
    internal node's label arises from its children's labels by one
    ancestor-guarded subtree exchange.
    """
    base_set = set(base)
    if theta.label != target:
        return False
    for _, node in theta.nodes():
        if not node.children:
            if node.label not in base_set:
                return False
            continue
        if len(node.children) != 2:
            return False
        left, right = node.children[0].label, node.children[1].label
        if not any(result == node.label for result in all_exchanges(left, right)):
            return False
    return True


def derivation_tree_for(
    target: Tree,
    base: Iterable[Tree],
    max_size: int,
    *,
    budget=None,
) -> Tree | None:
    """Produce a derivation tree of *target* w.r.t. *base* (Lemma 2.17),
    searching within the size-*max_size* bounded closure.

    Returns None when *target* is not in the bounded closure.  The returned
    object is a :class:`Tree` whose labels are the derived trees (leaf
    labels are members of *base*).
    """
    budget = resolve_budget(budget)
    base_list = [t for t in base if t.size() <= max_size]
    # provenance: tree -> None (base member) or (left parent, right parent)
    provenance: dict[Tree, tuple[Tree, Tree] | None] = {
        t: None for t in base_list
    }
    queue: deque[Tree] = deque(base_list)
    if target in provenance:
        return Tree(target)
    with budget_phase(budget, "derivation-search"):
        while queue:
            tree = queue.popleft()
            snapshot = list(provenance)
            for other in snapshot:
                if budget is not None:
                    budget.tick(1, frontier=len(queue))
                for left, right in ((tree, other), (other, tree)):
                    for result in all_exchanges(left, right):
                        if result.size() > max_size or result in provenance:
                            continue
                        provenance[result] = (left, right)
                        if budget is not None:
                            budget.charge_states(1, frontier=len(queue))
                        if result == target:
                            return _build_derivation(target, provenance)
                        queue.append(result)
    return None


def _build_derivation(
    target: Tree,
    provenance: dict[Tree, tuple[Tree, Tree] | None],
) -> Tree:
    parents = provenance[target]
    if parents is None:
        return Tree(target)
    left, right = parents
    return Tree(
        target,
        [_build_derivation(left, provenance), _build_derivation(right, provenance)],
    )
