"""Executable versions of the closure characterizations (Theorems 2.11, 4.2).

These helpers check, on a bounded universe, whether the language of an EDTD
is closed under (type-)guarded subtree exchange.  For depth-bounded
languages checked to their full depth the evidence is conclusive in the
limit of the size bound; in general a returned *witness* is a genuine
counterexample while ``None`` means "no violation within the bound".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.closure.exchange import all_exchanges, all_type_guarded_exchanges
from repro.schemas.edtd import EDTD
from repro.schemas.type_automaton import type_automaton
from repro.strings.nfa import NFA
from repro.trees.generate import enumerate_trees
from repro.trees.tree import Tree


@dataclass(frozen=True)
class ExchangeViolation:
    """A counterexample to closure under subtree exchange.

    ``result`` arises from ``left`` and ``right`` by one guarded exchange
    yet is not in the language.
    """

    left: Tree
    right: Tree
    result: Tree


def exchange_violation(
    edtd: EDTD,
    max_size: int,
    automaton: NFA | None = None,
) -> ExchangeViolation | None:
    """Search the size-bounded fragment of ``L(edtd)`` for a violation of
    closure under (type-)guarded subtree exchange.

    A non-None result proves (Theorem 2.11) that ``L(edtd)`` is *not*
    definable by a single-type EDTD.  ``None`` only says no violation was
    found within the bound — use
    :func:`repro.core.decision.is_single_type_definable` for the exact
    (EXPTIME) answer.
    """
    members = enumerate_trees(edtd, max_size)
    member_set = set(members)
    for t1 in members:
        for t2 in members:
            if automaton is None:
                produced = all_exchanges(t1, t2)
            else:
                produced = all_type_guarded_exchanges(t1, t2, automaton)
            for result in produced:
                if result in member_set:
                    continue
                if result.size() <= max_size:
                    # Certainly enumerated if it were a member.
                    return ExchangeViolation(t1, t2, result)
                if not edtd.accepts(result):
                    return ExchangeViolation(t1, t2, result)
    return None


def type_exchange_violation(edtd: EDTD, max_size: int) -> ExchangeViolation | None:
    """Like :func:`exchange_violation` but w.r.t. the EDTD's own type
    automaton (Theorem 4.2's characterization)."""
    return exchange_violation(edtd, max_size, automaton=type_automaton(edtd))
