"""Ancestor-guarded subtree exchange (Definition 2.10, Figure 1) and its
ancestor-*type*-guarded refinement (Definition 4.1).

The exchange operation is the semantic heart of the paper: a regular tree
language is definable by a single-type EDTD iff it is closed under
ancestor-guarded subtree exchange (Theorem 2.11).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.strings.nfa import NFA
from repro.trees.arena import ArenaTree
from repro.trees.tree import Path, Tree


def exchange(t1: Tree, v1: Path, t2: Tree, v2: Path) -> Tree:
    """Return ``t1[v1 <- subtree^t2(v2)]`` under the ancestor guard.

    Raises :class:`ValueError` when ``anc-str^t1(v1) != anc-str^t2(v2)``
    (the exchange is only defined under equal ancestor strings).
    """
    if t1.anc_str(v1) != t2.anc_str(v2):
        raise ValueError("ancestor strings differ; exchange is not permitted")
    return t1.replace_at(v1, t2.subtree(v2))


def try_exchange(t1: Tree, v1: Path, t2: Tree, v2: Path) -> Tree | None:
    """Like :func:`exchange` but returns None when the guard fails."""
    if t1.anc_str(v1) != t2.anc_str(v2):
        return None
    return t1.replace_at(v1, t2.subtree(v2))


def all_exchanges(t1: Tree, t2: Tree) -> Iterator[Tree]:
    """Yield every tree obtainable by one ancestor-guarded exchange from the
    (ordered) pair ``(t1, t2)``.

    Node pairs are matched by ancestor string; both directions follow by
    also calling ``all_exchanges(t2, t1)``.  Ancestor strings come from
    one :class:`~repro.trees.arena.ArenaTree` pass per tree (prefix
    tuples shared along each spine) instead of a per-node root-to-node
    walk, so the matching is linear in tree size rather than
    size-times-depth.
    """
    arena2 = ArenaTree.from_tree(t2)
    paths2 = arena2.paths()
    by_ancestor: dict[tuple, list[Path]] = {}
    for index, anc in enumerate(arena2.anc_strings()):
        by_ancestor.setdefault(anc, []).append(paths2[index])
    arena1 = ArenaTree.from_tree(t1)
    paths1 = arena1.paths()
    for index, anc in enumerate(arena1.anc_strings()):
        for v2 in by_ancestor.get(anc, ()):
            yield t1.replace_at(paths1[index], t2.subtree(v2))


def anc_type(tree: Tree, path: Path, automaton: NFA) -> frozenset:
    """``anc-type^t_N(v)``: the state set of *automaton* after reading the
    ancestor string of *path* (Section 4.1)."""
    return automaton.read(tree.anc_str(path))


def type_guarded_exchange(
    t1: Tree,
    v1: Path,
    t2: Tree,
    v2: Path,
    automaton: NFA,
) -> Tree | None:
    """Exchange guarded by equal non-empty ancestor *types* w.r.t. an NFA
    (Definition 4.1); returns None when the guard fails.

    Note the guard implies ``lab^t1(v1) == lab^t2(v2)`` only for
    state-labeled automata; we additionally require equal labels so the
    operation is well-behaved on arbitrary NFAs.
    """
    type1 = anc_type(t1, v1, automaton)
    type2 = anc_type(t2, v2, automaton)
    if not type1 or type1 != type2:
        return None
    if t1.label_at(v1) != t2.label_at(v2):
        return None
    return t1.replace_at(v1, t2.subtree(v2))


def arena_anc_types(arena: ArenaTree, automaton: NFA) -> list[frozenset]:
    """``anc-type`` of every arena node in one top-down pass.

    Each node's state set is one :meth:`NFA.step` from its parent's
    (memoized per ``(parent states, label)`` pair), instead of re-reading
    the whole ancestor string per node — linear in tree size, not
    size-times-depth.
    """
    step = automaton.step
    labels = arena.labels
    codes = arena.codes
    parent = arena.parent
    out: list[frozenset] = [frozenset()] * len(arena)
    memo: dict[tuple[frozenset, int], frozenset] = {}
    for index in range(len(arena)):
        source = automaton.initials if index == 0 else out[parent[index]]
        key = (source, codes[index])
        states = memo.get(key)
        if states is None:
            states = step(source, labels[index])
            memo[key] = states
        out[index] = states
    return out


def all_type_guarded_exchanges(
    t1: Tree,
    t2: Tree,
    automaton: NFA,
    restrict_labels: frozenset | None = None,
) -> Iterator[Tree]:
    """Yield every tree obtainable by one ancestor-type-guarded exchange
    from the ordered pair ``(t1, t2)`` w.r.t. *automaton*.

    If *restrict_labels* is given, only nodes with those labels are
    exchanged (the ``type-closure^{N, Sigma'}`` refinement of Section
    4.4.2 used for binary encodings).  Ancestor types come from
    :func:`arena_anc_types` — one incremental NFA step per node instead
    of a full ancestor-string read per node.
    """
    arena2 = ArenaTree.from_tree(t2)
    paths2 = arena2.paths()
    types2 = arena_anc_types(arena2, automaton)
    by_type: dict[tuple, list[Path]] = {}
    for index, label in enumerate(arena2.labels):
        if restrict_labels is not None and label not in restrict_labels:
            continue
        if types2[index]:
            by_type.setdefault((types2[index], label), []).append(paths2[index])
    arena1 = ArenaTree.from_tree(t1)
    paths1 = arena1.paths()
    types1 = arena_anc_types(arena1, automaton)
    for index, label in enumerate(arena1.labels):
        if restrict_labels is not None and label not in restrict_labels:
            continue
        if not types1[index]:
            continue
        for v2 in by_type.get((types1[index], label), ()):
            yield t1.replace_at(paths1[index], t2.subtree(v2))
