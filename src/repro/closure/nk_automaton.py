"""The ancestor-string-separating DFA ``N_k`` (Section 4.4.2).

``N_k`` is the smallest state-labeled DFA that reaches pairwise distinct
states on all distinct strings of length at most ``k`` — a complete
``|Sigma|``-ary tree of depth ``k`` with ``O(|Sigma|^(k+1))`` states.  For
languages depth-bounded by ``k``, closure under ancestor-guarded subtree
exchange coincides with closure under ``N_k``-type-guarded exchange (the
bridge the paper uses to reduce maximality testing to tree automata).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.strings.nfa import NFA

Symbol = Hashable


def nk_automaton(alphabet: Iterable[Symbol], k: int) -> NFA:
    """Build ``N_k`` over *alphabet* (returned as a deterministic,
    state-labeled :class:`NFA`, matching the guarded-exchange API).

    States are the strings of length <= k (as tuples); strings longer than
    ``k`` all collapse into a per-symbol sink ``("deep", a)`` so the
    automaton is total on arbitrarily long ancestor strings while staying
    state-labeled.
    """
    alphabet = sorted(set(alphabet), key=repr)
    states: set = {()}
    transitions: dict = {}
    frontier: list[tuple] = [()]
    for _ in range(k):
        next_frontier: list[tuple] = []
        for state in frontier:
            for symbol in alphabet:
                successor = state + (symbol,)
                states.add(successor)
                transitions[(state, symbol)] = {successor}
                next_frontier.append(successor)
        frontier = next_frontier
    # Depth-k strings and the deep sinks step into per-symbol sinks.
    sinks = {("deep", symbol) for symbol in alphabet}
    states |= sinks
    for state in frontier:
        for symbol in alphabet:
            transitions[(state, symbol)] = {("deep", symbol)}
    for sink in sinks:
        for symbol in alphabet:
            transitions[(sink, symbol)] = {("deep", symbol)}
    return NFA(states, alphabet, transitions, {()}, frozenset())


def separates_up_to(automaton: NFA, alphabet: Iterable[Symbol], k: int) -> bool:
    """Check the defining property: distinct strings of length <= k reach
    distinct state sets (used by tests)."""
    alphabet = sorted(set(alphabet), key=repr)
    seen: dict = {}
    all_words: list[tuple] = [()]
    frontier = [()]
    for _ in range(k):
        frontier = [w + (s,) for w in frontier for s in alphabet]
        all_words.extend(frontier)
    for word in all_words:
        result = automaton.read(word)
        if result in seen.values():
            return False
        seen[word] = result
    return True
