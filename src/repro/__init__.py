"""repro — single-type (XSD) approximations of regular tree languages.

Reproduction of Gelade, Idziaszek, Martens, Neven, Paredaens:
*Simplifying XML Schema: Single-Type Approximations of Regular Tree
Languages* (PODS 2010).

Quickstart::

    from repro import SingleTypeEDTD, upper_union, parse_tree

    orders = SingleTypeEDTD(
        alphabet={"order", "item"},
        types={"o", "i"},
        rules={"o": "i+", "i": "~"},
        starts={"o"},
        mu={"o": "order", "i": "item"},
    )
    invoices = SingleTypeEDTD(
        alphabet={"order", "item", "paid"},
        types={"o", "i", "p"},
        rules={"o": "i+, p"},
        starts={"o"},
        mu={"o": "order", "i": "item", "p": "paid"},
    )
    merged = upper_union(orders, invoices)   # unique minimal upper approx
    merged.accepts(parse_tree("order(item, item)"))

Subpackages
-----------
``repro.strings``
    Regular string languages: NFAs, DFAs, the paper's regex grammar,
    Glushkov automata, determinization, minimization.
``repro.trees``
    Unranked trees, contexts, forks, binary encodings, enumeration /
    counting / sampling of EDTD languages.
``repro.schemas``
    DTDs, EDTDs, single-type EDTDs, DFA-based XSDs, type automata,
    PTIME inclusion (Lemma 3.3), stEDTD minimization.
``repro.tree_automata``
    Unranked and binary tree automata; exact EXPTIME EDTD inclusion.
``repro.closure``
    Ancestor-(type-)guarded subtree exchange, closures, derivation trees.
``repro.core``
    The contribution: minimal upper and maximal lower XSD-approximations
    and the associated decision procedures.
``repro.families``
    The paper's lower-bound families and random schema generators.
``repro.api``
    The stable high-level facade: :func:`compile_schema` produces a
    frozen :class:`CompiledSchema` handle that pays for reduction,
    fingerprints, and hot validation tables once; its methods — and the
    source-compatible free functions :func:`approximate_upper`,
    :func:`approximate_lower`, :func:`definability`,
    :func:`schema_includes`, :func:`schema_equivalent`, :func:`validate`
    — each return a frozen result object carrying the answer plus the
    :class:`~repro.observability.Trace` and budget usage of the call.
    Facade-wide defaults live in the frozen :class:`Settings`
    (:func:`configured` / :func:`configure`).
``repro.service``
    Long-lived asyncio validation/approximation service: a bounded
    LRU :class:`~repro.service.SchemaRegistry` of compiled handles and
    a newline-delimited-JSON TCP server with per-request budgets; see
    ``docs/SERVICE.md``.
``repro.observability``
    Zero-dependency structured tracing (span trees) and metrics for every
    governed construction; see ``docs/OBSERVABILITY.md``.
``repro.cache``
    Crash-safe persistent artifact cache for compiled DFAs and
    approximation schemas; see ``docs/CACHING.md``.
``repro.faults``
    Deterministic fault injection for the chaos test harness; see
    ``docs/ROBUSTNESS.md``.
"""

from repro.api import (
    ApproximationResult,
    BudgetUsage,
    CompiledSchema,
    DefinabilityReport,
    InclusionResult,
    Settings,
    ValidationResult,
    approximate_lower,
    approximate_upper,
    compile_schema,
    configure,
    configured,
    definability,
    schema_equivalent,
    schema_includes,
    validate,
)
from repro.core import (
    Definability,
    DefinabilityResult,
    difference_witness,
    greedy_maximal_lower,
    inclusion_counterexample,
    is_lower_approximation,
    is_maximal_lower_approximation,
    is_minimal_upper_approximation,
    is_single_type_definable,
    is_upper_approximation,
    lower_quality,
    maximal_lower_union,
    minimal_upper_approximation,
    non_violating,
    single_type_definability,
    upper_complement,
    upper_difference,
    upper_intersection,
    upper_quality,
    upper_union,
)
from repro.errors import (
    AutomatonError,
    BudgetExceededError,
    NotSingleTypeError,
    RegexSyntaxError,
    ReproError,
    SchemaError,
    TreeSyntaxError,
    ValidationError,
)
from repro.runtime import (
    Budget,
    BudgetProgress,
    CancellationToken,
    current_budget,
)
from repro.schemas import (
    DTD,
    StreamingValidator,
    EDTD,
    DFAXSD,
    SingleTypeEDTD,
    complement_edtd,
    difference_edtd,
    edtd_intersection,
    edtd_union,
    included_in_single_type,
    is_single_type,
    minimize_single_type,
    single_type_equivalent,
    type_automaton,
)
from repro.cache import ArtifactCache
from repro.errors import CacheError, InjectedFaultError
from repro.observability import METRICS, Span, Trace
from repro.trees import Tree, parse_tree, unary_tree

__version__ = "1.0.0"

__all__ = [
    "ApproximationResult",
    "ArtifactCache",
    "AutomatonError",
    "Budget",
    "BudgetUsage",
    "BudgetExceededError",
    "BudgetProgress",
    "CacheError",
    "CancellationToken",
    "CompiledSchema",
    "DFAXSD",
    "DTD",
    "Definability",
    "DefinabilityReport",
    "DefinabilityResult",
    "EDTD",
    "InclusionResult",
    "InjectedFaultError",
    "Settings",
    "METRICS",
    "Span",
    "Trace",
    "ValidationResult",
    "approximate_lower",
    "approximate_upper",
    "compile_schema",
    "configure",
    "configured",
    "current_budget",
    "definability",
    "schema_equivalent",
    "schema_includes",
    "single_type_definability",
    "validate",
    "NotSingleTypeError",
    "RegexSyntaxError",
    "ReproError",
    "SchemaError",
    "SingleTypeEDTD",
    "Tree",
    "TreeSyntaxError",
    "ValidationError",
    "complement_edtd",
    "difference_edtd",
    "edtd_intersection",
    "edtd_union",
    "included_in_single_type",
    "is_lower_approximation",
    "is_maximal_lower_approximation",
    "is_minimal_upper_approximation",
    "is_single_type",
    "is_single_type_definable",
    "is_upper_approximation",
    "lower_quality",
    "maximal_lower_union",
    "minimal_upper_approximation",
    "minimize_single_type",
    "non_violating",
    "parse_tree",
    "single_type_equivalent",
    "type_automaton",
    "unary_tree",
    "upper_complement",
    "upper_difference",
    "upper_intersection",
    "upper_quality",
    "upper_union",
    "difference_witness",
    "greedy_maximal_lower",
    "inclusion_counterexample",
    "StreamingValidator",
    "__version__",
]
