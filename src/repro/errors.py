"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """Raised when an automaton is malformed or an operation is invalid."""


class RegexSyntaxError(ReproError):
    """Raised when a regular-expression string cannot be parsed."""


class TreeSyntaxError(ReproError):
    """Raised when a tree term string cannot be parsed."""


class SchemaError(ReproError):
    """Raised when a schema (DTD/EDTD/stEDTD/DFA-based XSD) is malformed."""


class NotSingleTypeError(SchemaError):
    """Raised when a single-type EDTD is required but the input violates EDC."""


class ValidationError(ReproError):
    """Raised when a tree does not conform to a schema (strict validation)."""
