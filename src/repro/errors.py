"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.runtime.budget import BudgetProgress


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AutomatonError(ReproError):
    """Raised when an automaton is malformed or an operation is invalid."""


class RegexSyntaxError(ReproError):
    """Raised when a regular-expression string cannot be parsed."""


class TreeSyntaxError(ReproError):
    """Raised when a tree term string or XML fragment cannot be parsed.

    ``line`` and ``column`` (1-based) locate the offending input position
    when the parser knows it; both are ``None`` otherwise.
    """

    def __init__(
        self,
        message: str,
        *,
        line: "int | None" = None,
        column: "int | None" = None,
    ) -> None:
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            message = f"{message} ({location})"
        super().__init__(message)
        self.line = line
        self.column = column


class SchemaError(ReproError):
    """Raised when a schema (DTD/EDTD/stEDTD/DFA-based XSD) is malformed."""


class NotSingleTypeError(SchemaError):
    """Raised when a single-type EDTD is required but the input violates EDC."""


class ValidationError(ReproError):
    """Raised when a tree does not conform to a schema (strict validation)."""


class CacheError(ReproError):
    """Raised when the persistent artifact cache is *misconfigured* —
    an unusable directory, an unwritable store root.

    Deliberately narrow: I/O failures and corrupted entries during normal
    operation never raise — the store degrades to a miss (quarantining
    corrupt entries) and the construction recomputes.  Only configuration
    that can never work surfaces as an error.
    """


class ServiceError(ReproError):
    """Raised by :mod:`repro.service` for service-level failures: unknown
    schema handles, registry capacity exhausted by pinned handles, or a
    server-side operational fault.

    Wire-protocol violations use the :class:`ProtocolError` subclass so
    the server can distinguish "your request was malformed" from "your
    well-formed request failed".
    """


class ProtocolError(ServiceError):
    """Raised when a service request violates the newline-delimited JSON
    wire protocol: not JSON, not an object, missing/unknown ``op``,
    wrong parameter types, or an oversized line."""


class InjectedFaultError(ReproError):
    """A fault deliberately raised by the :mod:`repro.faults` injection
    layer at a named injection point.

    Part of the taxonomy on purpose: the chaos invariant is that a faulted
    run either returns the fault-free answer or raises a *taxonomy* error,
    and injected failures at non-recoverable points (budget checks,
    checkpoint materialization) surface as this type with the injection
    ``point`` attached.
    """

    def __init__(self, point: str, detail: str = "") -> None:
        message = f"injected fault at {point!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.point = point


class BudgetExceededError(ReproError):
    """A governed construction ran out of budget (states, steps, time,
    memory, or was cancelled).

    Attributes
    ----------
    reason:
        One of ``"max-states"``, ``"max-steps"``, ``"deadline"``,
        ``"cancelled"``, ``"memory"``.
    limit:
        The limit that tripped (states/steps count, seconds, bytes), or
        ``None`` for cancellation.
    progress:
        A :class:`repro.runtime.BudgetProgress` snapshot — states
        explored, steps executed, frontier size, elapsed seconds, phase.
    checkpoint:
        When the interrupted construction supports resumption, an opaque
        checkpoint object to pass back in (e.g. to
        :func:`repro.strings.determinize.determinize` or
        :func:`repro.core.decision.single_type_definability`); ``None``
        otherwise.
    """

    def __init__(
        self,
        reason: str,
        limit: int | float | None = None,
        progress: BudgetProgress | None = None,
        checkpoint: Any | None = None,
    ) -> None:
        detail = f"budget exceeded ({reason})"
        if limit is not None:
            detail += f" at limit {limit}"
        if progress is not None:
            detail += f": {progress.describe()}"
        super().__init__(detail)
        self.reason = reason
        self.limit = limit
        self.progress = progress
        self.checkpoint = checkpoint
