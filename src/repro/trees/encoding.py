"""Binary encoding of unranked trees (Fig. 3 / Section 4.4.2).

The paper uses an encoding "similar to the well-known first-child
next-sibling encoding" whose crucial property is that **each subtree of the
binary tree rooted at a Sigma-label corresponds to a subtree of the unranked
tree** (plain FCNS does not have this property: an FCNS subtree drags the
original node's right siblings along).

We realize that property with an explicit list marker ``#``:

* ``enc(a)            = a``                                  (childless node)
* ``enc(a(t1,...,tn)) = a( chain(t1,...,tn), # )``           (n >= 1)
* ``chain(t1)         = enc(t1)``
* ``chain(t1,...,tn)  = #( enc(t1), chain(t2,...,tn) )``     (n >= 2)

Every encoded node has zero or two children (a *binary* tree in the paper's
sense), ``#`` never labels the root of an encoded subtree, and the encoding
is a bijection — :func:`decode` inverts :func:`encode` exactly.

Ancestor strings in the encoded tree interleave ``#`` symbols with the
original labels; per the paper (proof of Lemma 4.22), DFAs guarding
ancestor-types are lifted by adding ``#`` self-loops, which
:func:`lift_dfa_with_marker` provides.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.strings.dfa import DFA
from repro.trees.tree import Tree

#: The list-marker label.  ``#`` is not a valid identifier in the tree term
#: syntax, so it can never collide with user labels built via parsing.
MARKER = "#"


def encode(tree: Tree, marker: object = MARKER) -> Tree:
    """Encode an unranked tree as a binary tree (see module docstring)."""
    if tree.label == marker:
        raise ReproError(f"input tree already uses the marker label {marker!r}")
    if not tree.children:
        return Tree(tree.label)
    return Tree(tree.label, [_chain(tree.children, marker), Tree(marker)])


def _chain(children: tuple[Tree, ...], marker: object) -> Tree:
    if len(children) == 1:
        return encode(children[0], marker)
    return Tree(marker, [encode(children[0], marker), _chain(children[1:], marker)])


def decode(binary: Tree, marker: object = MARKER) -> Tree:
    """Invert :func:`encode`.  Raises :class:`ReproError` on malformed input."""
    if binary.label == marker:
        raise ReproError("an encoded tree cannot be rooted at the marker")
    if not binary.children:
        return Tree(binary.label)
    if len(binary.children) != 2:
        raise ReproError("encoded Sigma-nodes have exactly zero or two children")
    chain, end = binary.children
    if end.label != marker or end.children:
        raise ReproError("the right child of an encoded Sigma-node must be a marker leaf")
    return Tree(binary.label, _unchain(chain, marker))


def _unchain(chain: Tree, marker: object) -> list[Tree]:
    if chain.label != marker:
        return [decode(chain, marker)]
    if len(chain.children) != 2:
        raise ReproError("marker chain nodes must have exactly two children")
    head, tail = chain.children
    return [decode(head, marker)] + _unchain(tail, marker)


def is_binary(tree: Tree) -> bool:
    """True iff every node has zero or two children (paper, Section 4.4.2)."""
    return all(
        len(node.children) in (0, 2) for _, node in tree.nodes()
    )


def lift_dfa_with_marker(dfa: DFA, marker: object = MARKER) -> DFA:
    """Add ``marker`` self-loops to every state of *dfa*.

    If *dfa* reads ancestor strings of unranked trees, the lifted automaton
    reads ancestor strings of their encodings and reaches the same states on
    corresponding nodes (the marker symbols are ignored).  This is the
    lifting used in the proof of Lemma 4.22.
    """
    transitions = dict(dfa.transitions)
    for state in dfa.states:
        transitions[(state, marker)] = state
    return DFA(
        dfa.states,
        dfa.alphabet | {marker},
        transitions,
        dfa.initial,
        dfa.finals,
    )
