"""Enumeration, counting and sampling of the trees of an EDTD language.

These are the measurement instruments of the reproduction:

* :func:`enumerate_trees` — all member trees with at most ``max_size``
  nodes, used by tests to compare languages extensionally on a bounded
  universe;
* :func:`count_trees_by_size` — exact member counts per node count, the
  engine behind the approximation-quality metric ("how many extra documents
  does an upper approximation admit?", cf. the data-integration motivation
  in Section 1);
* :func:`sample_tree` — seeded random member trees for benchmarks;
* :func:`enumerate_all_trees` — all Sigma-trees up to a size bound (the
  bounded universe itself).
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Iterator

from repro.errors import SchemaError
from repro.schemas.edtd import EDTD
from repro.strings.dfa import DFA
from repro.trees.tree import Tree

Symbol = Hashable
Type = Hashable


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------

def enumerate_trees(edtd: EDTD, max_size: int) -> list[Tree]:
    """Return all trees of ``L(edtd)`` with at most *max_size* nodes.

    Exhaustive and exact; exponential in *max_size* in general, intended
    for the bounded-universe comparisons in tests and experiment harnesses.
    """
    edtd = edtd.reduced()
    if not edtd.types:
        return []
    # by_type[tau][s] = list of trees of size exactly s derivable with root
    # type tau.
    by_type: dict[Type, list[list[Tree]]] = {
        tau: [[] for _ in range(max_size + 1)] for tau in edtd.types
    }
    for size in range(1, max_size + 1):
        for tau in edtd.types:
            label = edtd.mu[tau]
            dfa = edtd.rules[tau]
            for children in _child_lists(dfa, dfa.initial, size - 1, by_type, {}):
                by_type[tau][size].append(Tree(label, children))
    result: list[Tree] = []
    seen: set[Tree] = set()
    for tau in sorted(edtd.starts, key=repr):
        for size in range(1, max_size + 1):
            for tree in by_type[tau][size]:
                if tree not in seen:
                    seen.add(tree)
                    result.append(tree)
    result.sort(key=lambda t: (t.size(), str(t)))
    return result


def _child_lists(
    dfa: DFA,
    state: object,
    budget: int,
    by_type: dict[Type, list[list[Tree]]],
    memo: dict[tuple[object, int], list[tuple[Tree, ...]]],
) -> list[tuple[Tree, ...]]:
    """All tuples of child trees with total size exactly *budget* whose type
    word drives *dfa* from *state* to a final state."""
    key = (state, budget)
    if key in memo:
        return memo[key]
    results: list[tuple[Tree, ...]] = []
    if budget == 0 and state in dfa.finals:
        results.append(())
    if budget > 0:
        for (src, tau), dst in sorted(dfa.transitions.items(), key=repr):
            if src != state:
                continue
            for first_size in range(1, budget + 1):
                for first in by_type[tau][first_size]:
                    for rest in _child_lists(dfa, dst, budget - first_size, by_type, memo):
                        results.append((first,) + rest)
    memo[key] = results
    return results


def enumerate_all_trees(alphabet: Iterable[Symbol], max_size: int) -> list[Tree]:
    """All Sigma-trees with at most *max_size* nodes (the bounded universe)."""
    alphabet = sorted(set(alphabet), key=repr)
    by_size: list[list[Tree]] = [[] for _ in range(max_size + 1)]
    forests: dict[int, list[tuple[Tree, ...]]] = {0: [()]}

    def forests_of(total: int) -> list[tuple[Tree, ...]]:
        if total in forests:
            return forests[total]
        result: list[tuple[Tree, ...]] = []
        for first_size in range(1, total + 1):
            for first in by_size[first_size]:
                for rest in forests_of(total - first_size):
                    result.append((first,) + rest)
        forests[total] = result
        return result

    for size in range(1, max_size + 1):
        # Recompute forests incrementally: clear cached totals that may grow.
        forests.clear()
        forests[0] = [()]
        for label in alphabet:
            for children in forests_of(size - 1):
                by_size[size].append(Tree(label, children))
    out: list[Tree] = []
    for size in range(1, max_size + 1):
        out.extend(by_size[size])
    return out


# ----------------------------------------------------------------------
# Counting
# ----------------------------------------------------------------------

def count_trees_by_size(edtd: EDTD, max_size: int) -> list[int]:
    """Return ``[c_0, c_1, ..., c_max]``: ``c_n`` = number of distinct trees
    of ``L(edtd)`` with exactly ``n`` nodes.

    Exact dynamic programming — no enumeration.  The count is of *trees*,
    not typings; the EDTD is determinized implicitly by counting over the
    powerset of types per (label, size) slice.  To keep this tractable we
    require the EDTD to be *unambiguous at the tree level*, which holds for
    all single-type EDTDs; for ambiguous EDTDs use
    :func:`count_trees_exact` (enumeration-based, slower).
    """
    from repro.schemas.type_automaton import is_single_type

    if not is_single_type(edtd):
        return count_trees_exact(edtd, max_size)
    edtd = edtd.reduced()
    counts_by_type: dict[Type, list[int]] = {
        tau: [0] * (max_size + 1) for tau in edtd.types
    }
    for size in range(1, max_size + 1):
        for tau in edtd.types:
            dfa = edtd.rules[tau]
            counts_by_type[tau][size] = _count_child_lists(
                dfa, dfa.initial, size - 1, counts_by_type, {}
            )
    totals = [0] * (max_size + 1)
    for size in range(1, max_size + 1):
        # Distinct start types of a single-type EDTD have distinct root
        # labels, so their tree sets are disjoint and the counts add up.
        totals[size] = sum(counts_by_type[tau][size] for tau in edtd.starts)
    return totals


def _count_child_lists(
    dfa: DFA,
    state: object,
    budget: int,
    counts_by_type: dict[Type, list[int]],
    memo: dict[tuple[object, int], int],
) -> int:
    key = (state, budget)
    if key in memo:
        return memo[key]
    total = 0
    if budget == 0 and state in dfa.finals:
        total += 1
    if budget > 0:
        for (src, tau), dst in dfa.transitions.items():
            if src != state:
                continue
            for first_size in range(1, budget + 1):
                first_count = counts_by_type[tau][first_size]
                if first_count:
                    total += first_count * _count_child_lists(
                        dfa, dst, budget - first_size, counts_by_type, memo
                    )
    memo[key] = total
    return total


def count_trees_exact(edtd: EDTD, max_size: int) -> list[int]:
    """Tree counts per size by explicit enumeration (correct for ambiguous
    EDTDs, exponential in *max_size*)."""
    totals = [0] * (max_size + 1)
    for tree in enumerate_trees(edtd, max_size):
        totals[tree.size()] += 1
    return totals


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------

def min_derivation_sizes(edtd: EDTD) -> dict[Type, int]:
    """Smallest tree size derivable per type (infinity for unproductive)."""
    sizes: dict[Type, float] = dict.fromkeys(edtd.types, float("inf"))
    changed = True
    while changed:  # ungoverned: size relaxation converges in <= |types| rounds
        changed = False
        for tau in edtd.types:
            dfa = edtd.rules[tau]
            best = _min_word_cost(dfa, sizes)
            if best + 1 < sizes[tau]:
                sizes[tau] = best + 1
                changed = True
    return {tau: int(s) if s != float("inf") else -1 for tau, s in sizes.items()}


def _min_word_cost(dfa: DFA, cost: dict[Type, float]) -> float:
    """Cheapest total cost of a word in ``L(dfa)`` with per-symbol costs."""
    best: dict[object, float] = {dfa.initial: 0.0}
    # Bellman-Ford style relaxation; |states| rounds suffice since costs > 0.
    for _ in range(len(dfa.states) + 1):
        updated = False
        for (src, sym), dst in dfa.transitions.items():
            if src in best and cost.get(sym, float("inf")) != float("inf"):
                candidate = best[src] + cost[sym]
                if candidate < best.get(dst, float("inf")):
                    best[dst] = candidate
                    updated = True
        if not updated:
            break
    return min(
        (value for state, value in best.items() if state in dfa.finals),
        default=float("inf"),
    )


def _completion_costs(dfa: DFA, cost: dict[Type, float]) -> dict[object, float]:
    """Per-state cheapest cost of a word completing to a final state."""
    best: dict[object, float] = dict.fromkeys(dfa.finals, 0.0)
    for _ in range(len(dfa.states) + 1):
        updated = False
        for (src, sym), dst in dfa.transitions.items():
            symbol_cost = cost.get(sym, float("inf"))
            if dst in best and symbol_cost != float("inf"):
                candidate = symbol_cost + best[dst]
                if candidate < best.get(src, float("inf")):
                    best[src] = candidate
                    updated = True
        if not updated:
            break
    return best


def sample_tree(
    edtd: EDTD,
    rng: random.Random,
    target_size: int = 20,
    _type: Type | None = None,
) -> Tree:
    """Sample a member tree of roughly *target_size* nodes.

    The sampler walks content models randomly but steers toward short
    completions once the size budget is spent (using per-type minimum
    derivation sizes), so it always terminates.  Raises
    :class:`SchemaError` on empty languages.
    """
    edtd = edtd.reduced()
    if not edtd.types:
        raise SchemaError("cannot sample from an empty language")
    minimums = min_derivation_sizes(edtd)
    if _type is None:
        start = rng.choice(sorted(edtd.starts, key=repr))
    else:
        start = _type
    return _sample_from_type(edtd, start, rng, target_size, minimums)


def _sample_from_type(
    edtd: EDTD,
    tau: Type,
    rng: random.Random,
    budget: int,
    minimums: dict[Type, int],
) -> Tree:
    dfa = edtd.rules[tau]
    costs = {sym: float(minimums[sym]) if minimums[sym] >= 0 else float("inf")
             for sym in dfa.alphabet}
    completion = _completion_costs(dfa, costs)
    word: list[Type] = []
    state = dfa.initial
    remaining = max(budget - 1, 0)
    while True:
        options = [
            (sym, dst)
            for (src, sym), dst in sorted(dfa.transitions.items(), key=repr)
            if src == state
            and minimums[sym] >= 0
            and completion.get(dst, float("inf")) != float("inf")
        ]
        can_stop = state in dfa.finals
        spent = sum(minimums[sym] for sym in word)
        over_budget = spent >= remaining
        if can_stop and (not options or over_budget or rng.random() < 0.1):
            break
        if not options:
            # Dead end without acceptance cannot happen on trimmed content
            # DFAs of a reduced EDTD, but guard anyway.
            break
        if over_budget:
            # Steer toward the cheapest acceptance: each such step strictly
            # decreases the completion cost, so the loop terminates.
            options.sort(
                key=lambda item: (costs[item[0]] + completion[item[1]], repr(item[0]))
            )
            sym, dst = options[0]
        else:
            sym, dst = rng.choice(options)
        word.append(sym)
        state = dst
    share = max((remaining // max(len(word), 1)), 1)
    children = [
        _sample_from_type(edtd, sym, rng, share, minimums) for sym in word
    ]
    return Tree(edtd.mu[tau], children)
