"""Unranked-tree substrate: trees, arenas, contexts, forks, binary encodings."""

from repro.trees.arena import ArenaTree
from repro.trees.context import Context, Fork, HoleLabel, context_of, fork_of
from repro.trees.encoding import MARKER, decode, encode, is_binary, lift_dfa_with_marker
from repro.trees.tree import Path, Tree, leaf, parse_tree, unary_tree

__all__ = [
    "ArenaTree",
    "Context",
    "Fork",
    "HoleLabel",
    "MARKER",
    "Path",
    "Tree",
    "context_of",
    "decode",
    "encode",
    "fork_of",
    "is_binary",
    "leaf",
    "lift_dfa_with_marker",
    "parse_tree",
    "unary_tree",
]
