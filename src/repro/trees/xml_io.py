"""Serialization between :class:`Tree` and a structural XML fragment syntax.

The paper abstracts XML documents as unranked trees over element names
(attributes, text and namespaces are out of scope — the EDC constraint only
concerns element structure).  This module converts between the two views so
examples and downstream users can work with familiar markup:

    >>> from repro.trees.xml_io import to_xml, from_xml
    >>> from repro.trees.tree import parse_tree
    >>> print(to_xml(parse_tree("store(item(price))")))
    <store>
      <item>
        <price/>
      </item>
    </store>
    >>> from_xml("<a><b/><b/></a>")
    Tree('a(b, b)')

Only well-formed element-only fragments are supported; text nodes,
attributes, comments and processing instructions are rejected with
:class:`TreeSyntaxError` rather than silently dropped.

Hostile input hardening (this parser is exposed to untrusted documents
via ``repro validate``):

* **DTD / entity declarations are rejected outright** — ``<!DOCTYPE``,
  ``<!ENTITY`` and every other markup declaration.  Entity expansion is
  the classic billion-laughs amplification vector; since the tree model
  has no text content there is no legitimate use for entities here.
* **Depth and node-count limits** — :func:`from_xml` enforces a
  configurable ``max_depth`` (default ``DEFAULT_MAX_DEPTH`` = 200) and
  ``max_nodes`` (default ``DEFAULT_MAX_NODES`` = 100000), so deeply
  nested or enormous documents fail fast with a precise message instead
  of exhausting the recursion limit or memory downstream.
* **Positions** — every :class:`TreeSyntaxError` carries 1-based
  ``line``/``column`` attributes locating the offending token.
"""

from __future__ import annotations

import re as _re

from repro import faults as _faults
from repro.errors import TreeSyntaxError
from repro.trees.tree import Tree

#: Default cap on element nesting depth for :func:`from_xml`.
DEFAULT_MAX_DEPTH = 200

#: Default cap on the total number of elements for :func:`from_xml`.
DEFAULT_MAX_NODES = 100_000

_NAME = r"[A-Za-z_][A-Za-z0-9_.\-]*"
_TOKEN = _re.compile(
    rf"\s*(?:"
    rf"<(?P<open>{_NAME})\s*>"
    rf"|<(?P<selfclose>{_NAME})\s*/\s*>"
    rf"|</(?P<close>{_NAME})\s*>"
    rf")"
)
_DECLARATION = _re.compile(r"\s*<!(?P<keyword>[A-Za-z\[]*)")
_PROCESSING = _re.compile(r"\s*<\?")


def to_xml(tree: Tree, indent: int = 2) -> str:
    """Render *tree* as an indented XML fragment (childless nodes become
    self-closing tags)."""
    lines: list[str] = []

    def render(node: Tree, depth: int) -> None:
        pad = " " * (indent * depth)
        if not node.children:
            lines.append(f"{pad}<{node.label}/>")
            return
        lines.append(f"{pad}<{node.label}>")
        for child in node.children:
            render(child, depth + 1)
        lines.append(f"{pad}</{node.label}>")

    render(tree, 0)
    return "\n".join(lines)


def _position(text: str, pos: int) -> tuple[int, int]:
    """1-based (line, column) of offset *pos* in *text*."""
    line = text.count("\n", 0, pos) + 1
    column = pos - text.rfind("\n", 0, pos)
    return line, column


def _syntax_error(message: str, text: str, pos: int) -> TreeSyntaxError:
    line, column = _position(text, pos)
    return TreeSyntaxError(message, line=line, column=column)


def from_xml(
    text: str,
    *,
    max_depth: int | None = DEFAULT_MAX_DEPTH,
    max_nodes: int | None = DEFAULT_MAX_NODES,
) -> Tree:
    """Parse an element-only XML fragment into a :class:`Tree`.

    Raises :class:`TreeSyntaxError` — carrying 1-based ``line``/``column``
    attributes — on mismatched tags, trailing content, DTD/entity
    declarations (billion-laughs hardening), or anything that is not a
    start/end/self-closing element tag.

    *max_depth* bounds element nesting and *max_nodes* the total element
    count; pass ``None`` to disable either limit (trusted input only).
    """
    if _faults.ACTIVE:
        # Chaos harness: simulate a failing/truncating reader.  A damaged
        # document must surface as TreeSyntaxError below, never as a
        # silently different tree — tests/faults/ sweeps this.
        text = _faults.transform("xml.ingest", text)
    pos = 0
    stack: list[tuple[str, list[Tree]]] = []
    root: Tree | None = None
    node_count = 0
    while pos < len(text):
        if text[pos:].strip() == "":
            break
        match = _TOKEN.match(text, pos)
        if match is None:
            skipped = len(text) - len(text[pos:].lstrip())
            declaration = _DECLARATION.match(text, pos)
            if declaration is not None:
                if text.startswith("<!--", skipped):
                    raise _syntax_error(
                        "comments are not supported (element-only fragments)",
                        text,
                        skipped,
                    )
                keyword = declaration.group("keyword").rstrip("[").upper()
                what = f"<!{keyword}" if keyword else "markup declaration"
                raise _syntax_error(
                    f"{what} is not allowed: DTD and entity declarations are "
                    "rejected (entity-expansion hardening)",
                    text,
                    skipped,
                )
            if _PROCESSING.match(text, pos) is not None:
                raise _syntax_error(
                    "processing instructions and XML declarations are not "
                    "supported (element-only fragments)",
                    text,
                    skipped,
                )
            snippet = text[pos:pos + 20].strip()
            raise _syntax_error(
                f"unsupported XML content near: {snippet!r}", text, skipped
            )
        token_start = match.start() + len(match.group(0)) - len(match.group(0).lstrip())
        pos = match.end()
        if root is not None:
            raise _syntax_error("content after the root element", text, token_start)
        if match.group("open"):
            if max_depth is not None and len(stack) >= max_depth:
                raise _syntax_error(
                    f"maximum element depth exceeded ({max_depth})",
                    text,
                    token_start,
                )
            node_count += 1
            if max_nodes is not None and node_count > max_nodes:
                raise _syntax_error(
                    f"maximum node count exceeded ({max_nodes})", text, token_start
                )
            stack.append((match.group("open"), []))
        elif match.group("selfclose"):
            if max_depth is not None and len(stack) >= max_depth:
                raise _syntax_error(
                    f"maximum element depth exceeded ({max_depth})",
                    text,
                    token_start,
                )
            node_count += 1
            if max_nodes is not None and node_count > max_nodes:
                raise _syntax_error(
                    f"maximum node count exceeded ({max_nodes})", text, token_start
                )
            node = Tree(match.group("selfclose"))
            if stack:
                stack[-1][1].append(node)
            else:
                root = node
        else:
            name = match.group("close")
            if not stack:
                raise _syntax_error(
                    f"unexpected closing tag </{name}>", text, token_start
                )
            open_name, children = stack.pop()
            if open_name != name:
                raise _syntax_error(
                    f"mismatched tags: <{open_name}> closed by </{name}>",
                    text,
                    token_start,
                )
            node = Tree(open_name, children)
            if stack:
                stack[-1][1].append(node)
            else:
                root = node
    if stack:
        raise _syntax_error(f"unclosed element <{stack[-1][0]}>", text, len(text))
    if root is None:
        raise TreeSyntaxError("no root element found", line=1, column=1)
    return root
