"""Serialization between :class:`Tree` and a structural XML fragment syntax.

The paper abstracts XML documents as unranked trees over element names
(attributes, text and namespaces are out of scope — the EDC constraint only
concerns element structure).  This module converts between the two views so
examples and downstream users can work with familiar markup:

    >>> from repro.trees.xml_io import to_xml, from_xml
    >>> from repro.trees.tree import parse_tree
    >>> print(to_xml(parse_tree("store(item(price))")))
    <store>
      <item>
        <price/>
      </item>
    </store>
    >>> from_xml("<a><b/><b/></a>")
    Tree('a(b, b)')

Only well-formed element-only fragments are supported; text nodes,
attributes, comments and processing instructions are rejected with
:class:`TreeSyntaxError` rather than silently dropped.
"""

from __future__ import annotations

import re as _re

from repro.errors import TreeSyntaxError
from repro.trees.tree import Tree

_NAME = r"[A-Za-z_][A-Za-z0-9_.\-]*"
_TOKEN = _re.compile(
    rf"\s*(?:"
    rf"<(?P<open>{_NAME})\s*>"
    rf"|<(?P<selfclose>{_NAME})\s*/\s*>"
    rf"|</(?P<close>{_NAME})\s*>"
    rf")"
)


def to_xml(tree: Tree, indent: int = 2) -> str:
    """Render *tree* as an indented XML fragment (childless nodes become
    self-closing tags)."""
    lines: list[str] = []

    def render(node: Tree, depth: int) -> None:
        pad = " " * (indent * depth)
        if not node.children:
            lines.append(f"{pad}<{node.label}/>")
            return
        lines.append(f"{pad}<{node.label}>")
        for child in node.children:
            render(child, depth + 1)
        lines.append(f"{pad}</{node.label}>")

    render(tree, 0)
    return "\n".join(lines)


def from_xml(text: str) -> Tree:
    """Parse an element-only XML fragment into a :class:`Tree`.

    Raises :class:`TreeSyntaxError` on mismatched tags, trailing content,
    or anything that is not a start/end/self-closing element tag.
    """
    pos = 0
    stack: list[tuple[str, list[Tree]]] = []
    root: Tree | None = None
    while pos < len(text):
        if text[pos:].strip() == "":
            break
        match = _TOKEN.match(text, pos)
        if match is None:
            snippet = text[pos:pos + 20].strip()
            raise TreeSyntaxError(f"unsupported XML content near: {snippet!r}")
        pos = match.end()
        if root is not None:
            raise TreeSyntaxError("content after the root element")
        if match.group("open"):
            stack.append((match.group("open"), []))
        elif match.group("selfclose"):
            node = Tree(match.group("selfclose"))
            if stack:
                stack[-1][1].append(node)
            else:
                root = node
        else:
            name = match.group("close")
            if not stack:
                raise TreeSyntaxError(f"unexpected closing tag </{name}>")
            open_name, children = stack.pop()
            if open_name != name:
                raise TreeSyntaxError(
                    f"mismatched tags: <{open_name}> closed by </{name}>"
                )
            node = Tree(open_name, children)
            if stack:
                stack[-1][1].append(node)
            else:
                root = node
    if stack:
        raise TreeSyntaxError(f"unclosed element <{stack[-1][0]}>")
    if root is None:
        raise TreeSyntaxError("no root element found")
    return root
