"""Unranked Sigma-trees (Section 2.1 of the paper).

A :class:`Tree` is an immutable labeled node with an ordered tuple of
children.  Nodes of a tree are addressed by *paths*: tuples of 0-based child
indices, with the empty tuple denoting the root (the paper uses 1-based
strings ``i1 i2 ...``; the translation is off-by-one per component).

The module implements all tree notions the paper uses:

* ``Dom(t)`` — :meth:`Tree.dom`
* ``lab^t(v)`` — :meth:`Tree.label_at`
* ``ch-str^t(v)`` — :meth:`Tree.ch_str`
* ``anc-str^t(v)`` — :meth:`Tree.anc_str` (includes the label of ``v``)
* depth (a root-only tree has depth 1) — :meth:`Tree.depth`
* ``t1[v <- t2]`` — :meth:`Tree.replace_at`
* ``subtree^t(v)`` — :meth:`Tree.subtree`

plus a compact term syntax: ``parse_tree("a(b, c(d))")``.
"""

from __future__ import annotations

import re as _re
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.errors import TreeSyntaxError

Path = tuple[int, ...]


class Tree:
    """An immutable unranked ordered tree with hashable node labels."""

    __slots__ = ("label", "children", "_hash")

    def __init__(self, label: object, children: Iterable["Tree"] = ()) -> None:
        self.label = label
        self.children: tuple[Tree, ...] = tuple(children)
        for child in self.children:
            if not isinstance(child, Tree):
                raise TypeError(f"children must be Tree instances, got {child!r}")
        self._hash = hash((label, self.children))

    # ------------------------------------------------------------------
    # Equality / hashing / printing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.label == other.label
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Tree({str(self)!r})"

    def __str__(self) -> str:
        if not self.children:
            return str(self.label)
        inner = ", ".join(str(child) for child in self.children)
        return f"{self.label}({inner})"

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def dom(self) -> Iterator[Path]:
        """Yield all node paths in depth-first pre-order (root first)."""
        stack: list[tuple[Path, Tree]] = [((), self)]
        while stack:
            path, node = stack.pop()
            yield path
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((path + (index,), node.children[index]))

    def dom_bfs(self) -> Iterator[Path]:
        """Yield all node paths in breadth-first order (as in Theorem 3.2)."""
        frontier: list[tuple[Path, Tree]] = [((), self)]
        while frontier:
            nxt: list[tuple[Path, Tree]] = []
            for path, node in frontier:
                yield path
                for index, child in enumerate(node.children):
                    nxt.append((path + (index,), child))
            frontier = nxt

    def subtree(self, path: Path) -> "Tree":
        """Return ``subtree^t(path)``."""
        node = self
        for index in path:
            node = node.children[index]
        return node

    def label_at(self, path: Path) -> object:
        """Return ``lab^t(path)``."""
        return self.subtree(path).label

    def ch_str(self, path: Path = ()) -> tuple[object, ...]:
        """Return the child string of the node at *path* (tuple of labels)."""
        return tuple(child.label for child in self.subtree(path).children)

    def anc_str(self, path: Path) -> tuple[object, ...]:
        """Return the ancestor string of *path*, root label through ``lab(path)``."""
        labels: list[object] = [self.label]
        node = self
        for index in path:
            node = node.children[index]
            labels.append(node.label)
        return tuple(labels)

    def replace_at(self, path: Path, replacement: "Tree") -> "Tree":
        """Return ``t[path <- replacement]`` (the paper's subtree
        substitution).  Iterative, safe for arbitrarily deep paths."""
        if not path:
            return replacement
        spine: list[Tree] = [self]
        for index in path[:-1]:
            spine.append(spine[-1].children[index])
        result = replacement
        for node, index in zip(reversed(spine), reversed(path)):
            children = list(node.children)
            children[index] = result
            result = Tree(node.label, children)
        return result

    def depth(self) -> int:
        """Paper's depth: a single-node tree has depth 1.

        Iterative, so arbitrarily deep documents are safe.
        """
        best = 1
        stack: list[tuple[Tree, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            if level > best:
                best = level
            for child in node.children:
                stack.append((child, level + 1))
        return best

    def size(self) -> int:
        """Number of nodes (iterative)."""
        count = 0
        stack: list[Tree] = [self]
        while stack:  # ungoverned: one visit per tree node
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def labels(self) -> frozenset[object]:
        """The set of labels occurring in the tree (iterative)."""
        out: set[object] = set()
        stack: list[Tree] = [self]
        while stack:  # ungoverned: one visit per tree node
            node = stack.pop()
            out.add(node.label)
            stack.extend(node.children)
        return frozenset(out)

    def is_unary(self) -> bool:
        """True iff every node has at most one child (the paper's unary trees)."""
        node = self
        while node.children:
            if len(node.children) > 1:
                return False
            node = node.children[0]
        return True

    def nodes(self) -> Iterator[tuple[Path, "Tree"]]:
        """Yield ``(path, subtree)`` pairs in pre-order."""
        stack: list[tuple[Path, Tree]] = [((), self)]
        while stack:  # ungoverned: one visit per tree node
            path, node = stack.pop()
            yield path, node
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((path + (index,), node.children[index]))

    def map_labels(self, func: Callable[[object], object]) -> "Tree":
        """Return the tree with every label replaced by ``func(label)``.

        This is the homomorphic relabeling ``mu(t')`` of EDTD semantics
        (Definition 2.2).  Iterative post-order rebuild.
        """
        rebuilt: dict[Path, Tree] = {}
        # Post-order: children are rebuilt before their parent.
        order = list(self.nodes())
        for path, node in reversed(order):
            children = [
                rebuilt[path + (index,)] for index in range(len(node.children))
            ]
            rebuilt[path] = Tree(func(node.label), children)
        return rebuilt[()]

    def to_word(self) -> tuple[object, ...]:
        """View a unary tree as a word (root label first; cf. Theorem 3.2)."""
        labels: list[object] = [self.label]
        node = self
        while node.children:
            if len(node.children) != 1:
                raise ValueError("to_word requires a unary tree")
            node = node.children[0]
            labels.append(node.label)
        return tuple(labels)


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------

def leaf(label: object) -> Tree:
    """A single-node tree."""
    return Tree(label)


def unary_tree(labels: Sequence) -> Tree:
    """Build the unary (non-branching) tree for a non-empty label word.

    ``unary_tree("aab")`` is the tree ``a(a(b))`` — the paper's view of
    strings as unary trees (Theorem 3.2).
    """
    labels = list(labels)
    if not labels:
        raise ValueError("unary_tree requires at least one label")
    node = Tree(labels[-1])
    for label in reversed(labels[:-1]):
        node = Tree(label, [node])
    return node


_TOKEN = _re.compile(r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_]*)|(?P<op>[(),]))")


def parse_tree(text: str) -> Tree:
    """Parse the term syntax ``a(b, c(d))`` into a :class:`Tree`.

    Labels are identifiers; children are comma-separated inside parentheses.
    """
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise TreeSyntaxError(f"unexpected character: {remainder[0]!r}")
        tokens.append(match.group("ident") or match.group("op"))
        pos = match.end()

    index = 0

    def parse_node() -> Tree:
        nonlocal index
        if index >= len(tokens):
            raise TreeSyntaxError("unexpected end of input")
        label = tokens[index]
        if label in "(),":
            raise TreeSyntaxError(f"expected a label, got {label!r}")
        index += 1
        children: list[Tree] = []
        if index < len(tokens) and tokens[index] == "(":
            index += 1
            while True:
                children.append(parse_node())
                if index >= len(tokens):
                    raise TreeSyntaxError("missing closing parenthesis")
                if tokens[index] == ",":
                    index += 1
                    continue
                if tokens[index] == ")":
                    index += 1
                    break
                raise TreeSyntaxError(f"unexpected token {tokens[index]!r}")
        return Tree(label, children)

    tree = parse_node()
    if index != len(tokens):
        raise TreeSyntaxError(f"trailing input: {tokens[index]!r}")
    return tree
