"""Arena (struct-of-arrays) tree representation for the hot walks.

A :class:`~repro.trees.tree.Tree` is a linked structure of per-node
objects; every bottom-up pass over it pays an attribute load, a tuple
walk, and usually a ``dict[Path, ...]`` of freshly-allocated path tuples
per node.  An :class:`ArenaTree` flattens the same tree **once** into
parallel integer arrays in BFS order:

* ``labels[i]`` / ``codes[i]`` — the node's label and its small-int code
  (``label_table[codes[i]] is labels[i]``);
* ``parent[i]`` — the parent's index (``-1`` for the root);
* ``first_child[i]`` / ``n_children[i]`` — the node's children occupy
  the contiguous index range ``first_child[i] .. first_child[i] +
  n_children[i] - 1``.

BFS order gives two properties the kernels rely on:

* every parent index is smaller than its children's indices, so
  ``range(len(arena) - 1, -1, -1)`` (:meth:`bottom_up`) is a valid
  bottom-up evaluation order without recursion or an explicit stack —
  arbitrarily deep documents are safe;
* the children of a node are contiguous, so content-model runs
  (:meth:`repro.schemas.edtd.EDTD.possible_types`) scan a slice instead
  of chasing pointers.

The arena is read-only after construction and is used by the
tree-automata kernels (:mod:`repro.tree_automata.kernels`), EDTD
validation, and the closure walks of :mod:`repro.closure.exchange`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.trees.tree import Path, Tree

__all__ = ["ArenaTree"]


class ArenaTree:
    """Flat, integer-indexed view of a :class:`Tree` (see module docs)."""

    __slots__ = (
        "labels",
        "codes",
        "label_table",
        "label_code",
        "parent",
        "first_child",
        "n_children",
    )

    def __init__(self) -> None:
        self.labels: list[object] = []
        self.codes: list[int] = []
        self.label_table: list[object] = []
        self.label_code: dict[object, int] = {}
        self.parent: list[int] = []
        self.first_child: list[int] = []
        self.n_children: list[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tree(cls, tree: Tree) -> "ArenaTree":
        """Flatten *tree* into a fresh arena (single BFS pass, iterative)."""
        arena = cls()
        labels = arena.labels
        codes = arena.codes
        label_table = arena.label_table
        label_code = arena.label_code
        parent = arena.parent
        first_child = arena.first_child
        n_children = arena.n_children

        nodes: list[Tree] = [tree]
        parent.append(-1)
        cursor = 0
        while cursor < len(nodes):
            node = nodes[cursor]
            label = node.label
            code = label_code.get(label)
            if code is None:
                code = len(label_table)
                label_code[label] = code
                label_table.append(label)
            labels.append(label)
            codes.append(code)
            first_child.append(len(nodes))
            n_children.append(len(node.children))
            for child in node.children:
                parent.append(cursor)
                nodes.append(child)
            cursor += 1
        return arena

    def to_tree(self) -> Tree:
        """Rebuild the :class:`Tree` (bottom-up, iterative)."""
        size = len(self.labels)
        built: list[Tree | None] = [None] * size
        for index in range(size - 1, -1, -1):
            start = self.first_child[index]
            children = built[start : start + self.n_children[index]]
            built[index] = Tree(self.labels[index], [c for c in children if c is not None])
        root = built[0]
        assert root is not None
        return root

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.labels)

    def children(self, index: int) -> range:
        """Indices of the children of node *index* (contiguous)."""
        start = self.first_child[index]
        return range(start, start + self.n_children[index])

    def bottom_up(self) -> range:
        """A valid bottom-up (children before parents) evaluation order.

        BFS order guarantees ``parent[i] < i``, so reversed index order
        visits every node after all of its children.
        """
        return range(len(self.labels) - 1, -1, -1)

    def is_binary(self) -> bool:
        """True iff every node has zero or two children."""
        return all(count == 0 or count == 2 for count in self.n_children)

    def depth(self) -> int:
        """Paper's depth (a single-node tree has depth 1)."""
        size = len(self.labels)
        depths = [1] * size
        best = 1
        for index in range(1, size):
            level = depths[self.parent[index]] + 1
            depths[index] = level
            if level > best:
                best = level
        return best

    # ------------------------------------------------------------------
    # Paths and ancestor strings
    # ------------------------------------------------------------------

    def paths(self) -> list[Path]:
        """The path of every node, indexed like the arrays (BFS order).

        ``paths()[i]`` is the :class:`Tree` path of node ``i``; each path
        shares its parent's tuple prefix, so the whole list costs one
        tuple per node plus the shared spines.
        """
        size = len(self.labels)
        out: list[Path] = [()] * size
        first_child = self.first_child
        parent = self.parent
        for index in range(1, size):
            parent_index = parent[index]
            out[index] = out[parent_index] + (index - first_child[parent_index],)
        return out

    def anc_strings(self) -> list[tuple[object, ...]]:
        """``anc-str`` of every node in one pass (root label included)."""
        size = len(self.labels)
        out: list[tuple[object, ...]] = [()] * size
        out[0] = (self.labels[0],)
        for index in range(1, size):
            out[index] = out[self.parent[index]] + (self.labels[index],)
        return out

    def iter_nodes(self) -> Iterator[tuple[int, object]]:
        """Yield ``(index, label)`` pairs in BFS order."""
        return iter(enumerate(self.labels))

    def __repr__(self) -> str:
        return f"ArenaTree(nodes={len(self.labels)}, labels={len(self.label_table)})"
