"""Contexts and forks (Sections 2.1 and 4.4.2).

A *context* is a tree with a distinguished "hole" leaf carrying a label
``(a, HOLE)``: applying the context to a tree whose root is labeled ``a``
plugs the tree into the hole.  The hole label matters — the paper only
allows applying a context ``C`` to ``t'`` when the root of ``t'`` bears the
same Sigma-label as the distinguished leaf of ``C``.

A *fork* is the 3-node, 2-hole binary tree ``a((b, HOLE), (c, HOLE))`` used
in the partitioning argument of Section 4.4.2 (Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.trees.tree import Path, Tree


class HoleLabel:
    """The label of a context's hole leaf: the pair ``(symbol, HOLE)``."""

    __slots__ = ("symbol",)

    def __init__(self, symbol: object) -> None:
        self.symbol = symbol

    def __eq__(self, other: object) -> bool:
        return isinstance(other, HoleLabel) and self.symbol == other.symbol

    def __hash__(self) -> int:
        return hash(("__hole__", self.symbol))

    def __repr__(self) -> str:
        return f"HoleLabel({self.symbol!r})"

    def __str__(self) -> str:
        return f"[{self.symbol}]"


@dataclass(frozen=True)
class Context:
    """A tree over ``Sigma + Sigma x {HOLE}`` with exactly one hole leaf.

    Attributes
    ----------
    tree:
        The underlying tree; the node at :attr:`hole_path` is a leaf labeled
        :class:`HoleLabel`.
    hole_path:
        The path of the hole leaf.
    """

    tree: Tree
    hole_path: Path

    def __post_init__(self) -> None:
        hole = self.tree.subtree(self.hole_path)
        if not isinstance(hole.label, HoleLabel):
            raise ReproError("the node at hole_path must be labeled with a HoleLabel")
        if hole.children:
            raise ReproError("the hole must be a leaf")

    @property
    def hole_symbol(self) -> object:
        """The Sigma-label the plugged tree's root must carry."""
        label = self.tree.subtree(self.hole_path).label
        assert isinstance(label, HoleLabel)
        return label.symbol

    def apply(self, plug: Tree) -> Tree:
        """Return ``C[plug]``; the root label of *plug* must match the hole."""
        if plug.label != self.hole_symbol:
            raise ReproError(
                f"cannot plug a tree rooted {plug.label!r} into a hole labeled "
                f"{self.hole_symbol!r}"
            )
        return self.tree.replace_at(self.hole_path, plug)

    def compose(self, inner: "Context") -> "Context":
        """Return the context ``C[inner]`` (plug a context into the hole).

        The root of *inner* must carry the hole's Sigma-label.
        """
        root_label = inner.tree.label
        if isinstance(root_label, HoleLabel):
            root_symbol = root_label.symbol
        else:
            root_symbol = root_label
        if root_symbol != self.hole_symbol:
            raise ReproError(
                f"cannot compose: inner root {root_symbol!r} does not match hole "
                f"{self.hole_symbol!r}"
            )
        combined = self.tree.replace_at(self.hole_path, inner.tree)
        return Context(combined, self.hole_path + inner.hole_path)

    def spine_labels(self) -> tuple[object, ...]:
        """The ancestor string of the hole (Sigma-labels, hole included)."""
        labels: list[object] = []
        node = self.tree
        for index in self.hole_path:
            labels.append(node.label)
            node = node.children[index]
        labels.append(self.hole_symbol)
        return tuple(labels)

    def __str__(self) -> str:
        return str(self.tree)


def context_of(tree: Tree, path: Path) -> Context:
    """Return ``context^t(path)``: *tree* with the subtree at *path* replaced
    by a hole carrying that node's label (children dropped)."""
    label = tree.label_at(path)
    hole = Tree(HoleLabel(label))
    return Context(tree.replace_at(path, hole), path)


def is_context_tree(tree: Tree) -> bool:
    """True iff *tree* has exactly one hole leaf (i.e. encodes a context)."""
    holes = [
        path
        for path, node in tree.nodes()
        if isinstance(node.label, HoleLabel)
    ]
    if len(holes) != 1:
        return False
    return not tree.subtree(holes[0]).children


@dataclass(frozen=True)
class Fork:
    """A binary 3-node tree with two holes: ``a((b, HOLE), (c, HOLE))``.

    Used by the tree-automaton construction of Section 4.4.2 to summarize
    the effect of a branching node on reachable types.
    """

    root_label: object
    left_symbol: object
    right_symbol: object

    def apply(self, left: Tree, right: Tree) -> Tree:
        """Plug trees into both holes (root labels must match)."""
        if left.label != self.left_symbol:
            raise ReproError(
                f"left plug rooted {left.label!r} does not match {self.left_symbol!r}"
            )
        if right.label != self.right_symbol:
            raise ReproError(
                f"right plug rooted {right.label!r} does not match {self.right_symbol!r}"
            )
        return Tree(self.root_label, [left, right])

    def __str__(self) -> str:
        return f"{self.root_label}([{self.left_symbol}], [{self.right_symbol}])"


def fork_of(tree: Tree, path: Path) -> Fork:
    """Return the fork induced by the binary node at *path* (Section 4.4.2)."""
    node = tree.subtree(path)
    if len(node.children) != 2:
        raise ReproError("forks are induced by nodes with exactly two children")
    return Fork(node.label, node.children[0].label, node.children[1].label)
