"""Deterministic fault injection for the governed constructions.

The governor, the checkpoints, and the persistent artifact cache all
promise *graceful* failure: a run that hits a misbehaving clock, a broken
disk, or a corrupted artifact must either return the same answer as a
fault-free run or raise an error from the :mod:`repro.errors` taxonomy —
never a silently wrong result.  This package turns that promise into a
tested invariant by letting tests inject failures at **named injection
points** threaded through the hot paths:

========================  =====================================================
point                     where it fires
========================  =====================================================
``budget.check``          :meth:`repro.runtime.budget.Budget.check` (expensive
                          deadline/cancellation/memory pass)
``budget.tick``           :meth:`repro.runtime.budget.Budget.tick` (per-batch
                          step charge)
``checkpoint.materialize``  :meth:`Budget._trip` right before a lazy checkpoint
                          factory runs
``cache.read``            artifact-cache entry read (payload: raw entry bytes)
``cache.write``           artifact-cache entry write (payload: raw entry bytes)
``cache.fsync``           artifact-cache durability barrier before publish
``xml.ingest``            :func:`repro.trees.xml_io.from_xml` (payload: the
                          document text)
========================  =====================================================

Each :class:`FaultRule` names a point (or a ``prefix.*`` glob), a mode —
``raise``, ``delay``, ``corrupt``, or ``truncate`` — and a schedule: fire
on the *at*-th arrival at the point, then optionally every *every*
arrivals after that.  ``corrupt``/``truncate`` apply only at points that
carry a payload (bytes or text); at control points they are inert.
Everything is deterministic and seedable: corruption positions derive
from ``(seed, point, arrival)`` only, so a failing chaos schedule replays
exactly.

Overhead discipline mirrors :mod:`repro.observability`: every injection
site is guarded by the module-level :data:`ACTIVE` flag (one global load
and branch), so production runs pay nothing.  Install a plan with
``with FaultPlan([...]):`` — it threads through a
:class:`contextvars.ContextVar` exactly like :class:`~repro.runtime.Budget`.

When a fault fires it is *recorded*: a ``faults.injected.<point>``
counter in :data:`repro.observability.METRICS` and a ``fault_points``
attribute appended to the active span, so a taxonomy error escaping a
chaos run names the injection that caused it.
"""

from __future__ import annotations

import time
import zlib
from contextvars import ContextVar, Token
from dataclasses import dataclass, field
from typing import TypeVar

from repro import observability as _obs
from repro.errors import InjectedFaultError, ReproError

__all__ = [
    "ACTIVE",
    "CONTROL_POINTS",
    "FaultPlan",
    "FaultRule",
    "PAYLOAD_POINTS",
    "current_plan",
    "fire",
    "transform",
]

#: Module-level master switch: True while at least one :class:`FaultPlan`
#: context is active.  Injection sites guard with ``if faults.ACTIVE:`` so
#: the disabled cost is a single global load and branch.
ACTIVE = False

_DEPTH = 0

_ACTIVE_PLAN: ContextVar["FaultPlan | None"] = ContextVar("repro_faults", default=None)

#: Control points: no payload crosses the point; ``raise``/``delay`` only.
CONTROL_POINTS = frozenset(
    {"budget.check", "budget.tick", "checkpoint.materialize", "cache.fsync"}
)

#: Payload points: bytes/text flow through and may be corrupted/truncated.
PAYLOAD_POINTS = frozenset({"cache.read", "cache.write", "xml.ingest"})

_MODES = frozenset({"raise", "delay", "corrupt", "truncate"})

_Payload = TypeVar("_Payload", bytes, str)


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: *mode* at *point*, on the *at*-th arrival.

    Parameters
    ----------
    point:
        An injection-point name, or a ``prefix.*`` glob (``"cache.*"``).
    mode:
        ``"raise"`` | ``"delay"`` | ``"corrupt"`` | ``"truncate"``.
    at:
        1-based arrival index at which the rule first fires.
    every:
        After the first firing, fire again every *every* arrivals
        (``None`` = fire once).
    error:
        Exception class for ``raise`` mode.  Defaults to
        :class:`repro.errors.InjectedFaultError`; use e.g. ``OSError`` to
        simulate an infrastructure failure at an I/O point.
    delay_seconds:
        Sleep duration for ``delay`` mode.
    fraction:
        For ``truncate``: keep this prefix fraction of the payload
        (always a *strict* prefix).  For ``corrupt``: position of the
        damaged byte as a fraction of the payload length.
    """

    point: str
    mode: str
    at: int = 1
    every: int | None = None
    error: type[BaseException] | None = None
    delay_seconds: float = 0.0
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.at < 1:
            raise ValueError("at must be >= 1")
        if self.every is not None and self.every < 1:
            raise ValueError("every must be >= 1")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

    def matches(self, point: str) -> bool:
        if self.point.endswith("*"):
            return point.startswith(self.point[:-1])
        return point == self.point

    def due(self, arrival: int) -> bool:
        """Does this rule fire on the *arrival*-th hit of its point?"""
        if arrival < self.at:
            return False
        if arrival == self.at:
            return True
        if self.every is None:
            return False
        return (arrival - self.at) % self.every == 0


@dataclass(frozen=True)
class InjectionRecord:
    """One fault that actually fired (the plan's audit log)."""

    point: str
    mode: str
    arrival: int


class FaultPlan:
    """A deterministic, seedable schedule of injected faults.

    Use as a context manager::

        plan = FaultPlan([FaultRule("cache.read", "corrupt")], seed=7)
        with plan:
            result = approximate_upper(edtd)
        assert plan.injected  # the fault really fired

    The plan counts every arrival at every injection point (fault-free
    arrivals too), fires the matching rules on schedule, and logs each
    firing in :attr:`injected`.  Not re-entrant; plans nest lexically
    (innermost wins) like budgets and traces.
    """

    __slots__ = ("rules", "seed", "arrivals", "injected", "_token")

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...], seed: int = 0) -> None:
        self.rules: tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self.arrivals: dict[str, int] = {}
        self.injected: list[InjectionRecord] = []
        self._token: Token[FaultPlan | None] | None = None

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "FaultPlan":
        if self._token is not None:
            raise ReproError("FaultPlan context manager is not re-entrant")
        self._token = _ACTIVE_PLAN.set(self)
        _enable()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._token is not None
        _disable()
        _ACTIVE_PLAN.reset(self._token)
        self._token = None

    # -- firing ---------------------------------------------------------

    def _arrive(self, point: str) -> tuple[int, list[FaultRule]]:
        arrival = self.arrivals.get(point, 0) + 1
        self.arrivals[point] = arrival
        due = [rule for rule in self.rules if rule.matches(point) and rule.due(arrival)]
        return arrival, due

    def _record(self, point: str, mode: str, arrival: int) -> None:
        self.injected.append(InjectionRecord(point, mode, arrival))
        if _obs.ENABLED:
            _obs.METRICS.counter("faults.injected").inc()
            _obs.METRICS.counter(f"faults.injected.{point}").inc()
        span = _obs.current_span()
        if span is not None:
            points = span.attrs.setdefault("fault_points", [])
            if isinstance(points, list):
                points.append(f"{point}:{mode}@{arrival}")

    def _raise(self, rule: FaultRule, point: str, arrival: int) -> None:
        self._record(point, "raise", arrival)
        error = rule.error
        if error is None or error is InjectedFaultError:
            raise InjectedFaultError(point, f"arrival {arrival}")
        raise error(f"injected fault at {point!r} (arrival {arrival})")

    def fire(self, point: str) -> None:
        """Control-point arrival: may sleep or raise, carries no payload.

        ``corrupt``/``truncate`` rules matching a control point are inert
        by design — there is nothing to damage.
        """
        arrival, due = self._arrive(point)
        for rule in due:
            if rule.mode == "delay":
                self._record(point, "delay", arrival)
                time.sleep(rule.delay_seconds)
            elif rule.mode == "raise":
                self._raise(rule, point, arrival)

    def transform(self, point: str, data: _Payload) -> _Payload:
        """Payload-point arrival: may damage *data* (and/or sleep/raise).

        Corruption is deterministic in ``(seed, point, arrival)``; the
        damaged payload always differs from the input (checksums and
        parsers must notice), and truncation always yields a *strict*
        prefix.
        """
        arrival, due = self._arrive(point)
        for rule in due:
            if rule.mode == "delay":
                self._record(point, "delay", arrival)
                time.sleep(rule.delay_seconds)
            elif rule.mode == "raise":
                self._raise(rule, point, arrival)
            elif rule.mode == "truncate":
                self._record(point, "truncate", arrival)
                data = _truncate(data, rule.fraction)
            else:  # corrupt
                self._record(point, "corrupt", arrival)
                data = _corrupt(data, rule.fraction, self.seed, point, arrival)
        return data


def _truncate(data: _Payload, fraction: float) -> _Payload:
    if len(data) <= 1:
        return data[:0]
    cut = int(len(data) * fraction)
    cut = max(1, min(cut, len(data) - 1))  # strict, non-empty prefix
    return data[:cut]


def _corrupt(data: _Payload, fraction: float, seed: int, point: str, arrival: int) -> _Payload:
    if len(data) == 0:
        # Nothing to damage in place; grow it so readers still notice.
        if isinstance(data, bytes):
            return b"\x00"
        return "\x00"
    jitter = zlib.crc32(f"{seed}:{point}:{arrival}".encode("utf-8"))
    pos = min(int(len(data) * fraction) + jitter % 7, len(data) - 1)
    if isinstance(data, bytes):
        return data[:pos] + bytes([data[pos] ^ 0xFF]) + data[pos + 1:]
    # NUL is rejected by every tokenizer in this library, and cannot
    # collide with the replaced character.
    replacement = "\x00" if data[pos] != "\x00" else "\x01"
    return data[:pos] + replacement + data[pos + 1:]


# ----------------------------------------------------------------------
# Module-level site helpers
# ----------------------------------------------------------------------

def _enable() -> None:
    global ACTIVE, _DEPTH
    _DEPTH += 1
    ACTIVE = True


def _disable() -> None:
    global ACTIVE, _DEPTH
    if _DEPTH > 0:
        _DEPTH -= 1
    ACTIVE = _DEPTH > 0


def current_plan() -> FaultPlan | None:
    """The innermost active :class:`FaultPlan`, or ``None``."""
    return _ACTIVE_PLAN.get()


def fire(point: str) -> None:
    """Site helper for control points; no-op without an active plan.

    Sites must guard with ``if faults.ACTIVE:`` before calling so the
    inactive cost stays one global load.
    """
    plan = _ACTIVE_PLAN.get()
    if plan is not None:
        plan.fire(point)


def transform(point: str, data: _Payload) -> _Payload:
    """Site helper for payload points; identity without an active plan."""
    plan = _ACTIVE_PLAN.get()
    if plan is None:
        return data
    return plan.transform(point, data)
