"""Versioned content-addressed keys for persistent artifacts.

A disk entry must be reusable across *processes*, so its key has to pin
everything the artifact depends on:

* the **structural fingerprint** of the input — the same
  :func:`repro.strings.kernels.structural_key` fingerprints the in-process
  memo caches use (equal keys imply isomorphic inputs, hence equal
  artifacts; reprs that collide make the input uncacheable);
* the **artifact kind** (``min_dfa``, ``content_model``, ``upper``,
  ``lower``) — two constructions over the same input are different
  artifacts;
* the **format epoch** :data:`FORMAT_EPOCH` — the version of the
  serialized representation.  Bump it whenever the pickled classes change
  shape (new ``DFA`` slots, changed ``EDTD`` invariants, a new pickle
  protocol floor): old entries then read as *stale*, are deleted on
  sight, and get transparently recomputed.  Never reuse an epoch.

The address of an entry is ``sha256(kind | epoch | canonical-repr)`` —
hex, so it doubles as the filename.  Canonicalization is ``repr`` over the
structural-key tuples, whose set-valued components (frozenset type names)
are first rendered through
:func:`repro.schemas.edtd._canonical_type_key` — plain ``repr`` of a
frozenset follows hash-table iteration order, which varies across
processes and pickle round-trips and would silently turn hits into
misses.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - runtime import stays lazy
    from repro.schemas.edtd import EDTD

__all__ = ["FORMAT_EPOCH", "artifact_digest", "schema_structural_key", "text_digest"]

#: Serialization-format epoch baked into every key.  Bump on any change
#: to the pickled object layout; see ``docs/CACHING.md`` for the ledger.
FORMAT_EPOCH = 1


def artifact_digest(kind: str, key: Any) -> str | None:
    """Hex address of the artifact *kind* built from structural *key*.

    ``None`` keys (uncacheable inputs) propagate to ``None`` digests.
    """
    if key is None:
        return None
    canonical = f"{kind}|{FORMAT_EPOCH}|{key!r}"
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def text_digest(text: str) -> str:
    """Hex content address of a source *text* (UTF-8, epoch-pinned).

    Unlike :func:`artifact_digest` this needs no structural key — it
    fingerprints the literal characters.  The service's schema registry
    uses it to deduplicate repeat registrations of identical schema
    source without even re-parsing the text.
    """
    return hashlib.sha256(f"text|{FORMAT_EPOCH}|{text}".encode("utf-8")).hexdigest()


def schema_structural_key(edtd: "EDTD | None") -> tuple[Any, ...] | None:
    """A hashable structural fingerprint of an EDTD (or ``None``).

    Equal keys imply structurally identical schemas — same alphabet, same
    types, same start set, same per-type content models (compared by the
    DFA fingerprint of :func:`repro.strings.kernels.structural_key`) and
    the same typing map.  Like the string-level fingerprints, repr
    collisions between distinct types or labels make the schema
    uncacheable (returns ``None``): soundness over recall.
    """
    from repro.schemas.edtd import _canonical_type_key
    from repro.strings.kernels import structural_key

    if edtd is None:
        return None
    # Type names are canonicalized with _canonical_type_key, not bare
    # repr: constructions produce frozenset-valued types, and frozenset
    # repr follows hash-table iteration order — which varies across
    # processes (hash randomization) and across pickle round-trips of an
    # equal set.  A key must not.
    type_keys = sorted(_canonical_type_key(t) for t in edtd.types)
    for left, right in zip(type_keys, type_keys[1:]):
        if left == right:
            return None
    label_keys = sorted(_canonical_type_key(a) for a in edtd.alphabet)
    for left, right in zip(label_keys, label_keys[1:]):
        if left == right:
            return None
    rules: list[tuple[str, str, Any]] = []
    for type_ in sorted(edtd.types, key=_canonical_type_key):
        content_key = structural_key(edtd.rules[type_])
        if content_key is None:
            return None
        rules.append(
            (_canonical_type_key(type_), _canonical_type_key(edtd.mu[type_]), content_key)
        )
    return (
        "edtd",
        type(edtd).__name__,
        tuple(label_keys),
        tuple(sorted(_canonical_type_key(s) for s in edtd.starts)),
        tuple(rules),
    )
