"""Crash-safe content-addressed artifact store.

One file per artifact under ``<root>/objects/<aa>/<digest>``, where
``digest`` is the :func:`repro.cache.keys.artifact_digest` address.  Each
file is::

    header-JSON \\n payload-bytes

The header records the format epoch, the payload's SHA-256 and length,
and the budget cost (states/steps) the original construction charged —
replayed on every hit so governed runs trip identically warm or cold
(same discipline as the in-process memo caches).

Durability and failure contract
-------------------------------

* **Atomic publish** — entries are written to a temp file in the same
  directory, flushed, ``fsync``\\ ed, then ``os.replace``\\ d into place.
  A crash (including ``kill -9``) mid-write leaves only an orphan temp
  file, never a half-visible entry; orphans are swept on the next open.
* **Corruption is a miss, never a wrong answer** — every read re-verifies
  the checksum and the self-address.  A damaged entry is moved to
  ``<root>/quarantine/`` (preserved for forensics), counted, and reported
  as a miss so the caller recomputes.  A quarantined entry can never be
  served again.
* **Stale epochs are deleted** — entries whose header carries a different
  :data:`~repro.cache.keys.FORMAT_EPOCH` are well-formed but unreadable
  by this build; they are unlinked on sight and recomputed.
* **I/O failure is degradation, not error** — any ``OSError`` during read
  or write is swallowed (counted in :data:`repro.observability.METRICS`)
  and the construction proceeds uncached.  Only a root directory that can
  never work raises :class:`repro.errors.CacheError`, at open time.
* **Bounded size** — when the store exceeds ``max_bytes`` the
  least-recently-*used* entries are evicted (hits refresh the file
  mtime).  mtimes come from the filesystem's wall clock, which is fine:
  they order evictions, they never enter deadline math.

Trust boundary: payloads are pickles.  The checksum detects *corruption*,
not *tampering* — point the store at a directory with the same trust
level as the installed code (see ``docs/CACHING.md``).

Fault-injection points (chaos harness): ``cache.read`` and
``cache.write`` transform the raw entry bytes; ``cache.fsync`` fires
before the durability barrier.  ``tests/faults/`` sweeps all three and
asserts the contract above.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from contextvars import ContextVar, Token
from typing import Any

from repro import faults as _faults
from repro import observability as _obs
from repro.errors import CacheError, ReproError

__all__ = ["ArtifactCache", "DISABLED"]

_MAGIC = "repro-artifact"


class _Disabled:
    """Sentinel: *explicitly* no cache, overriding every ambient source."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "repro.cache.DISABLED"


#: Pass ``cache=DISABLED`` (or use CLI ``--no-cache``) to force a
#: construction to ignore ambient and environment-configured stores.
DISABLED = _Disabled()

#: Default size bound: generous for schema artifacts (a minimized stEDTD
#: pickles to a few hundred bytes; even hostile families stay tiny).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Cumulative hit/miss totals across every open store in the process —
#: feeds the span-level cache-delta attribution (see
#: :func:`repro.observability.register_cache_provider`).
_PROCESS_TOTALS = {"hits": 0, "misses": 0}


def _process_cache_totals() -> tuple[int, int]:
    return _PROCESS_TOTALS["hits"], _PROCESS_TOTALS["misses"]


_obs.register_cache_provider(_process_cache_totals)


class ArtifactCache:
    """A content-addressed, crash-safe, bounded on-disk artifact store.

    Also a context manager: ``with ArtifactCache(path):`` installs the
    store as the ambient default every cache-aware construction in the
    dynamic extent consults (mirrors :class:`repro.runtime.Budget`).
    """

    __slots__ = (
        "root",
        "objects_dir",
        "quarantine_dir",
        "max_bytes",
        "hits",
        "misses",
        "corrupt",
        "stale",
        "evictions",
        "writes",
        "io_errors",
        "_total_bytes",
        "_tmp_counter",
        "_token",
    )

    _token: "Token[ArtifactCache | _Disabled | None] | None"

    def __init__(self, root: str | os.PathLike[str], *, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        if max_bytes < 1:
            raise CacheError("max_bytes must be positive")
        self.root = os.fspath(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stale = 0
        self.evictions = 0
        self.writes = 0
        self.io_errors = 0
        self._tmp_counter = 0
        self._token = None
        try:
            os.makedirs(self.objects_dir, exist_ok=True)
            os.makedirs(self.quarantine_dir, exist_ok=True)
        except OSError as error:
            raise CacheError(f"cache root {self.root!r} is unusable: {error}") from error
        if not os.access(self.objects_dir, os.W_OK):
            raise CacheError(f"cache root {self.root!r} is not writable")
        self._sweep_orphans()
        self._total_bytes = self._scan_total()

    # -- ambient installation -------------------------------------------

    def __enter__(self) -> "ArtifactCache":
        if self._token is not None:
            raise ReproError("ArtifactCache context manager is not re-entrant")
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._token is not None
        _ACTIVE.reset(self._token)
        self._token = None

    # -- paths ----------------------------------------------------------

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self.objects_dir, digest[:2], digest)

    def _sweep_orphans(self) -> None:
        """Unlink temp files abandoned by crashed writers.

        Temp names embed the writer's pid; a temp file whose pid is no
        longer alive is an orphan from a crash mid-write and can never be
        published.  Live writers' temp files are left alone.
        """
        for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            for name in filenames:
                if not name.startswith(".tmp-"):
                    continue
                parts = name.split("-")
                pid = int(parts[1]) if len(parts) > 2 and parts[1].isdigit() else None
                if pid is not None and pid != os.getpid() and _pid_alive(pid):
                    continue
                if pid == os.getpid():
                    continue  # a concurrent thread of this process may own it
                try:
                    os.unlink(os.path.join(dirpath, name))
                except OSError:
                    pass  # repro-lint: disable=R007 -- sweep is best-effort; entry reads never see temp files

    def _scan_total(self) -> int:
        total = 0
        try:
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for name in filenames:
                    if name.startswith(".tmp-"):
                        continue
                    try:
                        total += os.path.getsize(os.path.join(dirpath, name))
                    except OSError:
                        continue  # repro-lint: disable=R007 -- evicted/quarantined under our feet; totals re-sync on next scan
        except OSError as error:
            self._note_io_error("scan", error)
        return total

    # -- counters --------------------------------------------------------

    def _note_hit(self) -> None:
        self.hits += 1
        _PROCESS_TOTALS["hits"] += 1
        if _obs.ENABLED:
            _obs.METRICS.counter("cache.disk.hits").inc()

    def _note_miss(self) -> None:
        self.misses += 1
        _PROCESS_TOTALS["misses"] += 1
        if _obs.ENABLED:
            _obs.METRICS.counter("cache.disk.misses").inc()

    def _note_io_error(self, where: str, error: OSError) -> None:
        # Degradation site: the failure is recorded (counter + metric),
        # never propagated — a broken disk costs recomputes, not answers.
        self.io_errors += 1
        if _obs.ENABLED:
            _obs.METRICS.counter("cache.disk.io_errors").inc()
            _obs.METRICS.counter(f"cache.disk.io_errors.{where}").inc()

    # -- corruption handling ---------------------------------------------

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a damaged entry aside so it can never be served again."""
        self.corrupt += 1
        if _obs.ENABLED:
            _obs.METRICS.counter("cache.disk.corrupt").inc()
        try:
            size = os.path.getsize(path)
            destination = os.path.join(
                self.quarantine_dir, os.path.basename(path) + "." + reason
            )
            os.replace(path, destination)
            self._total_bytes = max(0, self._total_bytes - size)
        except OSError as error:
            self._note_io_error("quarantine", error)
            try:
                os.unlink(path)
            except OSError:
                pass  # repro-lint: disable=R007 -- already counted; the entry is a miss either way

    # -- read ------------------------------------------------------------

    def get(self, digest: str) -> tuple[Any, int, int] | None:
        """Load the artifact addressed by *digest*.

        Returns ``(payload, states_cost, steps_cost)`` or ``None`` on a
        miss — where "miss" covers absent, stale-epoch, corrupted, and
        I/O-failed entries alike.  The caller's only obligation on
        ``None`` is to recompute.
        """
        from repro.cache.keys import FORMAT_EPOCH

        path = self._entry_path(digest)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self._note_miss()
            return None
        except OSError as error:
            self._note_io_error("read", error)
            self._note_miss()
            return None
        if _faults.ACTIVE:
            try:
                raw = _faults.transform("cache.read", raw)
            except OSError as error:
                self._note_io_error("read", error)
                self._note_miss()
                return None
        header, payload = _split_entry(raw)
        if header is None:
            self._quarantine(path, "malformed")
            self._note_miss()
            return None
        if header.get("magic") != _MAGIC:
            self._quarantine(path, "magic")
            self._note_miss()
            return None
        if header.get("epoch") != FORMAT_EPOCH:
            # A well-formed entry from another build: stale, not corrupt.
            self.stale += 1
            if _obs.ENABLED:
                _obs.METRICS.counter("cache.disk.stale").inc()
            try:
                self._total_bytes = max(0, self._total_bytes - os.path.getsize(path))
                os.unlink(path)
            except OSError as error:
                self._note_io_error("unlink-stale", error)
            self._note_miss()
            return None
        if (
            header.get("digest") != digest
            or header.get("payload_len") != len(payload)
            or header.get("payload_sha256") != _sha256(payload)
        ):
            self._quarantine(path, "checksum")
            self._note_miss()
            return None
        try:
            value = pickle.loads(payload)
        except Exception:  # repro-lint: disable=R004 -- unpickling arbitrary bytes can raise anything; quarantined as corruption
            self._quarantine(path, "unpickle")
            self._note_miss()
            return None
        states = header.get("states")
        steps = header.get("steps")
        if not isinstance(states, int) or not isinstance(steps, int):
            self._quarantine(path, "costs")
            self._note_miss()
            return None
        self._note_hit()
        try:
            os.utime(path)  # LRU freshness
        except OSError as error:
            self._note_io_error("utime", error)
        return value, states, steps

    # -- write -----------------------------------------------------------

    def put(self, digest: str, value: Any, states_cost: int, steps_cost: int) -> bool:
        """Publish an artifact atomically; returns False on degradation.

        Never raises for I/O failure — a store that cannot write behaves
        exactly like no store at all.
        """
        from repro.cache.keys import FORMAT_EPOCH

        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            return False  # unpicklable artifact: silently uncacheable
        header = {
            "magic": _MAGIC,
            "epoch": FORMAT_EPOCH,
            "digest": digest,
            "payload_sha256": _sha256(payload),
            "payload_len": len(payload),
            "states": states_cost,
            "steps": steps_cost,
        }
        raw = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
        if _faults.ACTIVE:
            try:
                raw = _faults.transform("cache.write", raw)
            except OSError as error:
                self._note_io_error("write", error)
                return False
        path = self._entry_path(digest)
        directory = os.path.dirname(path)
        self._tmp_counter += 1
        tmp = os.path.join(
            directory, f".tmp-{os.getpid()}-{self._tmp_counter}-{digest[:8]}"
        )
        try:
            os.makedirs(directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(raw)
                handle.flush()
                if _faults.ACTIVE:
                    _faults.fire("cache.fsync")
                os.fsync(handle.fileno())
            # Publish: atomic on POSIX — readers see the old entry, no
            # entry, or the complete new entry; never a partial write.
            os.replace(tmp, path)
        except OSError as error:
            self._note_io_error("write", error)
            try:
                os.unlink(tmp)
            except OSError:
                pass  # repro-lint: disable=R007 -- temp may not exist; orphans are swept on next open
            return False
        self.writes += 1
        if _obs.ENABLED:
            _obs.METRICS.counter("cache.disk.writes").inc()
        self._total_bytes += len(raw)
        if self._total_bytes > self.max_bytes:
            self._evict()
        return True

    # -- eviction --------------------------------------------------------

    def _evict(self) -> None:
        """Drop least-recently-used entries until back under ``max_bytes``."""
        entries: list[tuple[float, int, str]] = []
        try:
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for name in filenames:
                    if name.startswith(".tmp-"):
                        continue
                    path = os.path.join(dirpath, name)
                    try:
                        stat = os.stat(path)
                    except OSError:
                        continue  # repro-lint: disable=R007 -- raced with another evictor; the entry is gone either way
                    entries.append((stat.st_mtime, stat.st_size, path))
        except OSError as error:
            self._note_io_error("evict-scan", error)
            return
        entries.sort()
        total = sum(size for _mtime, size, _path in entries)
        self._total_bytes = total
        for _mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                os.unlink(path)
            except OSError as error:
                self._note_io_error("evict", error)
                continue
            total -= size
            self._total_bytes = total
            self.evictions += 1
            if _obs.ENABLED:
                _obs.METRICS.counter("cache.disk.evictions").inc()

    # -- introspection ---------------------------------------------------

    def entry_count(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.objects_dir):
            count += sum(1 for name in filenames if not name.startswith(".tmp-"))
        return count

    def total_bytes(self) -> int:
        return self._total_bytes

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stale": self.stale,
            "evictions": self.evictions,
            "writes": self.writes,
            "io_errors": self.io_errors,
            "entries": self.entry_count(),
            "bytes": self._total_bytes,
        }

    def clear(self) -> None:
        """Drop every entry (and quarantined file) and reset counters."""
        for base in (self.objects_dir, self.quarantine_dir):
            for dirpath, _dirnames, filenames in os.walk(base):
                for name in filenames:
                    try:
                        os.unlink(os.path.join(dirpath, name))
                    except OSError as error:
                        self._note_io_error("clear", error)
        self.hits = self.misses = self.corrupt = self.stale = 0
        self.evictions = self.writes = self.io_errors = 0
        self._total_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ArtifactCache {self.root!r} entries={self.entry_count()} "
            f"hits={self.hits} misses={self.misses} corrupt={self.corrupt}>"
        )


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _split_entry(raw: bytes) -> tuple[dict[str, Any] | None, bytes]:
    """Split an entry file into (header dict, payload); header None when
    the framing itself is damaged."""
    newline = raw.find(b"\n")
    if newline < 0:
        return None, b""
    try:
        header = json.loads(raw[:newline].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None, b""
    if not isinstance(header, dict):
        return None, b""
    return header, raw[newline + 1:]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


#: Ambient store installed by ``with ArtifactCache(...):`` (or the
#: :func:`repro.cache.activation` helper).  Shared with
#: :mod:`repro.cache`'s resolver.  May carry :data:`DISABLED` to suppress
#: outer/env stores for a dynamic extent.
_ACTIVE: ContextVar["ArtifactCache | _Disabled | None"] = ContextVar(
    "repro_cache", default=None
)
