"""Persistent, crash-safe artifact cache for compiled constructions.

The in-process memo caches (:mod:`repro.strings.kernels`) make *repeated*
constructions free within one process; this package extends that across
processes: minimized DFAs, per-type content models, and whole upper/lower
stEDTD approximations are stored content-addressed on disk and reloaded
instead of recomputed.

Layout:

* :mod:`repro.cache.keys` — versioned content addresses
  (:data:`~repro.cache.keys.FORMAT_EPOCH`,
  :func:`~repro.cache.keys.artifact_digest`,
  :func:`~repro.cache.keys.schema_structural_key`).
* :mod:`repro.cache.store` — :class:`ArtifactCache`, the atomic-write /
  checksum-verify / quarantine-on-corruption store itself.
* this module — **ambient resolution**: how a governed construction deep
  in the kernels finds the store to consult.

Resolution order (first hit wins), mirroring :class:`repro.runtime.Budget`:

1. an explicit ``cache=`` argument at an entry point (``DISABLED`` for
   "definitely no disk I/O");
2. the innermost ``with ArtifactCache(path):`` context;
3. the process default installed by :func:`configure`;
4. the ``REPRO_CACHE_DIR`` environment variable (opened lazily, once).

With no source configured, :func:`resolve_cache` returns ``None`` and
every construction runs exactly as before — the disk cache is pure
opt-in.  See ``docs/CACHING.md`` for the on-disk format and the
corruption/eviction contract.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Union

from repro.cache.keys import (
    FORMAT_EPOCH,
    artifact_digest,
    schema_structural_key,
    text_digest,
)
from repro.cache.store import _ACTIVE, DISABLED, ArtifactCache, _Disabled
from repro.errors import CacheError

__all__ = [
    "ArtifactCache",
    "DISABLED",
    "FORMAT_EPOCH",
    "activation",
    "artifact_digest",
    "configure",
    "current_cache",
    "resolve_cache",
    "schema_structural_key",
    "text_digest",
]

CacheArg = Union[ArtifactCache, _Disabled, None]

#: Process-wide default installed by :func:`configure`.
_DEFAULT: ArtifactCache | None = None

#: Lazily-opened store from ``REPRO_CACHE_DIR``.  ``False`` = not yet
#: resolved; ``None`` = resolved to "no env cache" (unset or unusable).
_ENV_CACHE: ArtifactCache | None | bool = False


def configure(cache: ArtifactCache | None) -> ArtifactCache | None:
    """Install (or clear, with ``None``) the process-default store.

    Returns the previous default so callers can restore it.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = cache
    return previous


def _env_cache() -> ArtifactCache | None:
    global _ENV_CACHE
    if _ENV_CACHE is False:
        directory = os.environ.get("REPRO_CACHE_DIR")
        if not directory:
            _ENV_CACHE = None
        else:
            try:
                _ENV_CACHE = ArtifactCache(directory)
            except CacheError:
                # An unusable REPRO_CACHE_DIR must not break constructions
                # that never asked for caching; it just means "no cache".
                _ENV_CACHE = None
    assert _ENV_CACHE is not False
    return _ENV_CACHE


def _reset_env_cache() -> None:
    """Forget the memoized ``REPRO_CACHE_DIR`` store (test helper)."""
    global _ENV_CACHE
    _ENV_CACHE = False


def current_cache() -> ArtifactCache | None:
    """The innermost ambient store, or ``None`` (also ``None`` inside a
    ``DISABLED`` extent)."""
    ambient = _ACTIVE.get()
    return None if isinstance(ambient, _Disabled) else ambient


def resolve_cache(cache: CacheArg = None) -> ArtifactCache | None:
    """Resolve the effective store for a cache-aware construction.

    Explicit argument > ambient context > :func:`configure` default >
    ``REPRO_CACHE_DIR`` > nothing.  ``DISABLED`` — explicit or installed
    as the ambient value by :func:`activation` — short-circuits to
    ``None`` regardless of everything else.
    """
    if isinstance(cache, _Disabled):
        return None
    if cache is not None:
        return cache
    ambient = _ACTIVE.get()
    if ambient is not None:
        return None if isinstance(ambient, _Disabled) else ambient
    if _DEFAULT is not None:
        return _DEFAULT
    return _env_cache()


@contextmanager
def activation(cache: CacheArg = None) -> Iterator[ArtifactCache | None]:
    """Install an explicit ``cache=`` argument as the ambient store.

    Yields the effective store (``None`` for ``DISABLED``).  With
    ``cache=None`` this is a pure read — ambient resolution is left
    untouched so an outer context, :func:`configure` default, or
    ``REPRO_CACHE_DIR`` still applies to nested constructions.
    """
    if cache is None:
        yield resolve_cache()
        return
    token = _ACTIVE.set(cache)
    try:
        yield None if isinstance(cache, _Disabled) else cache
    finally:
        _ACTIVE.reset(token)
