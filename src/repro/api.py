"""The stable high-level facade: one call, one result object.

Every entry point here wraps one of the paper's constructions or decision
procedures behind a uniform contract:

* the governed trio ``budget=None, checkpoint=None, trace=None`` is always
  accepted (R006 keyword surface; ``None`` resolves the ambient
  context-manager defaults);
* when no budget is supplied a fresh *unlimited metering*
  :class:`repro.runtime.Budget` is installed, so the returned
  :class:`BudgetUsage` is always populated;
* when no trace is supplied a fresh :class:`repro.observability.Trace` is
  opened around the call, so the result always carries the span tree of
  what actually ran — the facade *is* the observability surface;
* an optional ``cache=`` accepts a :class:`repro.cache.ArtifactCache`
  (installed as the ambient store for the call, so every nested
  minimal-DFA/content-model construction consults it) or
  :data:`repro.cache.DISABLED` to suppress ambient/environment stores.
  :func:`approximate_upper` and :func:`approximate_lower` additionally
  cache the *whole* result schema on disk, keyed by the input's
  structural fingerprint — a warm repeat skips the construction entirely
  while still replaying its recorded budget cost.

Results are frozen dataclasses: :class:`ApproximationResult`,
:class:`InclusionResult`, :class:`ValidationResult`,
:class:`DefinabilityReport`.  The lower-level entry points
(:func:`repro.core.upper.minimal_upper_approximation` and friends) remain
public and unchanged for callers who want the raw schema objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import cache as _cache
from repro import observability as _obs
from repro.core.decision import (
    Definability,
    single_type_definability,
)
from repro.core.greedy import greedy_maximal_lower
from repro.core.upper import minimal_upper_approximation
from repro.errors import BudgetExceededError
from repro.observability import Trace
from repro.runtime.budget import Budget, resolve_budget
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type
from repro.strings.kernels import _recharge
from repro.tree_automata.inclusion import edtd_includes
from repro.trees.tree import Tree
from repro.trees.xml_io import from_xml

__all__ = [
    "ApproximationResult",
    "BudgetUsage",
    "DefinabilityReport",
    "InclusionResult",
    "ValidationResult",
    "approximate_lower",
    "approximate_upper",
    "definability",
    "schema_equivalent",
    "schema_includes",
    "validate",
]


# ----------------------------------------------------------------------
# Result objects
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BudgetUsage:
    """What one facade call charged against its (possibly shared) budget."""

    states: int
    steps: int
    elapsed_seconds: float

    def describe(self) -> str:
        return (
            f"{self.states} states, {self.steps} steps, "
            f"{self.elapsed_seconds:.3f}s"
        )


@dataclass(frozen=True)
class ApproximationResult:
    """An approximation schema plus the evidence of how it was built.

    ``direction`` is ``"upper"`` (unique minimal upper XSD-approximation,
    Theorem 3.2) or ``"lower"`` (greedy maximal-within-bound lower
    approximation, Theorem 4.12 made constructive).
    """

    schema: SingleTypeEDTD
    direction: str
    trace: Trace
    usage: BudgetUsage


@dataclass(frozen=True)
class InclusionResult:
    """Boolean verdict of an inclusion or equivalence check; truthy iff
    the inclusion holds."""

    verdict: bool
    trace: Trace
    usage: BudgetUsage

    def __bool__(self) -> bool:
        return self.verdict


@dataclass(frozen=True)
class ValidationResult:
    """Boolean verdict of document validation; truthy iff the document is
    in the schema's language."""

    valid: bool
    trace: Trace
    usage: BudgetUsage

    def __bool__(self) -> bool:
        return self.valid


@dataclass(frozen=True)
class DefinabilityReport:
    """Three-valued single-type definability verdict with budget evidence.

    Truthy iff the verdict is ``Definability.YES``.  On ``UNKNOWN`` the
    budget tripped: ``error`` carries the partial-progress counters and
    ``checkpoint``, when not ``None``, resumes the interrupted subset
    construction via ``definability(edtd, checkpoint=...)``.
    """

    verdict: Definability
    error: BudgetExceededError | None
    checkpoint: object | None
    trace: Trace
    usage: BudgetUsage

    def __bool__(self) -> bool:
        return self.verdict is Definability.YES


# ----------------------------------------------------------------------
# Shared context plumbing
# ----------------------------------------------------------------------

class _FacadeCall:
    """Resolve (budget, trace, cache) for one facade call and meter the
    deltas.

    An explicit or ambient budget/trace wins; otherwise a fresh unlimited
    metering budget and a fresh trace are created and — for the trace —
    installed for the call's dynamic extent so every nested construction
    span attaches to it.  An explicit ``cache=`` argument (a store or
    :data:`repro.cache.DISABLED`) is installed as the ambient store for
    the extent; ``None`` leaves ambient/env resolution in force.
    """

    __slots__ = (
        "budget",
        "trace",
        "cache",
        "_cache_arg",
        "_cache_cm",
        "_owned_trace",
        "_states0",
        "_steps0",
        "_elapsed0",
    )

    def __init__(
        self,
        name: str,
        budget: Budget | None,
        trace: Trace | None,
        cache: "_cache.CacheArg" = None,
    ) -> None:
        resolved = resolve_budget(budget)
        self.budget = resolved if resolved is not None else Budget()
        if trace is None:
            trace = _obs.current_trace()
        self._owned_trace = Trace(name) if trace is None else None
        self.trace = trace if trace is not None else self._owned_trace
        self._cache_arg = cache
        self._cache_cm: Any = None
        self.cache: "_cache.ArtifactCache | None" = None
        self._states0 = 0
        self._steps0 = 0
        self._elapsed0 = 0.0

    def __enter__(self) -> "_FacadeCall":
        if self._owned_trace is not None:
            self._owned_trace.__enter__()
        self._cache_cm = _cache.activation(self._cache_arg)
        self.cache = self._cache_cm.__enter__()
        self._states0 = self.budget.states
        self._steps0 = self.budget.steps
        self._elapsed0 = self.budget.elapsed
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._cache_cm is not None:
            self._cache_cm.__exit__(*exc_info)
            self._cache_cm = None
        if self._owned_trace is not None:
            self._owned_trace.__exit__(*exc_info)

    def usage(self) -> BudgetUsage:
        # Deltas, not totals: the budget may be a long-lived ambient one
        # shared across several facade calls.
        return BudgetUsage(
            states=self.budget.states - self._states0,
            steps=self.budget.steps - self._steps0,
            elapsed_seconds=self.budget.elapsed - self._elapsed0,
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def _whole_schema_digest(kind: str, edtd: EDTD, params: tuple[Any, ...]) -> str | None:
    """Disk address for a whole approximation result, or ``None`` when the
    input schema is uncacheable (repr collisions)."""
    key = _cache.schema_structural_key(edtd)
    if key is None:
        return None
    return _cache.artifact_digest(kind, (key, params))


def _load_cached_schema(
    store: "_cache.ArtifactCache", digest: str, budget: Budget
) -> SingleTypeEDTD | None:
    """A cached approximation schema, with its construction cost replayed
    against *budget* — or ``None`` on any kind of miss."""
    loaded = store.get(digest)
    if loaded is None:
        return None
    schema, states_cost, steps_cost = loaded
    if not isinstance(schema, SingleTypeEDTD):  # foreign/damaged payload
        return None
    _recharge(budget, states_cost, steps_cost)
    return schema


def _guide_cache_key(guide: Any) -> Any:
    """A structural fingerprint of a ``guide=`` argument for whole-schema
    digests: ``None`` for no guide, a schema/DFA structural key otherwise,
    or the string ``"uncacheable"`` (a value no real key collides with)
    when the guide has no sound fingerprint."""
    if guide is None:
        return None
    if isinstance(guide, EDTD):
        key = _cache.schema_structural_key(guide)
    else:
        from repro.strings.kernels import structural_key

        key = structural_key(guide)
    return "uncacheable" if key is None else key


def approximate_upper(
    edtd: EDTD,
    *,
    minimize: bool = False,
    strategy: str = "blind",
    guide: Any = None,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> ApproximationResult:
    """Construction 3.1: the unique minimal upper XSD-approximation of
    ``L(edtd)``, wrapped with trace and budget-usage evidence.

    *strategy* selects the determinization kernel (``"blind"`` or
    ``"schema-guided"``; see
    :func:`repro.core.upper.minimal_upper_approximation`), *guide* the
    optional guiding schema (an EDTD or an ancestor-string DFA).  With
    ``strategy="schema-guided"`` and no explicit guide, the input is its
    own guide: its ancestor-string machine prunes the subset
    construction without changing the approximated language.

    With a persistent store configured, the whole result schema is cached
    on disk keyed by the input's structural fingerprint — with the
    strategy and the guide's fingerprint folded into the key, so blind
    and guided artifacts never collide: a warm repeat skips the subset
    construction entirely (while replaying its recorded budget cost, so
    governance is identical warm or cold).
    """
    with _FacadeCall("approximate-upper", budget, trace, cache) as call:
        if strategy == "schema-guided" and guide is None:
            # Self-guided by default: the input's own ancestor-string
            # machine prunes subset states without changing the language
            # (the input accepts no document outside its own ancestor
            # universe).  Resolving it here, before the cache key, keeps
            # explicit `guide=edtd` and the default on the same artifact.
            guide = edtd
        digest = None
        if call.cache is not None and checkpoint is None:
            guide_key = _guide_cache_key(guide)
            if guide_key != "uncacheable":
                digest = _whole_schema_digest(
                    "upper", edtd, (bool(minimize), strategy, guide_key)
                )
        if digest is not None:
            cached = _load_cached_schema(call.cache, digest, call.budget)
            if cached is not None:
                return ApproximationResult(
                    schema=cached,
                    direction="upper",
                    trace=call.trace,
                    usage=call.usage(),
                )
        states0, steps0 = call.budget.states, call.budget.steps
        schema = minimal_upper_approximation(
            edtd,
            minimize=minimize,
            strategy=strategy,
            guide=guide,
            budget=call.budget,
            checkpoint=checkpoint,
            trace=call.trace,
        )
        if digest is not None:
            call.cache.put(
                digest,
                schema,
                call.budget.states - states0,
                call.budget.steps - steps0,
            )
        return ApproximationResult(
            schema=schema, direction="upper", trace=call.trace, usage=call.usage()
        )


def approximate_lower(
    target: EDTD,
    *,
    max_size: int = 6,
    seed_schema: SingleTypeEDTD | None = None,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> ApproximationResult:
    """A greedy maximal-within-bound lower XSD-approximation of
    ``L(target)`` (the constructive side of Theorem 4.12).

    Cached whole on disk like :func:`approximate_upper`; the key includes
    *max_size* and the seed schema's fingerprint.
    """
    with _FacadeCall("approximate-lower", budget, trace, cache) as call:
        digest = None
        if call.cache is not None and checkpoint is None:
            seed_key: Any = None
            if seed_schema is not None:
                seed_key = _cache.schema_structural_key(seed_schema)
            if seed_schema is None or seed_key is not None:
                digest = _whole_schema_digest(
                    "lower", target, (max_size, seed_key)
                )
        if digest is not None:
            cached = _load_cached_schema(call.cache, digest, call.budget)
            if cached is not None:
                return ApproximationResult(
                    schema=cached,
                    direction="lower",
                    trace=call.trace,
                    usage=call.usage(),
                )
        states0, steps0 = call.budget.states, call.budget.steps
        schema = greedy_maximal_lower(
            target,
            max_size=max_size,
            seed_schema=seed_schema,
            budget=call.budget,
            checkpoint=checkpoint,
            trace=call.trace,
        )
        if digest is not None:
            call.cache.put(
                digest,
                schema,
                call.budget.states - states0,
                call.budget.steps - steps0,
            )
        return ApproximationResult(
            schema=schema, direction="lower", trace=call.trace, usage=call.usage()
        )


def definability(
    edtd: EDTD,
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> DefinabilityReport:
    """Three-valued single-type definability of ``L(edtd)``
    (EXPTIME-complete; degrades to ``UNKNOWN`` with a resumable
    checkpoint when the budget trips)."""
    with _FacadeCall("definability", budget, trace, cache) as call:
        result = single_type_definability(
            edtd, budget=call.budget, checkpoint=checkpoint, trace=call.trace
        )
        return DefinabilityReport(
            verdict=result.verdict,
            error=result.error,
            checkpoint=result.checkpoint,
            trace=call.trace,
            usage=call.usage(),
        )


def schema_includes(
    sup: EDTD,
    sub: EDTD,
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> InclusionResult:
    """Decide ``L(sub) subseteq L(sup)``.

    Dispatches on the superset schema: single-type superset schemas take
    the PTIME route of Lemma 3.3; general EDTDs take the exact EXPTIME
    tree-automata procedure (Theorem 2.13).

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    neither inclusion route has a resumable phase.
    """
    del checkpoint  # no resumable phase
    with _FacadeCall("schema-includes", budget, trace, cache) as call:
        with _obs.construction_span(
            "schema-includes", trace=call.trace, budget=call.budget
        ) as span:
            if is_single_type(sup):
                verdict = included_in_single_type(sub, sup)
            else:
                verdict = edtd_includes(sup, sub, budget=call.budget)
            if span is not None:
                span.annotate(included=verdict)
        return InclusionResult(verdict=verdict, trace=call.trace, usage=call.usage())


def schema_equivalent(
    left: EDTD,
    right: EDTD,
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> InclusionResult:
    """Decide ``L(left) == L(right)`` (two inclusion checks, each routed
    as in :func:`schema_includes`)."""
    first = schema_includes(
        left, right, budget=budget, checkpoint=checkpoint, trace=trace, cache=cache
    )
    if not first.verdict:
        return first
    second = schema_includes(
        right, left, budget=budget, checkpoint=checkpoint, trace=first.trace, cache=cache
    )
    return InclusionResult(
        verdict=second.verdict,
        trace=first.trace,
        usage=BudgetUsage(
            states=first.usage.states + second.usage.states,
            steps=first.usage.steps + second.usage.steps,
            elapsed_seconds=max(
                first.usage.elapsed_seconds, second.usage.elapsed_seconds
            ),
        ),
    )


def validate(
    schema: EDTD,
    document: "Tree | str",
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> ValidationResult:
    """Validate *document* (a :class:`Tree` or an element-only XML
    fragment string) against *schema*.

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    validation has no resumable phase.
    """
    del checkpoint  # no resumable phase
    with _FacadeCall("validate", budget, trace, cache) as call:
        with _obs.construction_span(
            "validate", trace=call.trace, budget=call.budget
        ) as span:
            tree = from_xml(document) if isinstance(document, str) else document
            valid = schema.accepts(tree)
            if span is not None:
                span.annotate(valid=valid, nodes=tree.size())
        return ValidationResult(valid=valid, trace=call.trace, usage=call.usage())
