"""The stable high-level facade: compile once, call many times.

The facade has two layers:

* :func:`compile_schema` produces a frozen :class:`CompiledSchema`
  **handle** carrying everything about a schema that is worth paying for
  exactly once — the reduced schema, its structural fingerprint and
  cache digests, the single-type classification, the hot integer-coded
  validation tables of the arena runner, and (lazily) the derived
  ancestor-string guide.  The handle's methods
  (:meth:`CompiledSchema.validate`, :meth:`~CompiledSchema.approximate_upper`,
  :meth:`~CompiledSchema.approximate_lower`,
  :meth:`~CompiledSchema.definability`, :meth:`~CompiledSchema.includes`,
  :meth:`~CompiledSchema.equivalent`) are the primary entry points; a
  long-lived caller (see :mod:`repro.service`) keeps handles hot and
  amortizes compilation over millions of calls.
* The module-level free functions (:func:`approximate_upper`,
  :func:`validate`, ...) remain source-compatible thin wrappers: each
  resolves a per-schema-object handle (compiled at most once, held
  weakly) and delegates.  They no longer recompute structural keys or
  whole-schema digests per call.

Every entry point wraps one of the paper's constructions or decision
procedures behind a uniform contract:

* the governed trio ``budget=None, checkpoint=None, trace=None`` is always
  accepted (R006 keyword surface; ``None`` resolves the ambient
  context-manager defaults);
* when no budget is supplied a fresh metering
  :class:`repro.runtime.Budget` is installed — unlimited by default,
  bounded by the ambient :class:`Settings` when one is configured — so
  the returned :class:`BudgetUsage` is always populated;
* when no trace is supplied a fresh :class:`repro.observability.Trace` is
  opened around the call, so the result always carries the span tree of
  what actually ran — the facade *is* the observability surface;
* an optional ``cache=`` accepts a :class:`repro.cache.ArtifactCache`
  (installed as the ambient store for the call, so every nested
  minimal-DFA/content-model construction consults it) or
  :data:`repro.cache.DISABLED` to suppress ambient/environment stores.
  The approximation entry points additionally cache the *whole* result
  schema on disk, keyed by the input's structural fingerprint — a warm
  repeat skips the construction entirely while still replaying its
  recorded budget cost.

Facade-wide defaults live in the frozen :class:`Settings` dataclass,
installed for a dynamic extent with :func:`configured` or process-wide
with :func:`configure` (the legacy ``configure(**kwargs)`` grab-bag form
still works behind a :class:`DeprecationWarning`).

Results are frozen dataclasses: :class:`ApproximationResult`,
:class:`InclusionResult`, :class:`ValidationResult`,
:class:`DefinabilityReport`.  The lower-level entry points
(:func:`repro.core.upper.minimal_upper_approximation` and friends) remain
public and unchanged for callers who want the raw schema objects.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import warnings
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro import cache as _cache
from repro import observability as _obs
from repro.core.decision import (
    Definability,
    single_type_definability,
)
from repro.core.greedy import greedy_maximal_lower
from repro.core.upper import minimal_upper_approximation
from repro.errors import BudgetExceededError
from repro.observability import Trace
from repro.runtime.budget import Budget, resolve_budget
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.text_format import loads as _loads_schema
from repro.schemas.type_automaton import is_single_type
from repro.strings.kernels import _recharge
from repro.tree_automata.inclusion import edtd_includes
from repro.trees.tree import Tree
from repro.trees.xml_io import from_xml

__all__ = [
    "ApproximationResult",
    "BudgetUsage",
    "CompiledSchema",
    "DefinabilityReport",
    "InclusionResult",
    "Settings",
    "ValidationResult",
    "approximate_lower",
    "approximate_upper",
    "compile_schema",
    "configure",
    "configured",
    "current_settings",
    "definability",
    "schema_equivalent",
    "schema_includes",
    "validate",
]

#: Determinization strategies the facade accepts.
STRATEGIES = ("blind", "schema-guided")


# ----------------------------------------------------------------------
# Settings
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Settings:
    """Frozen bundle of facade-wide defaults.

    Every field is a *default*, never an override: an explicit per-call
    argument (``budget=``, ``cache=``, ``strategy=``) always wins, and an
    ambient ``with Budget(...):`` context still takes precedence over the
    budget limits here.  Resolution order for each call is therefore:
    explicit argument > ambient context manager > active :class:`Settings`
    (:func:`configured` extent, else the :func:`configure` process
    default) > built-in fallback.

    ``timeout`` / ``max_states`` / ``max_steps`` shape the fresh metering
    budget the facade creates when a call has neither an explicit nor an
    ambient budget; ``cache`` is the default artifact store argument;
    ``strategy`` the default determinization kernel.
    """

    cache: "_cache.CacheArg" = None
    timeout: float | None = None
    max_states: int | None = None
    max_steps: int | None = None
    strategy: str = "blind"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r} "
                f"(choose from {', '.join(map(repr, STRATEGIES))})"
            )

    def budget(self) -> Budget:
        """A fresh metering budget bounded by these settings."""
        return Budget(
            timeout=self.timeout,
            max_states=self.max_states,
            max_steps=self.max_steps,
        )


_FALLBACK_SETTINGS = Settings()

#: Dynamic-extent settings installed by :func:`configured`.
_AMBIENT_SETTINGS: "contextvars.ContextVar[Settings | None]" = contextvars.ContextVar(
    "repro-api-settings", default=None
)

#: Process-wide settings installed by :func:`configure`.
_DEFAULT_SETTINGS: Settings | None = None


def current_settings() -> Settings:
    """The active :class:`Settings`: the innermost :func:`configured`
    extent, else the :func:`configure` process default, else the built-in
    fallback (unlimited, blind, no cache)."""
    ambient = _AMBIENT_SETTINGS.get()
    if ambient is not None:
        return ambient
    if _DEFAULT_SETTINGS is not None:
        return _DEFAULT_SETTINGS
    return _FALLBACK_SETTINGS


@contextmanager
def configured(settings: Settings) -> Iterator[Settings]:
    """Install *settings* as the facade defaults for a dynamic extent.

    Nests and restores on exit; context-local, so concurrent asyncio
    tasks and threads can hold different settings.
    """
    token = _AMBIENT_SETTINGS.set(settings)
    try:
        yield settings
    finally:
        _AMBIENT_SETTINGS.reset(token)


def configure(settings: Settings | None = None, **kwargs: Any) -> Settings | None:
    """Install (or clear, with no arguments) the process-default
    :class:`Settings`.  Returns the previous default so callers can
    restore it.

    The modern form takes a frozen :class:`Settings`
    (``configure(Settings(timeout=5.0))``).  The legacy grab-bag keyword
    form (``configure(timeout=5.0, cache=store)``) still works — the
    keywords are folded onto the current default — but emits a
    :class:`DeprecationWarning`; new code should construct a
    :class:`Settings` explicitly or use :func:`configured`.
    """
    global _DEFAULT_SETTINGS
    if kwargs:
        warnings.warn(
            "configure(**kwargs) is deprecated; pass a frozen Settings "
            "instance (configure(Settings(...))) or use the "
            "configured(settings) context manager",
            DeprecationWarning,
            stacklevel=2,
        )
        base = settings
        if base is None:
            base = _DEFAULT_SETTINGS if _DEFAULT_SETTINGS is not None else Settings()
        settings = replace(base, **kwargs)
    previous = _DEFAULT_SETTINGS
    _DEFAULT_SETTINGS = settings
    return previous


# ----------------------------------------------------------------------
# Result objects
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BudgetUsage:
    """What one facade call charged against its (possibly shared) budget."""

    states: int
    steps: int
    elapsed_seconds: float

    def describe(self) -> str:
        return (
            f"{self.states} states, {self.steps} steps, "
            f"{self.elapsed_seconds:.3f}s"
        )


@dataclass(frozen=True)
class ApproximationResult:
    """An approximation schema plus the evidence of how it was built.

    ``direction`` is ``"upper"`` (unique minimal upper XSD-approximation,
    Theorem 3.2) or ``"lower"`` (greedy maximal-within-bound lower
    approximation, Theorem 4.12 made constructive).
    """

    schema: SingleTypeEDTD
    direction: str
    trace: Trace
    usage: BudgetUsage


@dataclass(frozen=True)
class InclusionResult:
    """Boolean verdict of an inclusion or equivalence check; truthy iff
    the inclusion holds."""

    verdict: bool
    trace: Trace
    usage: BudgetUsage

    def __bool__(self) -> bool:
        return self.verdict


@dataclass(frozen=True)
class ValidationResult:
    """Boolean verdict of document validation; truthy iff the document is
    in the schema's language."""

    valid: bool
    trace: Trace
    usage: BudgetUsage

    def __bool__(self) -> bool:
        return self.valid


@dataclass(frozen=True)
class DefinabilityReport:
    """Three-valued single-type definability verdict with budget evidence.

    Truthy iff the verdict is ``Definability.YES``.  On ``UNKNOWN`` the
    budget tripped: ``error`` carries the partial-progress counters and
    ``checkpoint``, when not ``None``, resumes the interrupted subset
    construction via ``definability(edtd, checkpoint=...)``.
    """

    verdict: Definability
    error: BudgetExceededError | None
    checkpoint: object | None
    trace: Trace
    usage: BudgetUsage

    def __bool__(self) -> bool:
        return self.verdict is Definability.YES


# ----------------------------------------------------------------------
# Shared context plumbing
# ----------------------------------------------------------------------

class _FacadeCall:
    """Resolve (budget, trace, cache) for one facade call and meter the
    deltas.

    An explicit or ambient budget/trace wins; otherwise a fresh metering
    budget (bounded by the active :class:`Settings`) and a fresh trace
    are created and — for the trace — installed for the call's dynamic
    extent so every nested construction span attaches to it.  An explicit
    ``cache=`` argument (a store or :data:`repro.cache.DISABLED`) is
    installed as the ambient store for the extent; ``None`` falls back to
    the active settings' cache, then ambient/env resolution.
    """

    __slots__ = (
        "budget",
        "trace",
        "cache",
        "_cache_arg",
        "_cache_cm",
        "_owned_trace",
        "_states0",
        "_steps0",
        "_elapsed0",
    )

    def __init__(
        self,
        name: str,
        budget: Budget | None,
        trace: Trace | None,
        cache: "_cache.CacheArg" = None,
    ) -> None:
        settings = current_settings()
        resolved = resolve_budget(budget)
        self.budget = resolved if resolved is not None else settings.budget()
        if trace is None:
            trace = _obs.current_trace()
        self._owned_trace = Trace(name) if trace is None else None
        self.trace = trace if trace is not None else self._owned_trace
        self._cache_arg = cache if cache is not None else settings.cache
        self._cache_cm: Any = None
        self.cache: "_cache.ArtifactCache | None" = None
        self._states0 = 0
        self._steps0 = 0
        self._elapsed0 = 0.0

    def __enter__(self) -> "_FacadeCall":
        if self._owned_trace is not None:
            self._owned_trace.__enter__()
        self._cache_cm = _cache.activation(self._cache_arg)
        self.cache = self._cache_cm.__enter__()
        self._states0 = self.budget.states
        self._steps0 = self.budget.steps
        self._elapsed0 = self.budget.elapsed
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._cache_cm is not None:
            self._cache_cm.__exit__(*exc_info)
            self._cache_cm = None
        if self._owned_trace is not None:
            self._owned_trace.__exit__(*exc_info)

    def usage(self) -> BudgetUsage:
        # Deltas, not totals: the budget may be a long-lived ambient one
        # shared across several facade calls.
        return BudgetUsage(
            states=self.budget.states - self._states0,
            steps=self.budget.steps - self._steps0,
            elapsed_seconds=self.budget.elapsed - self._elapsed0,
        )


# ----------------------------------------------------------------------
# Cache addressing
# ----------------------------------------------------------------------

def _whole_schema_digest(kind: str, edtd: EDTD, params: tuple[Any, ...]) -> str | None:
    """Disk address for a whole approximation result, or ``None`` when the
    input schema is uncacheable (repr collisions).  Handle methods use the
    precomputed :attr:`CompiledSchema._key` instead of re-walking the
    schema; this helper remains for one-shot callers."""
    key = _cache.schema_structural_key(edtd)
    if key is None:
        return None
    return _cache.artifact_digest(kind, (key, params))


def _load_cached_schema(
    store: "_cache.ArtifactCache", digest: str, budget: Budget
) -> SingleTypeEDTD | None:
    """A cached approximation schema, with its construction cost replayed
    against *budget* — or ``None`` on any kind of miss."""
    loaded = store.get(digest)
    if loaded is None:
        return None
    schema, states_cost, steps_cost = loaded
    if not isinstance(schema, SingleTypeEDTD):  # foreign/damaged payload
        return None
    _recharge(budget, states_cost, steps_cost)
    return schema


def _guide_cache_key(guide: Any) -> Any:
    """A structural fingerprint of a ``guide=`` argument for whole-schema
    digests: ``None`` for no guide, a schema/DFA structural key otherwise,
    or the string ``"uncacheable"`` (a value no real key collides with)
    when the guide has no sound fingerprint."""
    if guide is None:
        return None
    if isinstance(guide, EDTD):
        key = _cache.schema_structural_key(guide)
    else:
        from repro.strings.kernels import structural_key

        key = structural_key(guide)
    return "uncacheable" if key is None else key


# ----------------------------------------------------------------------
# The compile-once handle
# ----------------------------------------------------------------------

_ANON_IDS = itertools.count(1)


@dataclass(frozen=True, eq=False)
class CompiledSchema:
    """A compile-once, reuse-many handle on one schema.

    Produced by :func:`compile_schema`.  The handle is frozen — it never
    mutates the wrapped schema and exposes no setters — and carries the
    per-schema artifacts every call would otherwise recompute:

    * ``schema`` — the original EDTD, kept alive so the integer-coded
      validation tables of :mod:`repro.tree_automata.kernels` stay hot;
    * ``_reduced`` — the reduced schema (Proviso 2.3), computed once and
      fed to every construction and to the arena validation runner;
    * ``schema_id`` — a stable content address (structural fingerprint +
      strategy), the registry/service handle name; anonymous
      (``anon:N``) when the schema is structurally uncacheable;
    * ``_key`` — the structural fingerprint backing every whole-schema
      disk digest, so repeat approximation calls hash a tiny tuple
      instead of re-walking the schema;
    * ``strategy`` — the default determinization kernel for this handle;
    * the derived ancestor-string :attr:`guide` (lazy, memoized).

    Methods mirror the module-level facade functions and return the same
    frozen result objects with the same governed keyword surface.
    """

    schema: EDTD = field(repr=False)
    schema_id: str
    strategy: str
    _reduced: EDTD = field(repr=False)
    _key: Any = field(repr=False)
    _is_single_type: bool = field(repr=False)
    _cache: "_cache.CacheArg" = field(repr=False)
    _extras: dict = field(default_factory=dict, repr=False)

    # -- derived artifacts ---------------------------------------------

    @property
    def guide(self) -> Any:
        """The schema's ancestor-string guide DFA
        (:func:`repro.schemas.type_automaton.ancestor_guide` of the
        reduced schema), derived on first use and memoized on the
        handle."""
        dfa = self._extras.get("guide")
        if dfa is None:
            from repro.schemas.type_automaton import ancestor_guide

            dfa = ancestor_guide(self._reduced)
            self._extras["guide"] = dfa
        return dfa

    @property
    def is_single_type(self) -> bool:
        """Whether the wrapped schema already satisfies the single-type
        restriction (classified once at compile time)."""
        return self._is_single_type

    def _call_cache(self, cache: "_cache.CacheArg") -> "_cache.CacheArg":
        return cache if cache is not None else self._cache

    # -- operations ----------------------------------------------------

    def validate(
        self,
        document: "Tree | str",
        *,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
        cache: "_cache.CacheArg" = None,
    ) -> ValidationResult:
        """Validate *document* (a :class:`Tree` or an element-only XML
        fragment string) against the compiled schema.

        Runs on the reduced schema's hot arena tables.  The budget's
        deadline/cancellation is checked once before the run (validation
        itself charges nothing); *checkpoint* is accepted for
        keyword-surface uniformity but unused.
        """
        del checkpoint  # no resumable phase
        with _FacadeCall("validate", budget, trace, self._call_cache(cache)) as call:
            with _obs.construction_span(
                "validate", trace=call.trace, budget=call.budget
            ) as span:
                tree = from_xml(document) if isinstance(document, str) else document
                # Validation is linear: charge one step per node (after a
                # deadline/cancellation check), so per-request deadlines
                # and max_steps budgets — the service maps deadline_ms /
                # max_steps here — have deterministic trip points.
                call.budget.check()
                call.budget.tick(tree.size())
                valid = self._reduced.accepts(tree)
                if span is not None:
                    span.annotate(valid=valid, nodes=tree.size())
            return ValidationResult(valid=valid, trace=call.trace, usage=call.usage())

    def approximate_upper(
        self,
        *,
        minimize: bool = False,
        strategy: str | None = None,
        guide: Any = None,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
        cache: "_cache.CacheArg" = None,
    ) -> ApproximationResult:
        """Construction 3.1: the unique minimal upper XSD-approximation of
        the compiled schema's language (see :func:`approximate_upper`).

        ``strategy=None`` resolves to the handle's default.  With
        ``strategy="schema-guided"`` and no explicit guide, the schema is
        its own guide; the digest then reuses the handle's precomputed
        fingerprint, so nothing is re-hashed per call.
        """
        if strategy is None:
            strategy = self.strategy
        with _FacadeCall(
            "approximate-upper", budget, trace, self._call_cache(cache)
        ) as call:
            if strategy == "schema-guided" and guide is None:
                # Self-guided by default: the input's own ancestor-string
                # machine prunes subset states without changing the
                # language.  Resolving it before the cache key keeps
                # explicit `guide=edtd` and the default on the same
                # artifact.
                guide = self.schema
            digest = None
            if call.cache is not None and checkpoint is None and self._key is not None:
                if guide is None:
                    guide_key: Any = None
                elif guide is self.schema:
                    guide_key = self._key
                else:
                    guide_key = _guide_cache_key(guide)
                if guide_key != "uncacheable":
                    digest = _cache.artifact_digest(
                        "upper", (self._key, (bool(minimize), strategy, guide_key))
                    )
            if digest is not None:
                cached = _load_cached_schema(call.cache, digest, call.budget)
                if cached is not None:
                    return ApproximationResult(
                        schema=cached,
                        direction="upper",
                        trace=call.trace,
                        usage=call.usage(),
                    )
            states0, steps0 = call.budget.states, call.budget.steps
            schema = minimal_upper_approximation(
                self._reduced,
                minimize=minimize,
                strategy=strategy,
                guide=guide,
                budget=call.budget,
                checkpoint=checkpoint,
                trace=call.trace,
            )
            if digest is not None:
                call.cache.put(
                    digest,
                    schema,
                    call.budget.states - states0,
                    call.budget.steps - steps0,
                )
            return ApproximationResult(
                schema=schema, direction="upper", trace=call.trace, usage=call.usage()
            )

    def approximate_lower(
        self,
        *,
        max_size: int = 6,
        seed_schema: SingleTypeEDTD | None = None,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
        cache: "_cache.CacheArg" = None,
    ) -> ApproximationResult:
        """A greedy maximal-within-bound lower XSD-approximation of the
        compiled schema's language (the constructive side of Theorem
        4.12).  Cached whole on disk like :meth:`approximate_upper`; the
        key includes *max_size* and the seed schema's fingerprint."""
        with _FacadeCall(
            "approximate-lower", budget, trace, self._call_cache(cache)
        ) as call:
            digest = None
            if call.cache is not None and checkpoint is None and self._key is not None:
                seed_key: Any = None
                if seed_schema is not None:
                    seed_key = _cache.schema_structural_key(seed_schema)
                if seed_schema is None or seed_key is not None:
                    digest = _cache.artifact_digest(
                        "lower", (self._key, (max_size, seed_key))
                    )
            if digest is not None:
                cached = _load_cached_schema(call.cache, digest, call.budget)
                if cached is not None:
                    return ApproximationResult(
                        schema=cached,
                        direction="lower",
                        trace=call.trace,
                        usage=call.usage(),
                    )
            states0, steps0 = call.budget.states, call.budget.steps
            schema = greedy_maximal_lower(
                self.schema,
                max_size=max_size,
                seed_schema=seed_schema,
                budget=call.budget,
                checkpoint=checkpoint,
                trace=call.trace,
            )
            if digest is not None:
                call.cache.put(
                    digest,
                    schema,
                    call.budget.states - states0,
                    call.budget.steps - steps0,
                )
            return ApproximationResult(
                schema=schema, direction="lower", trace=call.trace, usage=call.usage()
            )

    def definability(
        self,
        *,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
        cache: "_cache.CacheArg" = None,
    ) -> DefinabilityReport:
        """Three-valued single-type definability of the compiled schema's
        language (EXPTIME-complete; degrades to ``UNKNOWN`` with a
        resumable checkpoint when the budget trips)."""
        with _FacadeCall(
            "definability", budget, trace, self._call_cache(cache)
        ) as call:
            result = single_type_definability(
                self.schema, budget=call.budget, checkpoint=checkpoint, trace=call.trace
            )
            return DefinabilityReport(
                verdict=result.verdict,
                error=result.error,
                checkpoint=result.checkpoint,
                trace=call.trace,
                usage=call.usage(),
            )

    def includes(
        self,
        sub: "EDTD | CompiledSchema",
        *,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
        cache: "_cache.CacheArg" = None,
    ) -> InclusionResult:
        """Decide ``L(sub) subseteq L(self)``.

        Dispatches on the compile-time classification of this handle:
        single-type schemas take the PTIME route of Lemma 3.3; general
        EDTDs take the exact EXPTIME tree-automata procedure (Theorem
        2.13).  *checkpoint* is accepted for keyword-surface uniformity
        but unused — neither route has a resumable phase.
        """
        del checkpoint  # no resumable phase
        if isinstance(sub, CompiledSchema):
            sub = sub.schema
        with _FacadeCall(
            "schema-includes", budget, trace, self._call_cache(cache)
        ) as call:
            with _obs.construction_span(
                "schema-includes", trace=call.trace, budget=call.budget
            ) as span:
                if self._is_single_type:
                    verdict = included_in_single_type(sub, self.schema)
                else:
                    verdict = edtd_includes(self.schema, sub, budget=call.budget)
                if span is not None:
                    span.annotate(included=verdict)
            return InclusionResult(
                verdict=verdict, trace=call.trace, usage=call.usage()
            )

    def equivalent(
        self,
        other: "EDTD | CompiledSchema",
        *,
        budget: Budget | None = None,
        checkpoint: Any = None,
        trace: Trace | None = None,
        cache: "_cache.CacheArg" = None,
    ) -> InclusionResult:
        """Decide language equivalence with *other* (two inclusion
        checks, each routed as in :meth:`includes`)."""
        first = self.includes(
            other, budget=budget, checkpoint=checkpoint, trace=trace, cache=cache
        )
        if not first.verdict:
            return first
        other_handle = other if isinstance(other, CompiledSchema) else _handle_for(other)
        second = other_handle.includes(
            self.schema,
            budget=budget,
            checkpoint=checkpoint,
            trace=first.trace,
            cache=cache,
        )
        return InclusionResult(
            verdict=second.verdict,
            trace=first.trace,
            usage=BudgetUsage(
                states=first.usage.states + second.usage.states,
                steps=first.usage.steps + second.usage.steps,
                elapsed_seconds=max(
                    first.usage.elapsed_seconds, second.usage.elapsed_seconds
                ),
            ),
        )


def _compile(
    schema: "EDTD | str", strategy: str, cache: "_cache.CacheArg"
) -> CompiledSchema:
    """The raw compile step behind :func:`compile_schema` (no facade)."""
    if isinstance(schema, str):
        schema = _loads_schema(schema)
    reduced = schema.reduced()
    key = _cache.schema_structural_key(schema)
    if key is not None:
        schema_id = _cache.artifact_digest("compiled-schema", (key, strategy))
        assert schema_id is not None
    else:
        # Structurally uncacheable (repr collisions): the handle still
        # amortizes tables and reduction, it just cannot be deduplicated
        # or disk-addressed.
        schema_id = f"anon:{next(_ANON_IDS)}"
    if reduced.types:
        # Warm the integer-coded validation tables now; they live in a
        # WeakKeyDictionary keyed by the reduced schema object, so the
        # handle keeping `reduced` alive is what keeps them hot.
        from repro.tree_automata.kernels import _tables_of

        _tables_of(reduced)
    return CompiledSchema(
        schema=schema,
        schema_id=schema_id,
        strategy=strategy,
        _reduced=reduced,
        _key=key,
        _is_single_type=is_single_type(schema),
        _cache=cache,
    )


def compile_schema(
    schema: "EDTD | str",
    *,
    strategy: str | None = None,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> CompiledSchema:
    """Compile *schema* (an EDTD, or its text-format source) into a frozen
    :class:`CompiledSchema` handle.

    Pays once for reduction, the structural fingerprint / content
    address, the single-type classification, and the integer-coded arena
    validation tables; every handle method then reuses them.  *strategy*
    (``None`` = the active :class:`Settings` default) becomes the
    handle's default determinization kernel, and *cache* its default
    artifact store argument.  *checkpoint* is accepted for
    keyword-surface uniformity but unused — compilation has no resumable
    phase.
    """
    del checkpoint  # no resumable phase
    if strategy is None:
        strategy = current_settings().strategy
    with _FacadeCall("compile-schema", budget, trace, cache) as call:
        with _obs.construction_span(
            "compile-schema", trace=call.trace, budget=call.budget
        ) as span:
            handle = _compile(schema, strategy, call._cache_arg)
            if span is not None:
                span.annotate(
                    schema_id=handle.schema_id,
                    types=len(handle.schema.types),
                    single_type=handle.is_single_type,
                )
            if _obs.ENABLED:
                _obs.METRICS.counter("api.compile_schema").inc()
    return handle


# ----------------------------------------------------------------------
# Free functions: thin wrappers over per-object handles
# ----------------------------------------------------------------------

#: Compile-once memo behind the free functions.  The handle lives on the
#: schema object itself under this attribute (a WeakKeyDictionary would
#: pin the schema forever: its value — the handle — holds a strong
#: reference back to the key), so schema and handle are collected
#: together.  A WeakSet tracks which schemas carry a memo so
#: :func:`clear_handles` can strip them.
_HANDLE_ATTR = "_repro_compiled_handle"
_HANDLE_LOCK = threading.Lock()
_MEMOIZED_SCHEMAS: "weakref.WeakSet[EDTD]" = weakref.WeakSet()


def _handle_for(schema: EDTD) -> CompiledSchema:
    """The memoized handle for *schema*: compiled at most once per schema
    object (per ambient strategy), concurrent first calls deduplicated
    under a lock."""
    strategy = current_settings().strategy
    handle = getattr(schema, _HANDLE_ATTR, None)
    if handle is not None and handle.strategy == strategy:
        return handle
    with _HANDLE_LOCK:
        handle = getattr(schema, _HANDLE_ATTR, None)
        if handle is None or handle.strategy != strategy:
            handle = _compile(schema, strategy, None)
            try:
                _MEMOIZED_SCHEMAS.add(schema)
                setattr(schema, _HANDLE_ATTR, handle)
            except (AttributeError, TypeError):
                # __slots__ / frozen / un-weakref-able schema: the memo
                # is rejected but the caller still gets a working
                # (uncached) handle.
                _obs.METRICS.counter("api.handle_memo_rejected").inc()
    return handle


def clear_handles() -> None:
    """Drop every memoized free-function handle (test isolation helper)."""
    with _HANDLE_LOCK:
        for schema in list(_MEMOIZED_SCHEMAS):
            schema.__dict__.pop(_HANDLE_ATTR, None)
        _MEMOIZED_SCHEMAS.clear()


def approximate_upper(
    edtd: EDTD,
    *,
    minimize: bool = False,
    strategy: str | None = None,
    guide: Any = None,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> ApproximationResult:
    """Construction 3.1: the unique minimal upper XSD-approximation of
    ``L(edtd)``, wrapped with trace and budget-usage evidence.

    *strategy* selects the determinization kernel (``"blind"`` or
    ``"schema-guided"``; ``None`` resolves the active :class:`Settings`
    default), *guide* the optional guiding schema (an EDTD or an
    ancestor-string DFA).  With ``strategy="schema-guided"`` and no
    explicit guide, the input is its own guide: its ancestor-string
    machine prunes the subset construction without changing the
    approximated language.

    Thin wrapper over :meth:`CompiledSchema.approximate_upper` on the
    per-object handle: structural fingerprints and whole-schema digests
    are computed once per schema object, not per call.  With a
    persistent store configured, the whole result schema is cached on
    disk keyed by that fingerprint (strategy and guide folded in, so
    blind and guided artifacts never collide): a warm repeat skips the
    subset construction entirely while replaying its recorded budget
    cost, so governance is identical warm or cold.
    """
    if strategy is None:
        strategy = current_settings().strategy
    return _handle_for(edtd).approximate_upper(
        minimize=minimize,
        strategy=strategy,
        guide=guide,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
        cache=cache,
    )


def approximate_lower(
    target: EDTD,
    *,
    max_size: int = 6,
    seed_schema: SingleTypeEDTD | None = None,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> ApproximationResult:
    """A greedy maximal-within-bound lower XSD-approximation of
    ``L(target)`` (the constructive side of Theorem 4.12).

    Thin wrapper over :meth:`CompiledSchema.approximate_lower`; cached
    whole on disk like :func:`approximate_upper` with *max_size* and the
    seed schema's fingerprint in the key.
    """
    return _handle_for(target).approximate_lower(
        max_size=max_size,
        seed_schema=seed_schema,
        budget=budget,
        checkpoint=checkpoint,
        trace=trace,
        cache=cache,
    )


def definability(
    edtd: EDTD,
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> DefinabilityReport:
    """Three-valued single-type definability of ``L(edtd)``
    (EXPTIME-complete; degrades to ``UNKNOWN`` with a resumable
    checkpoint when the budget trips).  Thin wrapper over
    :meth:`CompiledSchema.definability`."""
    return _handle_for(edtd).definability(
        budget=budget, checkpoint=checkpoint, trace=trace, cache=cache
    )


def schema_includes(
    sup: EDTD,
    sub: EDTD,
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> InclusionResult:
    """Decide ``L(sub) subseteq L(sup)``.

    Dispatches on the superset schema: single-type superset schemas take
    the PTIME route of Lemma 3.3; general EDTDs take the exact EXPTIME
    tree-automata procedure (Theorem 2.13).  Thin wrapper over
    :meth:`CompiledSchema.includes` on the superset's handle (the
    single-type classification is made once at compile time).

    *checkpoint* is accepted for keyword-surface uniformity but unused —
    neither inclusion route has a resumable phase.
    """
    return _handle_for(sup).includes(
        sub, budget=budget, checkpoint=checkpoint, trace=trace, cache=cache
    )


def schema_equivalent(
    left: EDTD,
    right: EDTD,
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> InclusionResult:
    """Decide ``L(left) == L(right)`` (two inclusion checks, each routed
    as in :func:`schema_includes`).  Thin wrapper over
    :meth:`CompiledSchema.equivalent`."""
    return _handle_for(left).equivalent(
        right, budget=budget, checkpoint=checkpoint, trace=trace, cache=cache
    )


def validate(
    schema: EDTD,
    document: "Tree | str",
    *,
    budget: Budget | None = None,
    checkpoint: Any = None,
    trace: Trace | None = None,
    cache: "_cache.CacheArg" = None,
) -> ValidationResult:
    """Validate *document* (a :class:`Tree` or an element-only XML
    fragment string) against *schema*.

    Thin wrapper over :meth:`CompiledSchema.validate` on the per-object
    handle, so repeat validations against the same schema object run on
    hot integer-coded tables.  *checkpoint* is accepted for
    keyword-surface uniformity but unused — validation has no resumable
    phase.
    """
    if not isinstance(schema, EDTD):
        # DTDs and other accepts()-bearing schema objects take the direct
        # route: handles are an EDTD-only amortization.
        del checkpoint  # no resumable phase
        with _FacadeCall("validate", budget, trace, cache) as call:
            with _obs.construction_span(
                "validate", trace=call.trace, budget=call.budget
            ) as span:
                tree = from_xml(document) if isinstance(document, str) else document
                valid = schema.accepts(tree)
                if span is not None:
                    span.annotate(valid=valid, nodes=tree.size())
            return ValidationResult(valid=valid, trace=call.trace, usage=call.usage())
    return _handle_for(schema).validate(
        document, budget=budget, checkpoint=checkpoint, trace=trace, cache=cache
    )
