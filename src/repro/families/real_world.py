"""Realistic schema fixtures (simplified shapes of well-known vocabularies).

The paper evaluates on worst-case families; these fixtures add document
shapes a schema engineer actually meets — useful for examples, benchmarks
and as regression anchors.  Each is a faithful *structural* skeleton
(element-only, as the paper's abstraction prescribes), not the full
standard.
"""

from __future__ import annotations

from repro.schemas.st_edtd import SingleTypeEDTD


def rss_feed() -> SingleTypeEDTD:
    """An RSS 2.0 skeleton: rss > channel > (title, link, item*),
    item > (title, link, pubDate?)."""
    return SingleTypeEDTD(
        alphabet={"rss", "channel", "title", "link", "item", "pubDate"},
        types={
            "t_rss", "t_channel", "t_ctitle", "t_clink",
            "t_item", "t_ititle", "t_ilink", "t_date",
        },
        rules={
            "t_rss": "t_channel",
            "t_channel": "t_ctitle, t_clink, t_item*",
            "t_item": "t_ititle, t_ilink, t_date?",
            "t_ctitle": "~",
            "t_clink": "~",
            "t_ititle": "~",
            "t_ilink": "~",
            "t_date": "~",
        },
        starts={"t_rss"},
        mu={
            "t_rss": "rss",
            "t_channel": "channel",
            "t_ctitle": "title",
            "t_clink": "link",
            "t_item": "item",
            "t_ititle": "title",
            "t_ilink": "link",
            "t_date": "pubDate",
        },
    )


def atom_feed() -> SingleTypeEDTD:
    """An Atom skeleton sharing labels with RSS where natural:
    feed > (title, link*, entry*), entry > (title, link, summary?)."""
    return SingleTypeEDTD(
        alphabet={"feed", "title", "link", "entry", "summary"},
        types={"t_feed", "t_ftitle", "t_flink", "t_entry", "t_etitle", "t_elink", "t_sum"},
        rules={
            "t_feed": "t_ftitle, t_flink*, t_entry*",
            "t_entry": "t_etitle, t_elink, t_sum?",
            "t_ftitle": "~",
            "t_flink": "~",
            "t_etitle": "~",
            "t_elink": "~",
            "t_sum": "~",
        },
        starts={"t_feed"},
        mu={
            "t_feed": "feed",
            "t_ftitle": "title",
            "t_flink": "link",
            "t_entry": "entry",
            "t_etitle": "title",
            "t_elink": "link",
            "t_sum": "summary",
        },
    )


def xhtml_fragment() -> SingleTypeEDTD:
    """A tiny XHTML-flavoured recursive skeleton: html > (head, body),
    head > title, body > (p | div)*, div > (p | div)*, p > em*.

    Recursive (div nesting) and with context-dependent titles is NOT
    needed — titles appear only under head, so this stays single-type.
    """
    return SingleTypeEDTD(
        alphabet={"html", "head", "title", "body", "p", "div", "em"},
        types={"t_html", "t_head", "t_title", "t_body", "t_p", "t_div", "t_em"},
        rules={
            "t_html": "t_head, t_body",
            "t_head": "t_title",
            "t_body": "(t_p | t_div)*",
            "t_div": "(t_p | t_div)*",
            "t_p": "t_em*",
            "t_title": "~",
            "t_em": "~",
        },
        starts={"t_html"},
        mu={
            "t_html": "html",
            "t_head": "head",
            "t_title": "title",
            "t_body": "body",
            "t_p": "p",
            "t_div": "div",
            "t_em": "em",
        },
    )


def purchase_orders_v1() -> SingleTypeEDTD:
    """Order feed, version 1: order > (customer, line+),
    line > (sku, qty)."""
    return SingleTypeEDTD(
        alphabet={"orders", "order", "customer", "line", "sku", "qty"},
        types={"t_os", "t_o", "t_c", "t_l", "t_s", "t_q"},
        rules={
            "t_os": "t_o*",
            "t_o": "t_c, t_l+",
            "t_l": "t_s, t_q",
            "t_c": "~",
            "t_s": "~",
            "t_q": "~",
        },
        starts={"t_os"},
        mu={
            "t_os": "orders",
            "t_o": "order",
            "t_c": "customer",
            "t_l": "line",
            "t_s": "sku",
            "t_q": "qty",
        },
    )


def purchase_orders_v2() -> SingleTypeEDTD:
    """Order feed, version 2: lines gain an optional discount; orders gain
    an optional priority flag before the customer."""
    return SingleTypeEDTD(
        alphabet={
            "orders", "order", "customer", "line", "sku", "qty",
            "discount", "priority",
        },
        types={"t_os", "t_o", "t_c", "t_l", "t_s", "t_q", "t_d", "t_p"},
        rules={
            "t_os": "t_o*",
            "t_o": "t_p?, t_c, t_l+",
            "t_l": "t_s, t_q, t_d?",
            "t_c": "~",
            "t_s": "~",
            "t_q": "~",
            "t_d": "~",
            "t_p": "~",
        },
        starts={"t_os"},
        mu={
            "t_os": "orders",
            "t_o": "order",
            "t_c": "customer",
            "t_l": "line",
            "t_s": "sku",
            "t_q": "qty",
            "t_d": "discount",
            "t_p": "priority",
        },
    )


ALL_FIXTURES = {
    "rss": rss_feed,
    "atom": atom_feed,
    "xhtml": xhtml_fragment,
    "orders-v1": purchase_orders_v1,
    "orders-v2": purchase_orders_v2,
}
