"""The paper's concrete schema families (examples and lower bounds).

Every lower-bound family of the paper is constructed here:

* :func:`example_2_6` — the running example EDTD with its type automaton;
* :func:`theorem_3_2_family` — unary ``(a+b)* a (a+b)^n`` trees whose
  minimal upper XSD-approximation needs ``Omega(2^n)`` types;
* :func:`theorem_3_6_family` — "at most n a's" / "at most n b's" whose
  union's approximation needs ``Omega(n^2)`` types;
* :func:`theorem_3_8_family` — prime-period unary counters whose
  intersection needs ``Omega(p1 p2)`` types;
* :func:`theorem_4_3_d1_d2` and :func:`theorem_4_3_xn` — the union with
  infinitely many maximal lower XSD-approximations ``X_n``;
* :func:`theorem_4_11_dtd` and :func:`theorem_4_11_xn` — the complement
  with infinitely many maximal lower XSD-approximations.

Where the source text of a family's rules is ambiguous, the reconstruction
follows the properties the proofs rely on (each is asserted in the tests).
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schemas.dtd import DTD
from repro.schemas.edtd import EDTD
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.builders import at_most_k_occurrences, nth_from_end_is
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.regex import EPSILON, Plus, Star, Sym, concat, union


# ----------------------------------------------------------------------
# Unary-tree schemas from string automata (Theorem 3.2's device)
# ----------------------------------------------------------------------

def unary_edtd_from_nfa(nfa: NFA) -> EDTD:
    """EDTD for the unary trees whose root-to-leaf word lies in ``L(nfa)``.

    Types are the states of the state-labeled version of *nfa* (each state
    then carries a unique label); a state's content model offers each
    successor state as the single child, plus the empty word when the state
    is final.  If *nfa* accepts the empty word it is ignored — there is no
    empty tree.

    On unary trees, EDTDs are NFAs and single-type EDTDs are DFAs
    (Theorem 3.2's proof); this is the lifting.
    """
    labeled = nfa.state_labeled().trim()
    if labeled.is_empty_language():
        raise SchemaError("cannot build a unary EDTD from an empty language")
    alphabet = labeled.alphabet

    # Types: non-initial-only states (initials with incoming copies already
    # split by state_labeled()); we simply take every state that has an
    # incoming label, i.e. label_of() is defined.
    types = set()
    label_of = {}
    for state in labeled.states:
        incoming = labeled.incoming_labels(state)
        if len(incoming) == 1:
            (label,) = incoming
            types.add(state)
            label_of[state] = label

    rules: dict = {}
    for state in types:
        parts = []
        for (src, _), dsts in labeled.transitions.items():
            if src != state:
                continue
            for dst in dsts:
                parts.append(Sym(dst))
        if state in labeled.finals:
            parts.append(EPSILON)
        rules[state] = union(*parts) if parts else "~"

    starts = set()
    for (src, _), dsts in labeled.transitions.items():
        if src in labeled.initials:
            starts |= {dst for dst in dsts if dst in types}
    return EDTD(
        alphabet=alphabet,
        types=types,
        rules=rules,
        starts=starts,
        mu=label_of,
    )


def unary_single_type_from_dfa(dfa: DFA) -> SingleTypeEDTD:
    """Single-type EDTD for the unary trees of a DFA's non-empty words."""
    edtd = unary_edtd_from_nfa(dfa.to_nfa())
    return SingleTypeEDTD.from_edtd(edtd.reduced())


# ----------------------------------------------------------------------
# Example 2.6
# ----------------------------------------------------------------------

def example_2_6() -> EDTD:
    """The paper's Example 2.6: two b-types under one a-type.

    ``Delta = {t1, t2a, t2b}``, start ``t1``, ``mu(t1) = a`` and
    ``mu(t2a) = mu(t2b) = b`` — not single-type, since both b-types occur
    in ``d(t1)``, which makes the type automaton a genuine NFA (the point
    of the example).
    """
    return EDTD(
        alphabet={"a", "b"},
        types={"t1", "t2a", "t2b"},
        rules={
            "t1": "t1 | t2a | t2b",
            "t2a": "t2b | ~",
            "t2b": "t1 | t2b | ~",
        },
        starts={"t1"},
        mu={"t1": "a", "t2a": "b", "t2b": "b"},
    )


# ----------------------------------------------------------------------
# Theorem 3.2: exponential blow-up family
# ----------------------------------------------------------------------

def theorem_3_2_family(n: int) -> EDTD:
    """``D_n``: unary trees whose word lies in ``(a+b)* a (a+b)^n``.

    ``|D_n| = O(n)`` but the minimal upper XSD-approximation has type-size
    ``Omega(2^n)`` (the NFA-to-DFA blow-up lifted to trees).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return unary_edtd_from_nfa(nth_from_end_is("a", "b", n))


# ----------------------------------------------------------------------
# Theorem 3.6: quadratic union family
# ----------------------------------------------------------------------

def theorem_3_6_family(n: int) -> tuple[SingleTypeEDTD, SingleTypeEDTD]:
    """``(D1^n, D2^n)``: unary trees with at most ``n`` a's, resp. at most
    ``n`` b's.  Each has O(n) types; the minimal upper XSD-approximation of
    the union needs ``Omega(n^2)`` types."""
    if n < 1:
        raise ValueError("n must be >= 1")
    d1 = unary_single_type_from_dfa(at_most_k_occurrences({"a", "b"}, "a", n))
    d2 = unary_single_type_from_dfa(at_most_k_occurrences({"a", "b"}, "b", n))
    return d1, d2


# ----------------------------------------------------------------------
# Theorem 3.8: quadratic intersection family
# ----------------------------------------------------------------------

def _primes_above(n: int, count: int) -> list[int]:
    primes: list[int] = []
    candidate = max(n + 1, 2)
    while len(primes) < count:
        if all(candidate % p for p in range(2, int(candidate ** 0.5) + 1)):
            primes.append(candidate)
        candidate += 1
    return primes


def _unary_period_dfa(period: int) -> DFA:
    """DFA over {a} accepting non-empty words of length divisible by
    *period*."""
    states = list(range(period))
    transitions = {(i, "a"): (i + 1) % period for i in states}
    # Words of positive length: split state 0 into entry/return.
    transitions[("init", "a")] = 1 % period
    all_states = states + ["init"]
    return DFA(all_states, {"a"}, transitions, "init", {0})


def theorem_3_8_family(n: int) -> tuple[SingleTypeEDTD, SingleTypeEDTD]:
    """``(D1^n, D2^n)``: unary a-chains of length divisible by ``p1``,
    resp. ``p2`` — the two smallest primes above ``n``.  The (exact)
    intersection needs ``Omega(p1 p2)`` types."""
    p1, p2 = _primes_above(n, 2)
    d1 = unary_single_type_from_dfa(_unary_period_dfa(p1))
    d2 = unary_single_type_from_dfa(_unary_period_dfa(p2))
    return d1, d2


# ----------------------------------------------------------------------
# Theorem 4.3: infinitely many maximal lower approximations of a union
# ----------------------------------------------------------------------

def theorem_4_3_d1_d2() -> tuple[SingleTypeEDTD, SingleTypeEDTD]:
    """The union instance of Theorem 4.3.

    ``D1``: unary trees ``a^m(b)`` (an a-chain ending in one b).
    ``D2``: all-a trees where every node has zero, one or two children.
    """
    d1 = SingleTypeEDTD(
        alphabet={"a", "b"},
        types={"ta", "tb"},
        rules={"ta": "ta | tb", "tb": "~"},
        starts={"ta"},
        mu={"ta": "a", "tb": "b"},
    )
    d2 = SingleTypeEDTD(
        alphabet={"a", "b"},
        types={"sa"},
        rules={"sa": "sa | (sa, sa) | ~"},
        starts={"sa"},
        mu={"sa": "a"},
    )
    return d1, d2


def theorem_4_3_xn(n: int) -> SingleTypeEDTD:
    """The maximal lower XSD-approximation ``X_n`` of Theorem 4.3.

    ``L(X_n) = {a^m(b) : m <= n}  |  {all-a trees of L(D2) that do not
    branch above depth n}``; the intersection with ``L(D1)`` is
    ``{a^m(b) : m <= n}``, so the ``X_n`` are pairwise distinct.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    types = {f"p{i}" for i in range(1, n + 1)} | {"deep", "tb"}
    mu = {f"p{i}": "a" for i in range(1, n + 1)}
    mu.update({"deep": "a", "tb": "b"})
    rules: dict = {"tb": "~", "deep": "deep | (deep, deep) | ~"}
    for i in range(1, n):
        rules[f"p{i}"] = f"p{i + 1} | tb | ~"
    rules[f"p{n}"] = "deep | (deep, deep) | tb | ~"
    return SingleTypeEDTD(
        alphabet={"a", "b"},
        types=types,
        rules=rules,
        starts={"p1"},
        mu=mu,
    )


# ----------------------------------------------------------------------
# Theorem 4.11: infinitely many maximal lower approximations of a complement
# ----------------------------------------------------------------------

def theorem_4_11_dtd() -> DTD:
    """The DTD ``a -> a + epsilon`` (unary a-chains) of Theorem 4.11; its
    complement is "some node has at least two children"."""
    return DTD(alphabet={"a"}, rules={"a": "a | ~"}, starts={"a"})


def theorem_4_11_xn(n: int) -> SingleTypeEDTD:
    """The maximal lower XSD-approximation ``X_n`` of the complement
    (Theorem 4.11): trees where every node of depth < n has at least one
    child and every node of depth exactly n has at least two.

    The tree ``t_m`` (a chain ending in ``a(a, a)``) of depth ``m`` lies in
    ``L(X_n)`` iff ``m = n + 1``, so the ``X_n`` are pairwise distinct.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    types = {f"x{i}" for i in range(1, n + 2)}
    mu = {t: "a" for t in types}
    rules: dict = {}
    for i in range(1, n):
        rules[f"x{i}"] = Plus(Sym(f"x{i + 1}"))
    rules[f"x{n}"] = concat(Sym(f"x{n + 1}"), Plus(Sym(f"x{n + 1}")))
    rules[f"x{n + 1}"] = Star(Sym(f"x{n + 1}"))
    return SingleTypeEDTD(
        alphabet={"a"},
        types=types,
        rules=rules,
        starts={"x1"},
        mu=mu,
    )
