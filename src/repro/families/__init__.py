"""The paper's hard-instance families and random schema generators."""

from repro.families.hard import (
    example_2_6,
    theorem_3_2_family,
    theorem_3_6_family,
    theorem_3_8_family,
    theorem_4_3_d1_d2,
    theorem_4_3_xn,
    theorem_4_11_dtd,
    theorem_4_11_xn,
    unary_edtd_from_nfa,
    unary_single_type_from_dfa,
)
from repro.families.real_world import (
    ALL_FIXTURES,
    atom_feed,
    purchase_orders_v1,
    purchase_orders_v2,
    rss_feed,
    xhtml_fragment,
)
from repro.families.random_schemas import (
    random_edtd,
    random_pair,
    random_single_type_edtd,
)

__all__ = [
    "ALL_FIXTURES",
    "atom_feed",
    "example_2_6",
    "purchase_orders_v1",
    "purchase_orders_v2",
    "rss_feed",
    "xhtml_fragment",
    "random_edtd",
    "random_pair",
    "random_single_type_edtd",
    "theorem_3_2_family",
    "theorem_3_6_family",
    "theorem_3_8_family",
    "theorem_4_3_d1_d2",
    "theorem_4_3_xn",
    "theorem_4_11_dtd",
    "theorem_4_11_xn",
    "unary_edtd_from_nfa",
    "unary_single_type_from_dfa",
]
