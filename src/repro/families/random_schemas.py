"""Seeded random schema generators for scaling benchmarks and fuzz tests.

The paper evaluates only worst-case families; the random generators add an
average-case axis.  All generators are deterministic given the
``random.Random`` instance, so benchmark rows are reproducible.
"""

from __future__ import annotations

import random

from repro.schemas.edtd import EDTD
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.regex import EPSILON, Opt, Plus, Regex, Star, Sym, concat, union


def _random_content(
    rng: random.Random,
    children: list[object],
    allow_empty: bool,
) -> Regex:
    """A small random regex over the (distinct-label) candidate children."""
    if not children:
        return EPSILON
    rng.shuffle(children)
    used = children[: rng.randint(1, len(children))]
    parts: list[Regex] = []
    for child in used:
        atom: Regex = Sym(child)
        roll = rng.random()
        if roll < 0.25:
            atom = Star(atom)
        elif roll < 0.40:
            atom = Plus(atom)
        elif roll < 0.60:
            atom = Opt(atom)
        parts.append(atom)
    if rng.random() < 0.5 and len(parts) > 1:
        half = len(parts) // 2
        expr: Regex = union(concat(*parts[:half]), concat(*parts[half:]))
    else:
        expr = concat(*parts)
    if allow_empty:
        expr = union(expr, EPSILON)
    return expr


def random_single_type_edtd(
    rng: random.Random,
    num_labels: int = 4,
    num_types: int = 6,
    recursion: float = 0.3,
) -> SingleTypeEDTD:
    """A random reduced single-type EDTD.

    Types are layered so the schema is productive; with probability
    *recursion* per content model a back-edge to an earlier layer is added
    (producing recursive, unbounded-depth schemas).  Single-typedness is
    enforced by letting each content model use at most one type per label.
    """
    labels = [f"l{i}" for i in range(num_labels)]
    types = [f"t{i}" for i in range(num_types)]
    mu = {t: labels[i % num_labels] for i, t in enumerate(types)}
    rules: dict = {}
    for index, type_ in enumerate(types):
        later = types[index + 1:]
        # one candidate child per label, preferring later types (acyclic base)
        candidates: dict[str, str] = {}
        for other in later:
            candidates.setdefault(mu[other], other)
        if later and rng.random() < recursion:
            back = rng.choice(types[: index + 1])
            candidates[mu[back]] = back
        allow_empty = not later or rng.random() < 0.7
        rules[type_] = _random_content(rng, list(candidates.values()), allow_empty)
    start = types[0]
    schema = SingleTypeEDTD(
        alphabet=set(labels),
        types=set(types),
        rules=rules,
        starts={start},
        mu=mu,
    ).reduced()
    if not schema.types:
        # Extremely unlikely (start types always allow empty completion),
        # but fall back to a trivial non-empty schema.
        return SingleTypeEDTD(
            alphabet=set(labels),
            types={"t0"},
            rules={"t0": "~"},
            starts={"t0"},
            mu={"t0": labels[0]},
        )
    return schema


def random_edtd(
    rng: random.Random,
    num_labels: int = 3,
    num_types: int = 6,
    recursion: float = 0.3,
) -> EDTD:
    """A random reduced EDTD, usually *not* single-type: content models may
    use several types with the same label."""
    labels = [f"l{i}" for i in range(num_labels)]
    types = [f"t{i}" for i in range(num_types)]
    mu = {t: rng.choice(labels) for t in types}
    mu[types[0]] = labels[0]
    rules: dict = {}
    for index, type_ in enumerate(types):
        later = list(types[index + 1:])
        if later and rng.random() < recursion:
            later.append(rng.choice(types[: index + 1]))
        allow_empty = not later or rng.random() < 0.7
        rules[type_] = _random_content(rng, later, allow_empty)
    starts = {types[0]}
    if num_types > 1 and rng.random() < 0.5:
        starts.add(rng.choice(types[1:]))
    schema = EDTD(
        alphabet=set(labels),
        types=set(types),
        rules=rules,
        starts=starts,
        mu=mu,
    ).reduced()
    if not schema.types:
        return EDTD(
            alphabet=set(labels),
            types={"t0"},
            rules={"t0": "~"},
            starts={"t0"},
            mu={"t0": labels[0]},
        )
    return schema


def random_pair(
    rng: random.Random,
    num_labels: int = 4,
    num_types: int = 6,
) -> tuple[SingleTypeEDTD, SingleTypeEDTD]:
    """Two random single-type EDTDs over a *shared* alphabet (so their
    union/difference/intersection are non-trivial)."""
    left = random_single_type_edtd(rng, num_labels, num_types)
    right = random_single_type_edtd(rng, num_labels, num_types)
    return left, right
