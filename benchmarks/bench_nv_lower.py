"""EXP-4.8 — the unique maximal lower approximation fixing one disjunct.

Paper claims (Lemma 4.6, Theorem 4.8): ``nv(D2, D1)`` is single-type
definable and computable in polynomial time; ``L(D1) | nv(D2, D1)`` is the
unique maximal lower XSD-approximation of the union containing ``L(D1)``.

Reproduction: run the construction on the Theorem 4.3 instance and on
random stEDTD pairs; verify the lower/containment properties and the
maximality verdict; record sizes and times.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.decision import (
    Maximality,
    is_lower_approximation,
    is_maximal_lower_approximation,
)
from repro.core.lower import maximal_lower_union, non_violating
from repro.families.hard import theorem_4_3_d1_d2
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.inclusion import included_in_single_type
from repro.schemas.ops import edtd_union

EXPERIMENT = "EXP-4.8  maximal lower approximation L(D1) | nv(D2, D1)"
NOTE = "polynomial construction; contains D1; maximal within search bound"


def test_theorem_4_3_instance(record, benchmark):
    d1, d2 = theorem_4_3_d1_d2()
    union = edtd_union(d1, d2)
    lower, seconds = run_timed(benchmark, maximal_lower_union, d1, d2)
    assert included_in_single_type(d1, lower)
    assert is_lower_approximation(lower, union)
    verdict = is_maximal_lower_approximation(lower, union, max_size=5)
    assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND
    record(
        EXPERIMENT,
        {
            "pair": "Theorem 4.3",
            "types_d1": len(d1.types),
            "types_d2": len(d2.types),
            "nv_types": len(non_violating(d2, d1).types),
            "lower_types": len(lower.types),
            "construct_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_pairs(seed, record, benchmark):
    rng = random.Random(4800 + seed)
    d1 = random_single_type_edtd(rng, num_labels=3, num_types=5)
    d2 = random_single_type_edtd(rng, num_labels=3, num_types=5)
    union = edtd_union(d1, d2)
    lower, seconds = run_timed(benchmark, maximal_lower_union, d1, d2)
    assert included_in_single_type(d1, lower)
    assert is_lower_approximation(lower, union)
    record(
        EXPERIMENT,
        {
            "pair": f"random-{seed}",
            "types_d1": len(d1.types),
            "types_d2": len(d2.types),
            "nv_types": len(non_violating(d2, d1).types),
            "lower_types": len(lower.types),
            "construct_s": f"{seconds:.4f}",
        },
    )
