"""EXP-3.9 — complement: minimal upper approximation in polynomial time.

Paper claim (Theorem 3.9): for an stEDTD D, the minimal upper
XSD-approximation of ``T_Sigma - L(D)`` is unique and computable in time
polynomial in |D| — the complement EDTD's type automaton only reaches
subsets of size <= 2.

Reproduction: sweep random stEDTDs of growing size; record (a) the size of
the complement EDTD (linear in |Sigma||D|), (b) the maximal subset size
during determinization (must be <= 2), (c) output sizes and times.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import upper_complement
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.ops import complement_edtd
from repro.schemas.type_automaton import type_automaton
from repro.strings.determinize import determinize

EXPERIMENT = "EXP-3.9  polynomial complement approximation"
NOTE = "subset sizes during determinization stay <= 2 (the paper's argument)"


@pytest.mark.parametrize("num_types", [3, 5, 8, 12])
def test_complement_sweep(num_types, record, benchmark):
    schema = random_single_type_edtd(
        random.Random(900 + num_types), num_labels=3, num_types=num_types
    )
    upper, seconds = run_timed(benchmark, upper_complement, schema)
    comp = complement_edtd(schema).reduced()
    subset_dfa = determinize(type_automaton(comp))
    max_subset = max(len(s) for s in subset_dfa.states)
    assert max_subset <= 2
    record(
        EXPERIMENT,
        {
            "input_types": len(schema.types),
            "input_size": schema.size(),
            "complement_edtd_size": comp.size(),
            "max_subset": max_subset,
            "upper_types": upper.type_size(),
            "construct_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )
