"""EXP-MIN — polynomial minimization of single-type EDTDs ([20]).

Paper claim ("Contributions"): minimizing the outputs of the approximation
algorithms costs polynomial time, yielding optimal representations of
optimal approximations.

Reproduction: minimize the (padded) outputs of Construction 3.1 on
random inputs; record type counts before/after and times.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import minimal_upper_approximation, upper_union
from repro.families.random_schemas import random_edtd, random_single_type_edtd
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.minimize import minimize_single_type

EXPERIMENT = "EXP-MIN  PTIME minimization of approximation outputs"
NOTE = "language preserved; type counts never increase"


@pytest.mark.parametrize("num_types", [4, 6, 8, 10])
def test_minimize_upper_outputs(num_types, record, benchmark):
    edtd = random_edtd(random.Random(660 + num_types), num_labels=3, num_types=num_types)
    upper = minimal_upper_approximation(edtd)
    minimal, seconds = run_timed(benchmark, minimize_single_type, upper)
    assert single_type_equivalent(minimal, upper)
    assert len(minimal.types) <= len(upper.types)
    record(
        EXPERIMENT,
        {
            "source": f"upper(random-{num_types})",
            "before_types": len(upper.types),
            "after_types": len(minimal.types),
            "minimize_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


def test_minimize_union_output(record, benchmark):
    rng = random.Random(661)
    d1 = random_single_type_edtd(rng, num_labels=3, num_types=6)
    d2 = random_single_type_edtd(rng, num_labels=3, num_types=6)
    upper = upper_union(d1, d2)
    minimal, seconds = run_timed(benchmark, minimize_single_type, upper)
    assert single_type_equivalent(minimal, upper)
    record(
        EXPERIMENT,
        {
            "source": "upper_union(random)",
            "before_types": len(upper.types),
            "after_types": len(minimal.types),
            "minimize_s": f"{seconds:.4f}",
        },
    )
