"""EXP-4.3 — infinitely many maximal lower approximations of a union.

Paper claim (Theorem 4.3): the union instance D1 = {a^m(b)},
D2 = {<=2-ary all-a trees} admits the pairwise-distinct maximal lower
XSD-approximations X_1, X_2, ... .

Reproduction: for each n, verify X_n is (i) a lower approximation, (ii)
distinct from all smaller X_k (witness a^n(b)), (iii) not improvable by
any tree up to the search bound; record the verification costs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.core.decision import (
    Maximality,
    is_lower_approximation,
    is_maximal_lower_approximation,
)
from repro.families.hard import theorem_4_3_d1_d2, theorem_4_3_xn
from repro.schemas.ops import edtd_union
from repro.trees.tree import unary_tree

EXPERIMENT = "EXP-4.3  infinitely many maximal lower approximations (union)"
NOTE = "each X_n maximal within the bound; distinguished by a^n(b)"


@pytest.mark.parametrize("n", [1, 2, 3])
def test_xn_family(n, record, benchmark):
    d1, d2 = theorem_4_3_d1_d2()
    union = edtd_union(d1, d2)
    xn = theorem_4_3_xn(n)
    assert is_lower_approximation(xn, union)

    def check():
        return is_maximal_lower_approximation(xn, union, max_size=5)

    verdict, seconds = run_timed(benchmark, check)
    assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND
    distinguisher = unary_tree("a" * n + "b")
    assert xn.accepts(distinguisher)
    assert n == 0 or not theorem_4_3_xn(n + 1).accepts(unary_tree("a" * (n + 2) + "b"))
    record(
        EXPERIMENT,
        {
            "n": n,
            "xn_types": len(xn.types),
            "verdict": verdict.outcome.name,
            "distinguisher": str(distinguisher),
            "check_s": f"{seconds:.3f}",
        },
        note=NOTE,
    )
