"""EXP-4.12 — constructive maximal lower approximations (extension).

Theorem 4.12 proves existence of maximal lower XSD-approximations for
depth-bounded languages non-constructively (Zorn's lemma).  This bench runs
the executable companion: greedy absorption of member trees with exact
per-witness closure checks.  Different absorption orders reach *different*
maximal approximations — the non-uniqueness of Theorem 4.3, demonstrated
constructively.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.decision import Maximality, is_maximal_lower_approximation
from repro.core.greedy import greedy_maximal_lower
from repro.families.hard import theorem_4_3_d1_d2
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.ops import edtd_union

EXPERIMENT = "EXP-4.12  greedy maximal lower approximations (constructive)"
NOTE = "different orders -> different maxima (Theorem 4.3's non-uniqueness)"

_RESULTS: dict[str, object] = {}


@pytest.mark.parametrize("order", ["size-lex", "shuffle-5", "shuffle-9"])
def test_greedy_orders(order, record, benchmark):
    d1, d2 = theorem_4_3_d1_d2()
    union = edtd_union(d1, d2)
    rng = None
    if order.startswith("shuffle"):
        rng = random.Random(int(order.split("-")[1]))

    def build():
        return greedy_maximal_lower(union, max_size=4, rng=rng)

    result, seconds = run_timed(benchmark, build)
    verdict = is_maximal_lower_approximation(result, union, max_size=4)
    assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND
    _RESULTS[order] = result
    record(
        EXPERIMENT,
        {
            "order": order,
            "result_types": len(result.types),
            "verdict": verdict.outcome.name,
            "construct_s": f"{seconds:.3f}",
        },
        note=NOTE,
    )


def test_orders_reach_distinct_maxima(record, benchmark):
    def compare():
        keys = sorted(_RESULTS)
        distinct = 0
        for i, left in enumerate(keys):
            for right in keys[i + 1:]:
                if not single_type_equivalent(_RESULTS[left], _RESULTS[right]):
                    distinct += 1
        return distinct

    distinct, seconds = run_timed(benchmark, compare)
    assert distinct >= 1
    record(
        EXPERIMENT,
        {
            "order": "pairwise-distinct",
            "result_types": f"{distinct} differing pairs",
            "verdict": "NON-UNIQUE",
            "construct_s": f"{seconds:.3f}",
        },
    )
