"""EXP-3.10 — difference: minimal upper approximation in polynomial time.

Paper claim (Theorem 3.10): the minimal upper XSD-approximation of
``L(D1) - L(D2)`` is computable in time polynomial in |D1| + |D2|.

Reproduction: sweep random stEDTD pairs; record the difference EDTD's
size (polynomial), the maximal subset size during determinization (<= 2),
and construction times.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import upper_difference
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.ops import difference_edtd
from repro.schemas.type_automaton import type_automaton
from repro.strings.determinize import determinize

EXPERIMENT = "EXP-3.10  polynomial difference approximation"
NOTE = "difference-EDTD size polynomial; determinization subsets <= 2"


@pytest.mark.parametrize("num_types", [3, 5, 8, 10])
def test_difference_sweep(num_types, record, benchmark):
    rng = random.Random(1000 + num_types)
    d1 = random_single_type_edtd(rng, num_labels=3, num_types=num_types)
    d2 = random_single_type_edtd(rng, num_labels=3, num_types=num_types)
    upper, seconds = run_timed(benchmark, upper_difference, d1, d2)
    diff = difference_edtd(d1, d2).reduced()
    if diff.types:
        subset_dfa = determinize(type_automaton(diff))
        max_subset = max(len(s) for s in subset_dfa.states)
    else:
        max_subset = 0
    assert max_subset <= 2
    record(
        EXPERIMENT,
        {
            "types_d1": len(d1.types),
            "types_d2": len(d2.types),
            "diff_edtd_size": diff.size(),
            "max_subset": max_subset,
            "upper_types": upper.type_size(),
            "construct_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )
