"""EXP-3.6a — union of two XSDs: minimal upper approximation in
O(|D1| |D2|).

Paper claim (Theorem 3.6): the minimal upper XSD-approximation of
``L(D1) | L(D2)`` is unique and computable in time O(|D1||D2|); its type
size is bounded by the product of the inputs' type sizes (plus the inputs).

Reproduction: sweep random stEDTD pairs of growing size; record output
type-size against the product bound and verify the upper-approximation
property for every pair.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.decision import is_upper_approximation
from repro.core.upper import upper_union
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.inclusion import included_in_single_type
from repro.schemas.ops import edtd_union

EXPERIMENT = "EXP-3.6a  upper approximation of unions (O(|D1||D2|))"
NOTE = "output type-size vs the product bound (|D1|+1)(|D2|+1)"


@pytest.mark.parametrize("num_types", [3, 5, 7, 9, 12])
def test_union_sweep(num_types, record, benchmark):
    rng = random.Random(num_types * 7)
    d1 = random_single_type_edtd(rng, num_labels=3, num_types=num_types)
    d2 = random_single_type_edtd(rng, num_labels=3, num_types=num_types)
    upper, seconds = run_timed(benchmark, upper_union, d1, d2)
    union = edtd_union(d1, d2)
    assert is_upper_approximation(upper, union)
    assert included_in_single_type(d1, upper)
    assert included_in_single_type(d2, upper)
    bound = (len(d1.types) + 1) * (len(d2.types) + 1)
    assert upper.type_size() <= bound
    record(
        EXPERIMENT,
        {
            "types_d1": len(d1.types),
            "types_d2": len(d2.types),
            "upper_types": upper.type_size(),
            "product_bound": bound,
            "construct_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )
