"""EXP-SERVICE — hot-handle throughput of the validation service.

Drives the asyncio TCP service of :mod:`repro.service` end to end with
concurrent newline-delimited-JSON clients and compares two ways of
validating the same documents against the same schema:

* **hot** — the schema is registered once; every request addresses the
  compiled handle by ``schema_id`` (the compile-once lifecycle the
  handle API exists for);
* **cold** — every request carries the schema source inline with
  ``reuse: false``, so the service compiles (parse, reduce, fingerprint,
  tables) from scratch per request: the per-call recompilation baseline
  of the pre-handle facade.

Both phases run the same client count and report client-side latency
percentiles (the METRICS histograms keep aggregates, not samples) plus
throughput; the hot path must beat the cold path by >= 10x at full
scale.  A third phase sends deliberately starved budgets and counts the
three-valued ``unknown`` verdicts — budget trips degrade, they do not
error or kill connections.

Results land in ``BENCH_service.json`` (override with
``REPRO_BENCH_SERVICE_JSON``).  Set ``REPRO_BENCH_SMOKE=1`` for the CI
slice (fewer clients and requests, a loosened >= 2x floor — shared
runners make tight ratios flaky).

Run the full benchmark with::

    REPRO_BENCH_JSON=none PYTHONPATH=src \
        python -m pytest benchmarks/bench_service.py --benchmark-disable -q
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from benchmarks.conftest import record_bench, record_row
from repro import observability as _obs
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.text_format import dumps
from repro.service import ValidationService

EXPERIMENT = "EXP-SERVICE  hot-handle vs per-request recompilation"
NOTE = "in-process asyncio TCP server; client-side latencies; smoke slice loosens the floor"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in ("1", "true", "yes")

CONCURRENCY = 8 if SMOKE else 32
HOT_REQUESTS = 25 if SMOKE else 150  # per client
COLD_REQUESTS = 3 if SMOKE else 8  # per client: each one compiles
SCHEMA_WIDTH = 8 if SMOKE else 24
SPEEDUP_FLOOR = 2.0 if SMOKE else 10.0

_SERVICE_JSON = os.environ.get("REPRO_BENCH_SERVICE_JSON", "BENCH_service.json")

pytestmark = pytest.mark.ungoverned  # the service budgets per request


def _bench_schema(width: int) -> SingleTypeEDTD:
    """root(item*), item = the fixed field sequence f0..f{width-1} — wide
    enough that compilation dominates any single hot validation."""
    fields = [f"f{i}" for i in range(width)]
    mu = {"r": "root", "i": "item"}
    rules = {"r": "i*", "i": ", ".join(f"t{i}" for i in range(width))}
    for i, field in enumerate(fields):
        mu[f"t{i}"] = field
    return SingleTypeEDTD(
        alphabet={"root", "item", *fields},
        types=set(mu),
        rules=rules,
        starts={"r"},
        mu=mu,
    )


def _bench_document(width: int, items: int = 2) -> str:
    item = "<item>" + "".join(f"<f{i}/>" for i in range(width)) + "</item>"
    return "<root>" + item * items + "</root>"


async def _client(port: int, payloads: list[dict]) -> tuple[list[float], list[dict]]:
    """One connection sending *payloads* sequentially; returns per-request
    client-side latencies (ms) and the decoded responses."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    latencies: list[float] = []
    responses: list[dict] = []
    try:
        for payload in payloads:
            line = (json.dumps(payload) + "\n").encode()
            started = time.perf_counter()
            writer.write(line)
            await writer.drain()
            raw = await reader.readline()
            latencies.append((time.perf_counter() - started) * 1000.0)
            responses.append(json.loads(raw))
    finally:
        writer.close()
        await writer.wait_closed()
    return latencies, responses


async def _drive(service: ValidationService, per_client: list[list[dict]]):
    """All clients concurrently against a fresh listener; returns
    (wall_seconds, latencies, responses)."""
    server = await service.start(port=0)
    port = server.sockets[0].getsockname()[1]
    try:
        started = time.perf_counter()
        outcomes = await asyncio.gather(
            *(_client(port, payloads) for payloads in per_client)
        )
        wall = time.perf_counter() - started
    finally:
        server.close()
        await server.wait_closed()
    latencies = [ms for lats, _ in outcomes for ms in lats]
    responses = [response for _, rs in outcomes for response in rs]
    return wall, latencies, responses


def _percentile(sorted_ms: list[float], q: float) -> float:
    return sorted_ms[min(len(sorted_ms) - 1, int(q * (len(sorted_ms) - 1) + 0.5))]


def _phase_row(phase: str, wall: float, latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    row = {
        "phase": phase,
        "requests": len(latencies),
        "concurrency": CONCURRENCY,
        "throughput_rps": len(latencies) / wall if wall > 0 else float("inf"),
        "p50_ms": _percentile(ordered, 0.50),
        "p99_ms": _percentile(ordered, 0.99),
        "max_ms": ordered[-1],
    }
    record_bench(f"service.{phase}", n=CONCURRENCY, seconds=wall, **{
        k: v for k, v in row.items() if k not in ("phase",)
    })
    return row


_SUMMARY: dict = {"schema": 1, "smoke": SMOKE, "phases": [], "budget_trips": None}


def _write_summary() -> None:
    if _SERVICE_JSON.strip().lower() in ("", "0", "none", "off"):
        return
    with open(os.path.abspath(_SERVICE_JSON), "w") as handle:
        json.dump(_SUMMARY, handle, indent=2, default=str)
        handle.write("\n")


def test_hot_handle_beats_per_request_recompilation():
    schema_text = dumps(_bench_schema(SCHEMA_WIDTH))
    document = _bench_document(SCHEMA_WIDTH)

    async def scenario():
        service = ValidationService(capacity=16)
        info = await service.register_schema(schema_text)
        hot_payload = {
            "op": "validate",
            "schema_id": info["schema_id"],
            "document": document,
        }
        cold_payload = {
            "op": "validate",
            "schema": schema_text,
            "reuse": False,
            "document": document,
        }
        # Warm-up: touch both code paths once before timing.
        await service.validate(info["schema_id"], document)
        hot = await _drive(
            service, [[dict(hot_payload)] * HOT_REQUESTS] * CONCURRENCY
        )
        cold = await _drive(
            service, [[dict(cold_payload)] * COLD_REQUESTS] * CONCURRENCY
        )
        return hot, cold, service.registry.stats()

    (hot_wall, hot_lat, hot_resp), (cold_wall, cold_lat, cold_resp), stats = (
        asyncio.run(scenario())
    )
    for response in hot_resp + cold_resp:
        assert response["ok"], response
        assert response["result"]["verdict"] == "valid", response

    hot_row = _phase_row("hot", hot_wall, hot_lat)
    cold_row = _phase_row("cold", cold_wall, cold_lat)
    speedup = hot_row["throughput_rps"] / cold_row["throughput_rps"]
    for row in (hot_row, cold_row):
        record_row(
            EXPERIMENT,
            {**row, "speedup_vs_cold": round(speedup, 2) if row is hot_row else 1.0},
            note=NOTE,
        )
    _SUMMARY["phases"] = [hot_row, cold_row]
    _SUMMARY["speedup_hot_vs_cold"] = speedup
    _SUMMARY["registry"] = stats
    _write_summary()

    # One compile for the registered handle; every hot request hit it.
    assert stats["compiles"] == 1
    assert speedup >= SPEEDUP_FLOOR, (
        f"hot handle only {speedup:.1f}x over per-request recompilation "
        f"(floor {SPEEDUP_FLOOR}x): hot {hot_row['throughput_rps']:.0f} rps "
        f"vs cold {cold_row['throughput_rps']:.0f} rps"
    )


def test_budget_trips_degrade_not_fail():
    schema_text = dumps(_bench_schema(SCHEMA_WIDTH))
    document = _bench_document(SCHEMA_WIDTH)
    requests_per_client = 5 if SMOKE else 20

    async def scenario():
        service = ValidationService(capacity=16)
        info = await service.register_schema(schema_text)
        payload = {
            "op": "validate",
            "schema_id": info["schema_id"],
            "document": document,
            "max_steps": 1,  # always trips: the document is larger
        }
        _obs.enable()
        try:
            outcome = await _drive(
                service, [[dict(payload)] * requests_per_client] * CONCURRENCY
            )
            trips = _obs.METRICS.counter("service.budget_trips.validate").value
        finally:
            _obs.disable()
        return outcome, trips

    (wall, latencies, responses), trip_count = asyncio.run(scenario())
    unknown = sum(
        1 for r in responses if r["ok"] and r["result"]["verdict"] == "unknown"
    )
    assert unknown == len(responses), "a starved budget must degrade to unknown"
    assert trip_count >= len(responses)
    row = _phase_row("budget-trips", wall, latencies)
    row["unknown_verdicts"] = unknown
    row["trip_counter"] = trip_count
    record_row(EXPERIMENT, {**row, "speedup_vs_cold": ""}, note=NOTE)
    _SUMMARY["budget_trips"] = {
        "requests": len(responses),
        "unknown_verdicts": unknown,
        "trip_counter": trip_count,
        "p99_ms": row["p99_ms"],
    }
    _write_summary()
