"""EXP-EDC — the validation payoff of the EDC constraint.

Paper motivation (Section 1 / Related Work): the single-type restriction
"facilitates a simple one-pass top-down validation algorithm" — general
EDTDs need bottom-up subset simulation instead.

Reproduction: validate the same sampled documents with (a) the
deterministic one-pass top-down algorithm of stEDTDs and (b) the generic
bottom-up EDTD algorithm; record throughput per document size.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import run_timed
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.edtd import EDTD
from repro.trees.generate import sample_tree

EXPERIMENT = "EXP-EDC  one-pass top-down vs bottom-up validation"
NOTE = "same answers; top-down is the EDC benefit the paper's intro motivates"


def _document_schema():
    """A recursive document schema producing arbitrarily deep/wide trees."""
    from repro.schemas.st_edtd import SingleTypeEDTD

    return SingleTypeEDTD(
        alphabet={"doc", "sec", "para", "note", "ref"},
        types={"d", "s", "p", "n", "r"},
        rules={
            "d": "s+",
            "s": "(p | s)*, n?",
            "p": "r*",
            "n": "~",
            "r": "~",
        },
        starts={"d"},
        mu={"d": "doc", "s": "sec", "p": "para", "n": "note", "r": "ref"},
    )


@pytest.mark.parametrize("target_size", [20, 60, 120, 240])
def test_validation_throughput(target_size, record, benchmark):
    schema = _document_schema()
    bottom_up = EDTD(
        alphabet=schema.alphabet,
        types=schema.types,
        rules=schema.rules,
        starts=schema.starts,
        mu=schema.mu,
    )
    rng = random.Random(target_size)
    documents = [sample_tree(schema, rng, target_size=target_size) for _ in range(20)]

    def top_down_all():
        return [schema.validate_top_down(doc) for doc in documents]

    answers, top_down_seconds = run_timed(benchmark, top_down_all, rounds=3)
    start = time.perf_counter()
    expected = [bottom_up.accepts(doc) for doc in documents]
    bottom_up_seconds = time.perf_counter() - start

    from repro.schemas.streaming import (
        StreamingValidator,
        events_of_tree,
        validate_events,
    )

    streams = [list(events_of_tree(doc)) for doc in documents]
    shared_validator = StreamingValidator(schema)
    start = time.perf_counter()
    streamed = [
        validate_events(schema, stream, validator=shared_validator)
        for stream in streams
    ]
    streaming_seconds = time.perf_counter() - start

    assert answers == expected == streamed
    assert all(answers)
    total_nodes = sum(doc.size() for doc in documents)
    record(
        EXPERIMENT,
        {
            "doc_nodes(avg)": total_nodes // len(documents),
            "docs": len(documents),
            "top_down_s": f"{top_down_seconds:.4f}",
            "streaming_s": f"{streaming_seconds:.4f}",
            "bottom_up_s": f"{bottom_up_seconds:.4f}",
            "speedup": f"{bottom_up_seconds / max(top_down_seconds, 1e-9):.1f}x",
        },
        note=NOTE,
    )
