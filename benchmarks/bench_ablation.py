"""EXP-ABLATION — design-choice ablations.

Three choices DESIGN.md commits to, each measured against its alternative:

1. **Minimize the outputs?**  Construction 3.1's raw output vs its
   type-minimal form: how many types does the extra polynomial pass save?
2. **Which regex-to-DFA pipeline for content models?**  Glushkov + subset
   construction + minimization (the default) vs Brzozowski derivatives,
   on the paper's hard content-model family.
3. **Reduce before constructing?**  Proviso 2.3 is semantically required
   for the type-automaton arguments; the ablation measures how much junk
   unreduced inputs would drag into the construction (types in the
   subset automaton built from an unreduced vs reduced input).
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import minimal_upper_approximation
from repro.families.random_schemas import random_edtd
from repro.schemas.edtd import EDTD
from repro.schemas.minimize import minimize_single_type
from repro.strings.builders import nth_from_end_is
from repro.strings.derivatives import dfa_from_regex
from repro.strings.determinize import determinize
from repro.strings.minimize import minimize_dfa
from repro.strings.ops import equivalent
from repro.strings.regex import parse

EXPERIMENT = "EXP-ABLATION  design-choice ablations"
NOTE = "minimize-pass savings; Glushkov vs derivatives; reduction payoff"


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_minimize_pass_savings(seed, record, benchmark):
    edtd = random_edtd(random.Random(40 + seed), num_labels=3, num_types=8)
    upper = minimal_upper_approximation(edtd)

    minimal, seconds = run_timed(benchmark, minimize_single_type, upper)
    record(
        EXPERIMENT,
        {
            "ablation": f"minimize-pass (seed {seed})",
            "baseline": f"{len(upper.types)} types",
            "variant": f"{len(minimal.types)} types",
            "delta": f"-{len(upper.types) - len(minimal.types)}",
            "time_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


@pytest.mark.parametrize("n", [4, 6, 8])
def test_regex_pipeline_choice(n, record, benchmark):
    # The hard family as an expression: (a|b)*, a, (a|b)^n.
    source = "(a | b)*, a" + ", (a | b)" * n
    expr = parse(source)

    def glushkov_route():
        from repro.strings.glushkov import glushkov_nfa

        return minimize_dfa(determinize(glushkov_nfa(expr)))

    glushkov_dfa, glushkov_seconds = run_timed(benchmark, glushkov_route)
    start = time.perf_counter()
    derivative_dfa = dfa_from_regex(expr)
    derivative_seconds = time.perf_counter() - start
    assert equivalent(glushkov_dfa, derivative_dfa)
    record(
        EXPERIMENT,
        {
            "ablation": f"regex pipeline (n={n})",
            "baseline": f"glushkov {len(glushkov_dfa.states)} states, {glushkov_seconds:.4f}s",
            "variant": f"derivatives {len(derivative_dfa.states)} states, {derivative_seconds:.4f}s",
            "delta": f"{len(derivative_dfa.states) - len(glushkov_dfa.states):+d} states",
            "time_s": f"{glushkov_seconds:.4f}",
        },
    )


def test_reduction_payoff(record, benchmark):
    # An EDTD with deliberate junk: unproductive and unreachable types.
    base = EDTD(
        alphabet={"a", "b"},
        types={"r", "x", "dead1", "dead2", "island1", "island2"},
        rules={
            "r": "x* | dead1",
            "x": "~",
            "dead1": "dead2",
            "dead2": "dead1",
            "island1": "island2?",
            "island2": "~",
        },
        starts={"r"},
        mu={
            "r": "a", "x": "b", "dead1": "b", "dead2": "a",
            "island1": "a", "island2": "b",
        },
    )

    def with_reduction():
        return minimal_upper_approximation(base)  # reduces internally

    upper, seconds = run_timed(benchmark, with_reduction)
    reduced_types = len(base.reduced().types)
    record(
        EXPERIMENT,
        {
            "ablation": "reduction (Proviso 2.3)",
            "baseline": f"{len(base.types)} raw types",
            "variant": f"{reduced_types} after reduction",
            "delta": f"upper has {len(upper.types)} types",
            "time_s": f"{seconds:.4f}",
        },
    )
    assert len(upper.types) <= reduced_types + 1
