"""EXP-L3.3 — PTIME inclusion into single-type EDTDs vs the general route.

Paper claim (Lemma 3.3 vs Theorem 2.13): ``L(D1) subseteq L(D2)`` is
PTIME when D2 is single-type (product of type automata + per-pair string
inclusions), in contrast with the EXPTIME-complete general problem.

Reproduction: on growing random instances, time the Lemma 3.3 procedure
against the exact tree-automata procedure (binary encoding + bottom-up
determinization) and check they agree.  The general route's cost explodes
with type count; the PTIME route stays flat.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import minimal_upper_approximation
from repro.families.random_schemas import random_edtd
from repro.schemas.inclusion import included_in_single_type
from repro.tree_automata.inclusion import edtd_includes

EXPERIMENT = "EXP-L3.3  PTIME inclusion (Lemma 3.3) vs exact EXPTIME route"
NOTE = "same answers; Lemma 3.3 time stays flat while the general route grows"


@pytest.mark.parametrize("num_types", [3, 5, 7, 9])
def test_inclusion_comparison(num_types, record, benchmark):
    rng = random.Random(3300 + num_types)
    sub = random_edtd(rng, num_labels=3, num_types=num_types)
    sup = minimal_upper_approximation(sub)  # guarantees a True instance

    fast_answer, fast_seconds = run_timed(
        benchmark, included_in_single_type, sub, sup
    )
    start = time.perf_counter()
    exact_answer = edtd_includes(sup, sub)
    exact_seconds = time.perf_counter() - start

    assert fast_answer == exact_answer is True
    record(
        EXPERIMENT,
        {
            "sub_types": len(sub.types),
            "sup_types": len(sup.types),
            "answer": fast_answer,
            "lemma33_s": f"{fast_seconds:.4f}",
            "exact_s": f"{exact_seconds:.4f}",
            "speedup": f"{exact_seconds / max(fast_seconds, 1e-9):.1f}x",
        },
        note=NOTE,
    )


def test_negative_instance_agreement(record, benchmark):
    rng = random.Random(42)
    sub = random_edtd(rng, num_labels=3, num_types=6)
    from repro.families.random_schemas import random_single_type_edtd

    sup = random_single_type_edtd(rng, num_labels=3, num_types=4)
    fast_answer, fast_seconds = run_timed(
        benchmark, included_in_single_type, sub, sup
    )
    exact_answer = edtd_includes(sup, sub)
    assert fast_answer == exact_answer
    record(
        EXPERIMENT,
        {
            "sub_types": len(sub.types),
            "sup_types": len(sup.types),
            "answer": fast_answer,
            "lemma33_s": f"{fast_seconds:.4f}",
            "exact_s": "-",
            "speedup": "-",
        },
    )
