"""EXP-CACHE — warm-start speedup of the persistent artifact cache.

Repeats EXP-3.2a's workloads (``bench_upper_edtd``) through the
``repro.api`` facade twice against a fresh on-disk
:class:`repro.cache.ArtifactCache`: a *cold* pass that computes and
publishes the artifact, then a *warm* pass — with every in-process memo
cache cleared — that must be served from disk.  Both passes return
byte-identical schemas (asserted via the canonical text format), and the
warm pass replays the recorded budget cost, so the speedup is pure
recompute-avoidance, not a governance shortcut.

Produce the machine-readable results file with::

    REPRO_BENCH_JSON=BENCH_cache.json PYTHONPATH=src \
        python -m pytest benchmarks/bench_cache.py --benchmark-disable -q

The hard exponential family must show a real speedup (asserted > 1x);
the random near-linear EDTDs are recorded without a floor — their cold
constructions are already microseconds-cheap, so disk latency may win
or lose on any given box.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import record_bench
from repro.cache import ArtifactCache
from repro.api import approximate_upper
from repro.families.hard import example_2_6, theorem_3_2_family
from repro.families.random_schemas import random_edtd
from repro.cache.keys import schema_structural_key
from repro.strings.kernels import clear_caches

EXPERIMENT = "EXP-CACHE  warm-start speedup of the artifact cache"
NOTE = "cold computes + publishes; warm is served from disk with memo caches cleared"

#: min-of-N timing rounds; each round re-clears the store for the cold
#: pass and the memo caches for both passes.
ROUNDS = 3


def _measure(store: ArtifactCache, edtd) -> tuple[float, float, int]:
    """Return (cold_s, warm_s, warm_disk_hits) as min-of-``ROUNDS``."""
    cold_s = warm_s = float("inf")
    warm_hits = 0
    reference = None
    for _ in range(ROUNDS):
        store.clear()
        clear_caches()
        started = time.perf_counter()
        cold = approximate_upper(edtd, cache=store)
        cold_s = min(cold_s, time.perf_counter() - started)

        clear_caches()
        hits_before = store.hits
        started = time.perf_counter()
        warm = approximate_upper(edtd, cache=store)
        warm_s = min(warm_s, time.perf_counter() - started)
        warm_hits = store.hits - hits_before

        assert warm_hits > 0, "warm pass never touched the disk store"
        # Structural fingerprints (the cache's own key material) are cheap
        # even on 2^n-type schemas, where full text serialization is not.
        assert schema_structural_key(warm.schema) == schema_structural_key(cold.schema)
        if reference is None:
            reference = schema_structural_key(cold.schema)
        else:
            assert schema_structural_key(cold.schema) == reference
    return cold_s, warm_s, warm_hits


def _record(record, workload: str, edtd, cold_s: float, warm_s: float, hits: int) -> None:
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    record(
        EXPERIMENT,
        {
            "workload": workload,
            "input_types": edtd.type_size(),
            "cold_s": f"{cold_s:.4f}",
            "warm_s": f"{warm_s:.4f}",
            "speedup": f"{speedup:.1f}x",
            "disk_hits": hits,
        },
        note=NOTE,
    )
    record_bench(
        "cache_warm_upper",
        n=edtd.type_size(),
        seconds=warm_s,
        workload=workload,
        cold_seconds=cold_s,
        speedup=speedup,
        disk_hits=hits,
    )


@pytest.mark.parametrize("num_types", [4, 8, 16])
def test_random_edtd_warm_repeat(num_types, record, tmp_path):
    edtd = random_edtd(random.Random(num_types), num_labels=4, num_types=num_types)
    store = ArtifactCache(tmp_path / "cache")
    cold_s, warm_s, hits = _measure(store, edtd)
    _record(record, f"random-{num_types}", edtd, cold_s, warm_s, hits)


def test_example_2_6_warm_repeat(record, tmp_path):
    edtd = example_2_6()
    store = ArtifactCache(tmp_path / "cache")
    cold_s, warm_s, hits = _measure(store, edtd)
    _record(record, "example-2.6", edtd, cold_s, warm_s, hits)


def test_hard_family_warm_repeat_speedup(record, tmp_path):
    # Theorem 3.2's 2^n family: construction is genuinely expensive, so a
    # disk read must beat recomputation — this is the asserted floor the
    # results file documents.
    edtd = theorem_3_2_family(8)
    store = ArtifactCache(tmp_path / "cache")
    cold_s, warm_s, hits = _measure(store, edtd)
    assert warm_s < cold_s, (
        f"warm pass ({warm_s:.4f}s) not faster than cold ({cold_s:.4f}s)"
    )
    _record(record, "theorem-3.2-n8", edtd, cold_s, warm_s, hits)
