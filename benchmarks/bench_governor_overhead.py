"""EXP-GOV — overhead of the resource governor on polynomial inputs.

The governor must be observationally free when nothing trips: on
polynomially-sized constructions the governed run must stay within 5%
of the ungoverned run.  The cheap counters are plain int compares; the
expensive checks (clock, cancellation, RSS) are amortized to every
``check_interval`` ticks, so the expected overhead is noise-level.

Methodology: interleave governed and ungoverned repetitions and compare
*minimum* wall-clock times (min-of-N is robust against scheduler noise,
means are not).  These benchmarks opt out of the ambient per-test budget
(``@pytest.mark.ungoverned``) — the baseline leg must really run bare.
"""

from __future__ import annotations

import time

import pytest

from repro.core.upper import minimal_upper_approximation, upper_union
from repro.families.hard import theorem_3_6_family
from repro.runtime import Budget
from repro.strings.builders import nth_from_end_is
from repro.strings.determinize import determinize

EXPERIMENT = "EXP-GOV  governor overhead on polynomial constructions"
NOTE = "acceptance: governed/ungoverned min-time ratio < 1.05 (plus 1 ms slack)"

ROUNDS = 15
GENEROUS = dict(timeout=600.0, max_states=50_000_000)


def _min_times(workload, make_budget) -> tuple[float, float]:
    """Interleaved min-of-ROUNDS timing of *workload* bare vs governed."""
    bare = governed = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        workload(None)
        bare = min(bare, time.perf_counter() - start)
        budget = make_budget()
        start = time.perf_counter()
        workload(budget)
        governed = min(governed, time.perf_counter() - start)
    return bare, governed


def _assert_and_record(record, name, bare, governed):
    ratio = governed / bare if bare > 0 else 1.0
    record(
        EXPERIMENT,
        {
            "workload": name,
            "ungoverned_ms": f"{bare * 1e3:.2f}",
            "governed_ms": f"{governed * 1e3:.2f}",
            "ratio": f"{ratio:.3f}",
        },
        note=NOTE,
    )
    assert governed <= bare * 1.05 + 1e-3, (
        f"{name}: governed {governed:.4f}s vs ungoverned {bare:.4f}s "
        f"(ratio {ratio:.3f})"
    )


@pytest.mark.ungoverned
def test_overhead_determinize(record):
    # Pin the scalar kernel for both legs: the PR-2 vectorized fast path
    # only engages ungoverned, so leaving it on would measure the fast
    # path's speedup (bench_kernels.py's job), not the charging overhead.
    from repro.strings import kernels

    nfa = nth_from_end_is("a", "b", 10)
    kernels.USE_FAST_PATH = False
    try:
        bare, governed = _min_times(
            lambda b: determinize(nfa, budget=b), lambda: Budget(**GENEROUS)
        )
    finally:
        kernels.USE_FAST_PATH = True
    _assert_and_record(record, "determinize(nth_from_end, n=10)", bare, governed)


@pytest.mark.ungoverned
def test_overhead_upper_union(record):
    d1, d2 = theorem_3_6_family(4)
    bare, governed = _min_times(
        lambda b: upper_union(d1, d2, budget=b), lambda: Budget(**GENEROUS)
    )
    _assert_and_record(record, "upper_union(theorem_3_6, n=4)", bare, governed)


@pytest.mark.ungoverned
def test_overhead_upper_approximation(record):
    from repro.families.hard import theorem_3_2_family

    edtd = theorem_3_2_family(6)
    bare, governed = _min_times(
        lambda b: minimal_upper_approximation(edtd, budget=b),
        lambda: Budget(**GENEROUS),
    )
    _assert_and_record(record, "minimal_upper(theorem_3_2, n=6)", bare, governed)
