"""Shared machinery of the experiment benchmarks (importable, no pytest
hooks).

:mod:`benchmarks.conftest` wires these helpers into pytest (fixtures and
the terminal-summary hook); everything stateful lives here so one-off
scripts can reuse the writers without a pytest session:

* :func:`record_row` / :func:`record_bench` — accumulate reproduction
  tables and machine-readable result rows.
* :func:`run_timed` — pytest-benchmark wrapper that routes every timing
  through :func:`record_bench`.
* :func:`write_bench_json` — dump everything to ``BENCH_kernels.json``.

Tracing: set ``REPRO_BENCH_TRACE=1`` and :func:`run_timed` wraps each
measured call in a :class:`repro.observability.Trace`, embedding the span
tree (``Trace.to_dict()``) in that row of the JSON — so a regression in
the timing table can be chased down to the construction phase that
slowed, without re-running anything.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict

from repro.observability import Trace
from repro.runtime.budget import current_budget
from repro.strings.kernels import cache_stats

_TABLES: "OrderedDict[str, dict]" = OrderedDict()
_BENCH_ROWS: list[dict] = []

#: Default output path of the machine-readable results (repo root).
BENCH_JSON_DEFAULT = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")

#: Per-test governor defaults — generous enough that every benchmark in
#: the sweep completes unchanged, tight enough that a regression (or a
#: hostile parameter bump) fails deterministically with a one-line
#: :class:`~repro.errors.BudgetExceededError` instead of hanging the run.
DEFAULT_BENCH_TIMEOUT = 600.0
DEFAULT_BENCH_MAX_STATES = 50_000_000


def env_limit(name: str, default: float | int, cast):
    """Read a governor limit from the environment; ``0``/``none`` disables."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw.strip().lower() in ("", "0", "none", "off"):
        return None
    return cast(raw)


def trace_enabled() -> bool:
    """Should :func:`run_timed` embed span trees?  (``REPRO_BENCH_TRACE``)"""
    return os.environ.get("REPRO_BENCH_TRACE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def record_row(experiment: str, row: dict, note: str = "") -> None:
    """Add one row to *experiment*'s reproduction table.

    ``row`` is an ordered mapping of column name to value; all rows of one
    experiment should share the same columns.
    """
    table = _TABLES.setdefault(experiment, {"note": note, "rows": []})
    if note:
        table["note"] = note
    table["rows"].append(row)


def record_bench(
    op: str,
    *,
    n=None,
    seconds: float | None = None,
    states: int | None = None,
    cache_hits: int | None = None,
    **extra,
) -> None:
    """Shared machine-readable writer: one structured result row destined
    for ``BENCH_kernels.json``.

    Every benchmark module writes through here — either explicitly or via
    :func:`run_timed` — so the JSON schema stays uniform across the suite.
    """
    row: dict = {"op": op, "n": n, "seconds": seconds, "states": states,
                 "cache_hits": cache_hits}
    row.update(extra)
    _BENCH_ROWS.append(row)


def _total_cache_hits() -> int:
    return sum(stats["hits"] for stats in cache_stats().values())


def run_timed(benchmark, func, *args, rounds: int = 1, **kwargs):
    """Run *func* under pytest-benchmark and return ``(result, seconds)``.

    Heavy constructions use ``rounds=1`` so the sweep stays fast; the
    mean time still lands in the benchmark table.  Each call also records
    a structured row (op, wall time, budget states, kernel cache hits)
    through :func:`record_bench` — plus, under ``REPRO_BENCH_TRACE=1``,
    the span tree of the measured call.
    """
    op = getattr(benchmark, "name", getattr(func, "__name__", str(func)))
    hits_before = _total_cache_hits()
    budget = current_budget()
    states_before = budget.states if budget is not None else None
    trace = Trace(op) if trace_enabled() else None
    if trace is not None:
        with trace:
            result = benchmark.pedantic(
                func, args=args, kwargs=kwargs, rounds=rounds, iterations=1
            )
    else:
        result = benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=rounds, iterations=1
        )
    seconds = float(benchmark.stats.stats.mean) if benchmark.stats else float("nan")
    extra = {"trace": trace.to_dict()} if trace is not None else {}
    record_bench(
        op,
        seconds=seconds,
        states=(budget.states - states_before) if budget is not None else None,
        cache_hits=_total_cache_hits() - hits_before,
        **extra,
    )
    return result, seconds


def format_table(rows: list[dict]) -> list[str]:
    columns = list(rows[0])
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    sep = "  ".join("-" * widths[col] for col in columns)
    lines = [header, sep]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return lines


def write_bench_json() -> None:
    """Dump the structured rows and reproduction tables to
    ``BENCH_kernels.json`` (set ``REPRO_BENCH_JSON`` to redirect, or to
    ``none`` to skip)."""
    if not _BENCH_ROWS and not _TABLES:
        return
    path = os.environ.get("REPRO_BENCH_JSON", BENCH_JSON_DEFAULT)
    if path.strip().lower() in ("", "0", "none", "off"):
        return
    payload = {
        "schema": 1,
        "results": _BENCH_ROWS,
        "tables": {
            name: {"note": table["note"], "rows": table["rows"]}
            for name, table in _TABLES.items()
        },
        "cache": cache_stats(),
    }
    with open(os.path.abspath(path), "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
