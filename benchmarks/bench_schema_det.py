"""EXP-SD — schema-guided determinization vs the blind kernels.

Measures the tentpole claim of the guided kernel
(:mod:`repro.strings.schema_guided`): on the Theorem 3.2 exponential
family, guiding the subset construction by a depth-bounded ancestor
schema prunes the explored subset lattice from ``2^(n+1)`` states to the
guide's reachable slice, with a measured wall-clock win at the largest
size; on the Theorem 4.3 union family (the ``test_closure_equals_upper``
instance) guiding by one operand's ancestor strings strictly reduces the
explored subsets; and the universal guide is an exact no-regression
ablation — state-for-state identical output and identical budget
charges.

Set ``REPRO_BENCH_SMOKE=1`` to run a small-n slice (used by the CI bench
job).  Full curves land in ``BENCH_schema_det.json`` via::

    REPRO_BENCH_JSON=BENCH_schema_det.json pytest benchmarks/bench_schema_det.py
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import record_bench, run_timed
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import example_2_6, theorem_3_2_family, theorem_4_3_d1_d2
from repro.runtime import Budget
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.ops import edtd_union
from repro.schemas.type_automaton import ancestor_guide, type_automaton
from repro.strings.determinize import determinize
from repro.strings.schema_guided import depth_guide

EXPERIMENT = "EXP-SD  schema-guided determinization (pruned vs blind subset construction)"
NOTE = "guide = depth-bounded / ancestor-string schema; universal guide = ablation"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in ("1", "true", "yes")

#: Family parameters for the 2^(n+1)-subset blow-up curves.
BLOWUP_NS = [4, 6, 8] if SMOKE else [4, 6, 8, 10, 12, 14]


def _explored_states(nfa, **kwargs):
    """Run the construction under a fresh counting budget; return
    ``(dfa, states_charged)`` — the scalar kernels' explored-state count."""
    budget = Budget()
    dfa = determinize(nfa, budget=budget, **kwargs)
    return dfa, budget.states


def _best_of(func, *args, rounds: int = 3):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.ungoverned
@pytest.mark.parametrize("n", BLOWUP_NS)
def test_blowup_family_curves(n, record, benchmark):
    """Theorem 3.2 family: blind explores 2^(n+1) subsets; a depth-(n//2)
    ancestor guide explores only the shallow slice (ungoverned: the blind
    comparator is allowed its vectorized fast path, matching library use)."""
    nfa = type_automaton(theorem_3_2_family(n))
    guide = depth_guide(nfa.alphabet, n // 2)

    _, blind_states = _explored_states(nfa)
    _, guided_states = _explored_states(nfa, strategy="schema-guided", guide=guide)
    _, universal_states = _explored_states(nfa, strategy="schema-guided")
    assert guided_states < blind_states, "guide failed to prune the blow-up family"
    assert universal_states == blind_states, "universal-guide ablation regressed"

    determinize(nfa)  # warm-up (chunk tables, caches)
    guided_dfa, _ = run_timed(
        benchmark, determinize, nfa, strategy="schema-guided", guide=guide
    )
    guided_seconds = float(benchmark.stats.stats.min)
    blind_dfa, blind_seconds = _best_of(determinize, nfa)
    assert set(guided_dfa.states) <= set(blind_dfa.states)

    if n == max(BLOWUP_NS):
        assert guided_seconds < blind_seconds, (
            f"no wall-clock win at n={n}: guided {guided_seconds:.4f}s "
            f"vs blind {blind_seconds:.4f}s"
        )
    record_bench(
        "schema_guided_determinize",
        n=n,
        seconds=guided_seconds,
        states=guided_states,
        blind_seconds=blind_seconds,
        blind_states=blind_states,
        universal_states=universal_states,
    )
    record(
        EXPERIMENT,
        {
            "family": "thm-3.2",
            "n": n,
            "blind_states": blind_states,
            "guided_states": guided_states,
            "universal_states": universal_states,
            "blind_s": f"{blind_seconds:.4f}",
            "guided_s": f"{guided_seconds:.4f}",
        },
        note=NOTE,
    )


def test_ancestor_guided_union(record, benchmark):
    """Theorem 4.3 union (the ``test_closure_equals_upper`` family):
    guiding the union's type automaton by D2's own ancestor strings
    strictly reduces the explored subsets while agreeing with the blind
    construction on the guide's universe."""
    d1, d2 = theorem_4_3_d1_d2()
    union = edtd_union(d1, d2)
    nfa = type_automaton(union)
    guide = ancestor_guide(d2)

    blind_dfa, blind_states = _explored_states(nfa)
    guided_dfa, guided_states = _explored_states(
        nfa, strategy="schema-guided", guide=guide
    )
    assert guided_states < blind_states, (
        f"ancestor guide failed to prune: {guided_states} vs {blind_states}"
    )
    assert set(guided_dfa.states) < set(blind_dfa.states)

    run_timed(benchmark, determinize, nfa, strategy="schema-guided", guide=guide)
    seconds = float(benchmark.stats.stats.min)
    record_bench(
        "schema_guided_union",
        n=len(union.types),
        seconds=seconds,
        states=guided_states,
        blind_states=blind_states,
    )
    record(
        EXPERIMENT,
        {
            "family": "thm-4.3 union",
            "n": len(union.types),
            "blind_states": blind_states,
            "guided_states": guided_states,
            "universal_states": blind_states,
            "blind_s": "-",
            "guided_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


def test_guided_upper_end_to_end(record, benchmark):
    """Construction 3.1 end-to-end on the paper's Example 2.6, guided by
    the schema's own ancestor strings — the guided approximation equals
    the blind one (the guide covers every valid ancestor string)."""
    edtd = example_2_6()
    blind = minimal_upper_approximation(edtd)

    guided, _ = run_timed(
        benchmark,
        minimal_upper_approximation,
        edtd,
        strategy="schema-guided",
        guide=edtd,
    )
    seconds = float(benchmark.stats.stats.min)
    assert single_type_equivalent(guided, blind)
    record_bench(
        "schema_guided_upper",
        n=len(edtd.types),
        seconds=seconds,
        states=len(guided.types),
    )
    record(
        EXPERIMENT,
        {
            "family": "example-2.6 upper",
            "n": len(edtd.types),
            "blind_states": len(blind.types),
            "guided_states": len(guided.types),
            "universal_states": len(blind.types),
            "blind_s": "-",
            "guided_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )
