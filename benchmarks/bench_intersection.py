"""EXP-3.8 — intersections of XSDs are exact; prime family is quadratic.

Paper claims (Proposition 3.7, Theorem 3.8): the intersection of two
stEDTDs is single-type definable, the construction runs in O(|D1||D2|),
and the unary prime-period family needs Omega(p1 p2) types.

Reproduction: (a) prime family — minimal type count equals p1*p2 (+1 root
bookkeeping); (b) random pairs — intersection verified exact extensionally.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import upper_intersection
from repro.families.hard import _primes_above, theorem_3_8_family
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.minimize import minimize_single_type
from repro.trees.generate import enumerate_all_trees

EXPERIMENT = "EXP-3.8  exact intersections; prime family Omega(p1 p2)"
NOTE = "minimal type count of the intersection vs p1*p2"


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_prime_family(n, record, benchmark):
    d1, d2 = theorem_3_8_family(n)
    p1, p2 = _primes_above(n, 2)

    def build():
        return minimize_single_type(upper_intersection(d1, d2))

    minimal, seconds = run_timed(benchmark, build)
    assert len(minimal.types) >= p1 * p2
    record(
        EXPERIMENT,
        {
            "n": n,
            "p1": p1,
            "p2": p2,
            "types_d1": len(d1.types),
            "types_d2": len(d2.types),
            "intersection_types": len(minimal.types),
            "p1*p2": p1 * p2,
            "construct_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


def test_random_intersection_exactness(record, benchmark):
    rng = random.Random(88)
    d1 = random_single_type_edtd(rng, num_labels=2, num_types=4)
    d2 = random_single_type_edtd(rng, num_labels=2, num_types=4)
    inter, seconds = run_timed(benchmark, upper_intersection, d1, d2)
    mismatches = 0
    for tree in enumerate_all_trees(d1.alphabet | d2.alphabet, 4):
        expected = d1.accepts(tree) and d2.accepts(tree)
        if inter.accepts(tree) != expected:
            mismatches += 1
    assert mismatches == 0
    record(
        EXPERIMENT,
        {
            "n": "random",
            "p1": "-",
            "p2": "-",
            "types_d1": len(d1.types),
            "types_d2": len(d2.types),
            "intersection_types": len(inter.types),
            "p1*p2": "-",
            "construct_s": f"{seconds:.4f}",
        },
    )
