"""EXP-3.2b — Theorem 3.2's exponential blow-up family.

Paper claim: ``|D_n| = O(n)`` while the type-size of the minimal upper
XSD-approximation is ``Omega(2^n)`` and cannot be reduced.

Reproduction: build ``D_n`` (unary ``(a+b)* a (a+b)^n`` trees) for
``n = 2..6``, run Construction 3.1, minimize, and record input size vs
output type-size.  The predicted shape is ``2^(n+1)`` exactly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import theorem_3_2_family
from repro.schemas.minimize import minimize_single_type

EXPERIMENT = "EXP-3.2b  exponential blow-up of minimal upper approximations"
NOTE = "paper: input O(n), output type-size Omega(2^n); predicted exactly 2^(n+1)"


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
def test_blowup_shape(n, record, benchmark):
    edtd = theorem_3_2_family(n)
    upper, seconds = run_timed(benchmark, minimal_upper_approximation, edtd)
    minimal = minimize_single_type(upper)
    assert len(minimal.types) == 2 ** (n + 1)
    record(
        EXPERIMENT,
        {
            "n": n,
            "input_types": edtd.type_size(),
            "input_size": edtd.size(),
            "upper_types": upper.type_size(),
            "minimal_types": len(minimal.types),
            "predicted_2^(n+1)": 2 ** (n + 1),
            "construct_s": f"{seconds:.3f}",
        },
        note=NOTE,
    )
