"""EXP-2.9 — linear-time translations stEDTD <-> DFA-based XSD.

Paper claim (Proposition 2.9): both translations are linear (the paper
improves the literature's quadratic bound).

Reproduction: sweep random stEDTDs; record input vs output sizes for both
directions (the ratios must stay bounded by a constant) and round-trip
language preservation on sampled documents.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.dfa_xsd import from_single_type
from repro.trees.generate import sample_tree

EXPERIMENT = "EXP-2.9  linear stEDTD <-> DFA-based XSD translations"
NOTE = "size ratios bounded by a constant in both directions"


@pytest.mark.parametrize("num_types", [3, 6, 9, 12, 16])
def test_translation_sweep(num_types, record, benchmark):
    schema = random_single_type_edtd(
        random.Random(290 + num_types), num_labels=4, num_types=num_types
    ).reduced()

    def round_trip():
        xsd = from_single_type(schema)
        return xsd, xsd.to_single_type()

    (xsd, back), seconds = run_timed(benchmark, round_trip)
    rng = random.Random(7)
    for _ in range(5):
        tree = sample_tree(schema, rng, target_size=10)
        assert xsd.accepts(tree)
        assert back.accepts(tree)
    record(
        EXPERIMENT,
        {
            "st_types": len(schema.types),
            "st_size": schema.size(),
            "xsd_size": xsd.size(),
            "back_size": back.size(),
            "xsd_ratio": f"{xsd.size() / schema.size():.2f}",
            "round_trip_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )
