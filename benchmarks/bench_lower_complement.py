"""EXP-4.11 — infinitely many maximal lower approximations of a complement.

Paper claim (Theorem 4.11): for the DTD ``a -> a + epsilon`` the complement
admits pairwise-distinct maximal lower XSD-approximations X_1, X_2, ...,
even over a unary alphabet.

Reproduction: verify each X_n is a lower approximation of the complement,
maximal within the search bound, and distinguished by the depth-(n+1)
chain-then-branch tree t_(n+1).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.core.decision import (
    Maximality,
    is_lower_approximation,
    is_maximal_lower_approximation,
)
from repro.families.hard import theorem_4_11_dtd, theorem_4_11_xn
from repro.schemas.ops import complement_edtd
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.tree import Tree, parse_tree

EXPERIMENT = "EXP-4.11  infinitely many maximal lower approximations (complement)"
NOTE = "t_m in L(X_n) iff m = n+1; each X_n maximal within the bound"


def _t_of_depth(m: int) -> Tree:
    tree = parse_tree("a(a, a)")
    for _ in range(m - 2):
        tree = Tree("a", [tree])
    return tree


@pytest.mark.parametrize("n", [1, 2, 3])
def test_xn_complement_family(n, record, benchmark):
    dtd = theorem_4_11_dtd()
    complement = complement_edtd(SingleTypeEDTD.from_edtd(dtd.to_edtd()))
    xn = theorem_4_11_xn(n)
    assert is_lower_approximation(xn, complement)

    def check():
        return is_maximal_lower_approximation(xn, complement, max_size=5)

    verdict, seconds = run_timed(benchmark, check)
    assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND
    for m in range(2, n + 3):
        assert xn.accepts(_t_of_depth(m)) == (m == n + 1)
    record(
        EXPERIMENT,
        {
            "n": n,
            "xn_types": len(xn.types),
            "verdict": verdict.outcome.name,
            "distinguisher_depth": n + 1,
            "check_s": f"{seconds:.3f}",
        },
        note=NOTE,
    )
