"""EXP-TK — PR-7 tree-kernel speedups: old frozenset/round-based tree
loops vs. the integer-coded kernels of :mod:`repro.tree_automata.kernels`
and the arena walks of :mod:`repro.trees.arena`.

Acceptance measurements for the tree-kernels PR:

* ``BTA.determinize`` — bitmask worklist (numpy fast path) vs. the
  preserved round-based reference, on a left-spine blow-up family
  (~2^k subsets) and a dense random BTA; required >= 5x in aggregate.
* ``bta_difference_empty`` — lazy-product worklist with chunk-table
  steps vs. the full-rescan reference, on self-inclusion instances
  (empty difference: the whole product must be explored); required
  >= 5x in aggregate.
* EDTD validation — one arena pass with type bitmasks vs. the
  path-dict reference, on wide and very deep documents — informational.

To (re)generate the committed ``BENCH_trees.json``::

    PYTHONPATH=src REPRO_BENCH_JSON=BENCH_trees.json \\
        python -m pytest benchmarks/bench_tree_kernels.py --benchmark-only -q

Set ``REPRO_BENCH_SMOKE=1`` to run a small slice (used by the CI bench
smoke job): same code paths, tiny instances, no speedup assertions.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import record_bench, run_timed
from repro.families.random_schemas import random_edtd
from repro.tree_automata.bta import BTA
from repro.tree_automata.inclusion import (
    bta_difference_empty,
    bta_difference_empty_reference,
)
from repro.tree_automata.kernels import edtd_possible_types
from repro.trees import Tree

EXPERIMENT = "EXP-TK  tree kernel speedups (old tree loops vs PR-7 kernels)"
NOTE = "old = pre-PR reference implementations, preserved as differential oracles"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in ("1", "true", "yes")

#: Rounds for best-of timing of the old/new comparison.
ROUNDS = 1 if SMOKE else 3
#: Left-spine family parameters for determinize (~2^k subsets each).
DETERMINIZE_SPINES = [4, 5] if SMOKE else [7, 8]
#: Dense random BTA for determinize: (seed, states, density, leaf_p).
DETERMINIZE_RANDOM = (7, 8, 0.10, 0.3) if SMOKE else (7, 11, 0.05, 0.25)
#: Self-inclusion instances for difference-emptiness.
INCLUSION_SPINES = [4, 5] if SMOKE else [6, 7]
INCLUSION_RANDOM = (7, 7, 0.12, 0.3) if SMOKE else (7, 9, 0.10, 0.3)
#: Validation document sizes (nodes).
WIDE_SIZE = 400 if SMOKE else 4000
DEEP_DEPTH = 300 if SMOKE else 3000


def spine_bta(k: int) -> BTA:
    """The 'k-th left-spine label from the bottom is b' BTA — a string-NFA
    blow-up lifted onto left combs, so determinizing reaches ~2^k subsets
    while the automaton itself stays tiny (k + 2 states)."""
    states = [f"q{i}" for i in range(k + 1)] + ["pad"]
    leaf_rules = {"a": {"q0"}, "b": {"q0", "q1"}, "p": {"pad"}}
    internal: dict = {}
    for label in ("a", "b"):
        for i in range(k):
            targets = {"q0", "q1"} if label == "b" else {"q0"}
            if i > 0:
                targets = targets | {f"q{i + 1}"}
            internal[(label, f"q{i}", "pad")] = targets
    return BTA(states, ["a", "b", "p"], leaf_rules, internal, {f"q{k}"})


def dense_random_bta(seed: int, n: int, density: float, leaf_p: float) -> BTA:
    """A dense random BTA whose subset construction stays mid-sized."""
    rng = random.Random(seed)
    states = [f"q{i}" for i in range(n)]
    labels = ["a", "b"]
    leaf_rules: dict = {}
    for label in labels:
        targets = {q for q in states if rng.random() < leaf_p}
        if targets:
            leaf_rules[label] = targets
    internal: dict = {}
    for label in labels:
        for q1 in states:
            for q2 in states:
                targets = {q for q in states if rng.random() < density}
                if targets:
                    internal[(label, q1, q2)] = targets
    return BTA(states, labels, leaf_rules, internal, {states[-1]})


def random_unranked_tree(rng: random.Random, labels: list, size: int) -> Tree:
    """A random unranked tree with *size* nodes (uniform random parents)."""
    children: dict[int, list[int]] = {0: []}
    node_labels = [rng.choice(labels)]
    for index in range(1, size):
        parent = rng.randrange(0, index)
        children.setdefault(parent, []).append(index)
        children[index] = []
        node_labels.append(rng.choice(labels))
    built: dict[int, Tree] = {}
    for index in range(size - 1, -1, -1):
        built[index] = Tree(node_labels[index], [built[c] for c in children[index]])
    return built[0]


def _best_of(func, *args, rounds: int = ROUNDS):
    """Return ``(result, best_seconds)`` over *rounds* runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


def _same_bta(left: BTA, right: BTA) -> bool:
    return (
        left.states == right.states
        and left.finals == right.finals
        and {k: frozenset(v) for k, v in left.internal_rules.items()}
        == {k: frozenset(v) for k, v in right.internal_rules.items()}
    )


@pytest.mark.ungoverned
def test_bta_determinize_speedup(record, benchmark):
    """Bitmask worklist subset construction vs. the round-based reference
    (ungoverned: the numpy fast path only engages without an ambient
    budget, matching library use)."""
    instances = [(f"spine{k}", spine_bta(k)) for k in DETERMINIZE_SPINES]
    instances.append(("dense-random", dense_random_bta(*DETERMINIZE_RANDOM)))
    for _, bta in instances:
        bta.determinize()  # warm-up (codings, chunk tables, allocator)

    def run_all_new():
        return [bta.determinize() for _, bta in instances]

    new_results, _ = run_timed(benchmark, run_all_new, rounds=ROUNDS)

    # Aggregate over per-instance best-of timings (same methodology on
    # both sides; the batched run above feeds the pytest-benchmark table).
    new_total = 0.0
    old_total = 0.0
    for (name, bta), new_det in zip(instances, new_results):
        old_det, old_seconds = _best_of(bta.determinize_reference)
        _, new_seconds = _best_of(bta.determinize)
        assert _same_bta(new_det, old_det)
        new_total += new_seconds
        old_total += old_seconds
        speedup = old_seconds / max(new_seconds, 1e-9)
        record_bench(
            "bta_determinize_speedup",
            n=name,
            seconds=new_seconds,
            states=len(new_det.states),
            old_seconds=old_seconds,
            speedup=round(speedup, 2),
        )
        record(
            EXPERIMENT,
            {
                "op": "bta_determinize",
                "instance": name,
                "subsets": len(new_det.states),
                "new_s": f"{new_seconds:.4f}",
                "old_s": f"{old_seconds:.4f}",
                "speedup": f"{speedup:.1f}x",
            },
            note=NOTE,
        )

    aggregate = old_total / max(new_total, 1e-9)
    record_bench(
        "bta_determinize_speedup_aggregate",
        n=len(instances),
        seconds=new_total,
        old_seconds=old_total,
        speedup=round(aggregate, 2),
    )
    record(
        EXPERIMENT,
        {
            "op": "bta_determinize (aggregate)",
            "instance": f"{len(instances)} instances",
            "subsets": "",
            "new_s": f"{new_total:.4f}",
            "old_s": f"{old_total:.4f}",
            "speedup": f"{aggregate:.1f}x",
        },
        note=NOTE,
    )
    if not SMOKE:
        assert aggregate >= 5.0, (
            f"bta_determinize kernel speedup regressed to {aggregate:.1f}x "
            f"(old {old_total:.3f}s vs new {new_total:.3f}s)"
        )


@pytest.mark.ungoverned
def test_bta_difference_empty_speedup(record, benchmark):
    """Lazy-product worklist vs. the full-rescan reference on
    self-inclusion instances — the difference is empty, so no early exit:
    both sides must saturate the whole reachable product."""
    instances = [(f"spine{k}", spine_bta(k)) for k in INCLUSION_SPINES]
    instances.append(("dense-random", dense_random_bta(*INCLUSION_RANDOM)))
    for _, bta in instances:
        bta_difference_empty(bta, bta)  # warm-up

    def run_all_new():
        return [bta_difference_empty(bta, bta) for _, bta in instances]

    answers, _ = run_timed(benchmark, run_all_new, rounds=ROUNDS)

    # Aggregate over per-instance best-of timings, as in the determinize
    # benchmark above.
    new_total = 0.0
    old_total = 0.0
    for (name, bta), new_answer in zip(instances, answers):
        old_answer, old_seconds = _best_of(bta_difference_empty_reference, bta, bta)
        _, new_seconds = _best_of(bta_difference_empty, bta, bta)
        assert new_answer == old_answer is True
        new_total += new_seconds
        old_total += old_seconds
        speedup = old_seconds / max(new_seconds, 1e-9)
        record_bench(
            "bta_difference_empty_speedup",
            n=name,
            seconds=new_seconds,
            old_seconds=old_seconds,
            speedup=round(speedup, 2),
        )
        record(
            EXPERIMENT,
            {
                "op": "bta_difference_empty",
                "instance": name,
                "subsets": "",
                "new_s": f"{new_seconds:.4f}",
                "old_s": f"{old_seconds:.4f}",
                "speedup": f"{speedup:.1f}x",
            },
            note=NOTE,
        )

    aggregate = old_total / max(new_total, 1e-9)
    record_bench(
        "bta_difference_empty_speedup_aggregate",
        n=len(instances),
        seconds=new_total,
        old_seconds=old_total,
        speedup=round(aggregate, 2),
    )
    record(
        EXPERIMENT,
        {
            "op": "bta_difference_empty (aggregate)",
            "instance": f"{len(instances)} instances",
            "subsets": "",
            "new_s": f"{new_total:.4f}",
            "old_s": f"{old_total:.4f}",
            "speedup": f"{aggregate:.1f}x",
        },
        note=NOTE,
    )
    if not SMOKE:
        assert aggregate >= 5.0, (
            f"bta_difference_empty kernel speedup regressed to {aggregate:.1f}x "
            f"(old {old_total:.3f}s vs new {new_total:.3f}s)"
        )


@pytest.mark.ungoverned
def test_arena_validation_speedup(record, benchmark):
    """EDTD validation through the arena kernel vs. the path-dict object
    walk, on wide random documents and one very deep document
    (informational — the arena's big win is the deep case, where the
    reference pays O(depth) per path tuple)."""
    rng = random.Random(2026)
    schema = random_edtd(rng, num_labels=3, num_types=8)
    labels = sorted(schema.alphabet, key=repr)
    wide = [random_unranked_tree(rng, labels, WIDE_SIZE) for _ in range(3)]
    deep = Tree(labels[0])
    for _ in range(DEEP_DEPTH):
        deep = Tree(labels[0], [deep])
    documents = wide + [deep]

    def run_all_new():
        return [edtd_possible_types(schema, doc) for doc in documents]

    new_results, _ = run_timed(benchmark, run_all_new, rounds=ROUNDS)
    new_total = float(benchmark.stats.stats.min)

    def run_all_old():
        return [schema.possible_types_reference(doc) for doc in documents]

    old_results, old_total = _best_of(run_all_old)
    assert new_results == old_results
    speedup = old_total / max(new_total, 1e-9)
    record_bench(
        "edtd_validation_speedup",
        n=f"3x{WIDE_SIZE}-wide + {DEEP_DEPTH}-deep",
        seconds=new_total,
        old_seconds=old_total,
        speedup=round(speedup, 2),
    )
    record(
        EXPERIMENT,
        {
            "op": "edtd_validation (arena)",
            "instance": f"3x{WIDE_SIZE}-wide + {DEEP_DEPTH}-deep",
            "subsets": "",
            "new_s": f"{new_total:.4f}",
            "old_s": f"{old_total:.4f}",
            "speedup": f"{speedup:.1f}x",
        },
        note=NOTE,
    )
